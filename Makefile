PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench examples table1 results all clean

test:
	$(PYTHON) -m pytest -x -q tests/

bench:
	$(PYTHON) -m pytest -q benchmarks/ -s

examples:
	@for script in examples/*.py; do \
		echo "== $$script"; \
		$(PYTHON) $$script || exit 1; \
	done

table1:
	$(PYTHON) -m repro table1

results:
	$(PYTHON) -m pytest -q tests/ 2>&1 | tee test_output.txt
	$(PYTHON) -m pytest -q benchmarks/ -s 2>&1 | tee bench_output.txt

all: test bench examples

clean:
	find . -name __pycache__ -type d -exec rm -rf {} +
	rm -rf .pytest_cache .benchmarks
