PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench bench-json perf-compare examples table1 results \
	all clean

test:
	$(PYTHON) -m pytest -x -q tests/

bench:
	$(PYTHON) -m pytest -q benchmarks/ -s

# Regenerate the committed BENCH_*.json baselines in place (sim and
# analytic benches only — live wall-clock numbers are machine-specific
# and advisory).  Run after an intentional perf change, then commit.
bench-json:
	$(PYTHON) -m pytest -q benchmarks/ -s -k "not live"

# Regression gate: rerun the gated benches into a scratch directory and
# diff each fresh BENCH_*.json against its committed baseline.  Exits
# non-zero when a gated metric moved past tolerance.
perf-compare:
	rm -rf bench-out && mkdir -p bench-out
	REPRO_BENCH_DIR=bench-out \
		$(PYTHON) -m pytest -q benchmarks/ -s -k "not live"
	@status=0; \
	for new in bench-out/BENCH_*.json; do \
		old=$$(basename $$new); \
		echo "== compare $$old"; \
		$(PYTHON) -m repro perf compare $$old $$new || status=1; \
	done; \
	exit $$status

examples:
	@for script in examples/*.py; do \
		echo "== $$script"; \
		$(PYTHON) $$script || exit 1; \
	done

table1:
	$(PYTHON) -m repro table1

results:
	$(PYTHON) -m pytest -q tests/ 2>&1 | tee test_output.txt
	$(PYTHON) -m pytest -q benchmarks/ -s 2>&1 | tee bench_output.txt

all: test bench examples

clean:
	find . -name __pycache__ -type d -exec rm -rf {} +
	rm -rf .pytest_cache .benchmarks
