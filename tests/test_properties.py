"""Property-based system tests: random histories against a model.

These drive the full stack (suite protocol over transactions over
stable storage over the simulated network) with hypothesis-generated
operation/failure schedules and check the paper's correctness
guarantees:

* a read always returns the most recently committed write (strict
  serializability of suite operations, single client);
* version numbers increase by exactly one per committed write;
* crash/restart of any minority of representatives never breaks either
  property;
* after quiescence all representatives converge to the current version.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from tests.helpers import triple_config
from repro.errors import ReproError
from repro.testbed import Testbed

# Operations: ("read",) | ("write",) | ("crash", server) | ("restart",
# server) | ("advance",).  Crashes are constrained to one server at a
# time so quorums (2-of-3) always exist and no operation ever blocks.
operations = st.lists(
    st.one_of(
        st.just(("read",)),
        st.just(("write",)),
        st.sampled_from([("cycle", "s1"), ("cycle", "s2"),
                         ("cycle", "s3")]),
        st.just(("advance",)),
    ),
    min_size=1, max_size=25)


class TestRandomHistories:
    @given(operations, st.integers(min_value=0, max_value=2 ** 16))
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_reads_see_last_committed_write(self, history, seed):
        bed = Testbed(servers=["s1", "s2", "s3"], seed=seed)
        suite = bed.install(triple_config(), b"w0")
        suite.retry_backoff = 100.0

        def scenario():
            writes = 0
            expected_version = 1
            for step in history:
                if step[0] == "read":
                    result = yield from suite.read()
                    assert result.data == f"w{writes}".encode() \
                        if writes else b"w0"
                    assert result.version == expected_version
                elif step[0] == "write":
                    writes += 1
                    result = yield from suite.write(f"w{writes}".encode())
                    expected_version += 1
                    assert result.version == expected_version
                elif step[0] == "cycle":
                    server = step[1]
                    bed.crash(server)
                    yield bed.sim.timeout(50.0)
                    bed.restart(server)
                else:  # advance
                    yield bed.sim.timeout(200.0)
            return writes, expected_version

        writes, expected_version = bed.run(scenario())
        bed.settle(60_000.0)
        final = bed.run(suite.read())
        assert final.version == expected_version
        # Quiescent convergence: every rep stores the current version.
        versions = {node.server.fs.stat("suite:db").version
                    for node in bed.servers.values()}
        assert versions == {expected_version}

    @given(st.lists(st.binary(min_size=1, max_size=300), min_size=1,
                    max_size=8),
           st.integers(min_value=0, max_value=2 ** 16))
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_any_payload_sequence_round_trips(self, payloads, seed):
        bed = Testbed(servers=["s1", "s2", "s3"], seed=seed)
        suite = bed.install(triple_config(), b"init")

        def scenario():
            for payload in payloads:
                yield from suite.write(payload)
                result = yield from suite.read()
                assert result.data == payload

        bed.run(scenario())


class TestTwoClientSerializability:
    @given(st.lists(st.sampled_from(["a", "b"]), min_size=2, max_size=10),
           st.integers(min_value=0, max_value=2 ** 16))
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_interleaved_rmw_counters_never_lose_updates(self, order,
                                                         seed):
        """Two clients increment a replicated counter via
        read-modify-write transactions, concurrently in hypothesis-
        chosen interleavings; the final value equals the number of
        increments."""
        bed = Testbed(servers=["s1", "s2", "s3"],
                      clients=["a", "b"], seed=seed)
        config = triple_config(name="counter")
        suites = {
            "a": bed.install(config, b"0", client="a"),
            "b": bed.suite(config, client="b"),
        }

        def increment(suite):
            def mutate(txn):
                current = yield from suite.read_in(txn, for_update=True)
                value = int(current.data) + 1
                yield from suite.write_in(txn, str(value).encode())
                return value

            result = yield from suite.transact(mutate)
            return result

        def scenario():
            processes = [bed.sim.spawn(increment(suites[who]),
                                       name=f"inc-{who}-{i}")
                         for i, who in enumerate(order)]
            yield bed.sim.all_of(processes)
            final = yield from suites["a"].read()
            return int(final.data)

        assert bed.run(scenario()) == len(order)
