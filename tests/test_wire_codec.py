"""Wire codec: binary/JSON equivalence, batching, negotiation.

The binary codec must be an *encoding* change only: any Request/Reply
that round-trips through a JSON frame must round-trip through a binary
frame to the identical message, and a frame parser must accept either
codec on the same connection without being told which is coming.  The
equivalence is property-tested over randomized payloads (nested
containers, bytes blobs, unicode, null-vs-missing args).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.live.codec import (FrameError, MAGIC, MAX_FRAME_BYTES,
                              decode_wire_body, encode_batch_body,
                              encode_binary_body, encode_frame,
                              encode_json_body)
from repro.rpc.messages import METHOD_IDS, METHOD_NAMES, Reply, Request

# JSON-expressible payload values, bytes included (the codecs normalise
# tuples to lists, so tuples are generated only where tests expect it).
json_scalars = st.one_of(
    st.none(), st.booleans(),
    st.integers(min_value=-2**53, max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=40), st.binary(max_size=200))
payloads = st.recursive(
    json_scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=12), children, max_size=4)),
    max_leaves=12)
args_dicts = st.dictionaries(st.text(min_size=1, max_size=12), payloads,
                             max_size=4)
methods = st.one_of(st.sampled_from(sorted(METHOD_IDS)),
                    st.text(min_size=1, max_size=20))
traces = st.one_of(st.none(), st.dictionaries(
    st.sampled_from(["trace_id", "span_id"]),
    st.text(min_size=1, max_size=16), max_size=2))

requests = st.builds(
    Request,
    call_id=st.integers(min_value=0, max_value=2**63 - 1),
    source=st.text(min_size=1, max_size=16),
    method=methods, args=args_dicts, trace=traces)
replies = st.one_of(
    st.builds(Reply, call_id=st.integers(min_value=0, max_value=2**63 - 1),
              ok=st.just(True), value=payloads),
    st.builds(Reply, call_id=st.integers(min_value=0, max_value=2**63 - 1),
              ok=st.just(False), value=st.none(),
              error_type=st.text(min_size=1, max_size=16),
              error_detail=st.text(max_size=40)))
messages = st.one_of(requests, replies)


def decode_one(body: bytes):
    decoded, binary = decode_wire_body(body)
    assert len(decoded) == 1
    return decoded[0], binary


class TestEquivalence:
    """JSON and binary frames decode to the identical message."""

    @given(messages)
    @settings(max_examples=200, deadline=None)
    def test_codecs_agree(self, message):
        via_json, _ = decode_one(encode_json_body(message))
        via_binary, _ = decode_one(encode_binary_body(message))
        assert via_json == via_binary == message

    @given(messages)
    @settings(max_examples=50, deadline=None)
    def test_binary_flags(self, message):
        # A binary body proves the peer binary; a JSON body only does
        # so through its advert key.
        _, binary = decode_one(encode_binary_body(message))
        assert binary
        _, advert = decode_one(encode_json_body(message, advert=True))
        assert advert
        _, legacy = decode_one(encode_json_body(message, advert=False))
        assert not legacy

    def test_binary_is_self_describing(self):
        # First byte tells the codecs apart: 0xB7 can never start a
        # JSON document, '{' can never start a binary frame.
        request = Request(call_id=1, source="c", method="txn.stat",
                          args={})
        assert encode_binary_body(request)[0] == MAGIC
        assert encode_json_body(request)[0:1] == b"{"

    def test_args_null_and_missing_agree(self):
        # The regression the unified decoder pins down: an explicit
        # "args": null and a missing args key both decode to {} on
        # every path.
        for raw in (b'{"kind":"request","call_id":1,"source":"c",'
                    b'"method":"m","args":null}',
                    b'{"kind":"request","call_id":1,"source":"c",'
                    b'"method":"m"}'):
            message, _ = decode_one(raw)
            assert message.args == {}


class TestBinaryLayout:
    def test_page_payload_not_inflated(self):
        # The point of the codec: a page travels as itself plus a
        # 4-byte length, not base64.
        page = bytes(range(256)) * 16
        reply = Reply.success(3, {"data": page, "version": 9})
        body = encode_binary_body(reply)
        json_body = encode_json_body(reply)
        assert page in body
        assert len(body) < len(json_body) - len(page) // 4
        assert decode_one(body)[0] == reply

    def test_registry_method_not_inline(self):
        body = encode_binary_body(
            Request(call_id=1, source="c", method="txn.prepare", args={}))
        assert b"txn.prepare" not in body

    def test_unregistered_method_inline(self):
        message = Request(call_id=1, source="c", method="custom.ping",
                          args={"x": 1})
        body = encode_binary_body(message)
        assert b"custom.ping" in body
        assert decode_one(body)[0] == message

    def test_method_registry_is_a_bijection(self):
        assert len(METHOD_NAMES) == len(METHOD_IDS)
        assert 0 not in METHOD_NAMES  # 0 means "name inline"

    def test_truncated_binary_rejected(self):
        body = encode_binary_body(
            Reply.success(5, {"data": b"\x01" * 64}))
        for cut in (1, 8, len(body) // 2, len(body) - 1):
            with pytest.raises(FrameError):
                decode_wire_body(body[:cut])

    def test_garbage_after_magic_rejected(self):
        with pytest.raises(FrameError):
            decode_wire_body(bytes([MAGIC, 99]) + b"\x00" * 20)


class TestBatch:
    @given(st.lists(messages, min_size=1, max_size=6))
    @settings(max_examples=50, deadline=None)
    def test_batch_round_trip(self, originals):
        bodies = [encode_binary_body(message) for message in originals]
        decoded, binary = decode_wire_body(encode_batch_body(bodies))
        assert binary
        assert decoded == originals

    def test_batch_of_mixed_codecs(self):
        # Sub-bodies are full frame bodies, so a batch may carry JSON
        # sub-bodies too (nothing emits this today; decoding it keeps
        # the sub-body format self-describing).
        request = Request(call_id=1, source="c", method="m", args={})
        reply = Reply.success(2, "ok")
        body = encode_batch_body([encode_json_body(request),
                                  encode_binary_body(reply)])
        decoded, _ = decode_wire_body(body)
        assert decoded == [request, reply]

    def test_truncated_batch_rejected(self):
        body = encode_batch_body(
            [encode_binary_body(Reply.success(i, "v")) for i in range(3)])
        with pytest.raises(FrameError):
            decode_wire_body(body[:-3])


class TestFrameLimit:
    def test_oversize_encode_raises_frame_error(self):
        huge = Reply.success(1, {"data": b"\x00" * (MAX_FRAME_BYTES + 1)})
        with pytest.raises(FrameError):
            encode_frame(huge, binary=True)
        with pytest.raises(FrameError):
            encode_frame(huge, binary=False)

    def test_frame_wraps_body(self):
        message = Request(call_id=7, source="c", method="txn.stat",
                          args={"page": b"\xff" * 32})
        frame = encode_frame(message, binary=True)
        length = int.from_bytes(frame[:4], "big")
        assert length == len(frame) - 4
        assert decode_one(frame[4:])[0] == message
