"""Two-phase commit: atomicity across every crash point, fast paths."""

import pytest

from repro.errors import TransactionAborted
from repro.testbed import Testbed


def build(crash_time=None, crash_server="s2", restart_after=250.0,
          seed=3):
    bed = Testbed(servers=["s1", "s2"], seed=seed, call_timeout=200.0)
    manager = bed.clients["client"].manager
    manager.commit_retry_interval = 100.0
    if crash_time is not None:
        def crasher():
            yield bed.sim.timeout(crash_time)
            bed.crash(crash_server)
            yield bed.sim.timeout(restart_after)
            bed.restart(crash_server)

        bed.sim.spawn(crasher(), name="crasher")
    return bed, manager


def two_server_write(manager):
    txn = manager.begin()
    yield txn.call("s1", "txn.stage_write", name="g", data=b"x", version=1,
                   create=True)
    yield txn.call("s2", "txn.stage_write", name="g", data=b"x", version=1,
                   create=True)
    yield from txn.commit()
    return "committed"


class TestHappyPath:
    def test_multi_server_commit(self):
        bed, manager = build()
        assert bed.run(two_server_write(manager)) == "committed"
        for name in ("s1", "s2"):
            assert bed.servers[name].server.fs.read_file_sync("g") == \
                (b"x", 1)

    def test_empty_transaction_commits(self):
        bed, manager = build()

        def flow():
            txn = manager.begin()
            yield from txn.commit()
            return txn.state

        assert bed.run(flow()) == "committed"

    def test_read_only_commit_returns_without_waiting(self):
        bed, manager = build()
        bed.run(two_server_write(manager))
        # Make every link slow: a read-only commit should not pay for it.
        bed.network.set_latency("client", "s1", 500.0)
        bed.network.set_latency("client", "s2", 500.0)

        def flow():
            txn = manager.begin()
            yield txn.call("s1", "txn.read", name="g",
                           timeout=5_000.0)
            start = bed.sim.now
            yield from txn.commit()
            return bed.sim.now - start

        assert bed.run(flow()) == 0.0

    def test_commit_twice_rejected(self):
        bed, manager = build()

        def flow():
            txn = manager.begin()
            yield from txn.commit()
            try:
                yield from txn.commit()
                return "double"
            except TransactionAborted:
                return "refused"

        assert bed.run(flow()) == "refused"

    def test_call_after_commit_rejected(self):
        bed, manager = build()

        def flow():
            txn = manager.begin()
            yield from txn.commit()
            try:
                txn.call("s1", "txn.read", name="g")
                return "allowed"
            except TransactionAborted:
                return "refused"

        assert bed.run(flow()) == "refused"

    def test_abort_is_idempotent(self):
        bed, manager = build()

        def flow():
            txn = manager.begin()
            yield txn.call("s1", "txn.stage_write", name="h", data=b"x",
                           version=1, create=True)
            yield from txn.abort()
            yield from txn.abort()
            return txn.state

        assert bed.run(flow()) == "aborted"


class TestCrashAtomicity:
    """Crash one participant at a sweep of times around the commit
    protocol; afterwards both servers agree and nothing is in doubt."""

    @pytest.mark.parametrize("crash_time",
                             [6.0, 9.0, 11.0, 13.0, 14.5, 15.5, 16.5,
                              18.0, 20.0, 30.0])
    def test_both_or_neither(self, crash_time):
        bed, manager = build(crash_time=crash_time)
        try:
            outcome = bed.run(two_server_write(manager))
        except TransactionAborted:
            outcome = "aborted"
        bed.settle(20_000.0)
        exists_s1 = bed.servers["s1"].server.fs.exists("g")
        exists_s2 = bed.servers["s2"].server.fs.exists("g")
        assert exists_s1 == exists_s2
        if outcome == "committed":
            assert exists_s1
        assert bed.servers["s2"].participant.in_doubt() == []
        assert bed.servers["s1"].participant.in_doubt() == []

    def test_commit_retries_reach_restarted_participant(self):
        # Crash after prepare votes are in, long before commit delivery.
        bed, manager = build(crash_time=16.5, restart_after=400.0)
        outcome = bed.run(two_server_write(manager))
        assert outcome == "committed"
        bed.settle(20_000.0)
        assert bed.servers["s2"].server.fs.read_file_sync("g") == (b"x", 1)


class TestAbortPaths:
    def test_prepare_failure_aborts_everywhere(self):
        bed, manager = build()
        bed.crash("s2")

        def flow():
            txn = manager.begin()
            yield txn.call("s1", "txn.stage_write", name="g", data=b"x",
                           version=1, create=True)
            try:
                yield txn.call("s2", "txn.stage_write", name="g",
                               data=b"x", version=1, create=True)
            except Exception:
                pass
            try:
                yield from txn.commit()
                return "committed"
            except TransactionAborted:
                return "aborted"

        # s1 is fine, so commit succeeds with only s1 as participant.
        assert bed.run(flow()) == "committed"
        assert bed.servers["s1"].server.fs.exists("g")

    def test_unconfirmed_participants_get_aborts(self):
        bed, manager = build()

        def flow():
            txn = manager.begin()
            yield txn.call("s1", "txn.stage_write", name="g", data=b"x",
                           version=1, create=True)
            # Call s2 but crash it so the reply is lost; its scratch
            # state (and exclusive lock) linger server-side.
            event = txn.call("s2", "txn.stage_write", name="g", data=b"x",
                             version=1, create=True, timeout=50.0)
            bed.crash("s2")
            try:
                yield event
            except Exception:
                pass
            bed.restart("s2")
            yield from txn.commit()
            return txn.state

        assert bed.run(flow()) == "committed"
        bed.settle(10_000.0)
        # s2 must not keep any transaction state.
        assert len(bed.servers["s2"].participant._active) == 0
