"""The file-suite protocol: reads, writes, weak representatives,
staleness, refresh, retries and failure behaviour."""

import pytest

from tests.helpers import triple_config
from repro.core import Representative, SuiteConfiguration
from repro.errors import QuorumUnavailableError, ReproError
from repro.testbed import Testbed


def fs_version(bed, server, suite_name="db"):
    return bed.servers[server].server.fs.stat(f"suite:{suite_name}").version


class TestInstall:
    def test_install_places_every_representative(self, bed):
        config = triple_config(votes=(1, 1, 0))
        bed.install(config, b"seed")
        for server in ("s1", "s2", "s3"):
            fs = bed.servers[server].server.fs
            assert fs.read_file_sync("suite:db") == (b"seed", 1)
            assert fs.stat("suite:db").properties["stamp"] == 1

    def test_install_requires_all_representatives(self, bed):
        bed.crash("s3")
        with pytest.raises(ReproError):
            bed.install(triple_config(), b"seed")


class TestReadWrite:
    def test_round_trip(self, bed):
        suite = bed.install(triple_config(), b"v1")
        result = bed.run(suite.read())
        assert result.data == b"v1"
        assert result.version == 1

    def test_write_bumps_version(self, bed):
        suite = bed.install(triple_config(), b"v1")
        write = bed.run(suite.write(b"v2"))
        assert write.version == 2
        read = bed.run(suite.read())
        assert (read.data, read.version) == (b"v2", 2)

    def test_write_touches_exactly_a_quorum(self, bed):
        suite = bed.install(triple_config(), b"v1")
        write = bed.run(suite.write(b"v2"))
        assert len(write.quorum) == 2
        assert len(write.stale) == 1

    def test_write_prefers_cheap_quorum(self, bed):
        # latencies 10, 20, 30 → quorum should be reps 1 and 2
        suite = bed.install(triple_config(), b"v1")
        write = bed.run(suite.write(b"v2"))
        assert write.quorum == ["rep-1", "rep-2"]

    def test_read_served_by_cheapest_current(self, bed):
        suite = bed.install(triple_config(), b"v1")
        result = bed.run(suite.read())
        assert result.served_by == "rep-1"

    def test_current_version_inquiry(self, bed):
        suite = bed.install(triple_config(), b"v1")
        bed.run(suite.write(b"v2"))
        assert bed.run(suite.current_version()) == 2

    def test_sequential_writes_monotonic(self, bed):
        suite = bed.install(triple_config(), b"v0")
        for i in range(5):
            result = bed.run(suite.write(f"v{i + 1}".encode()))
            assert result.version == i + 2

    def test_metrics_recorded(self, bed):
        suite = bed.install(triple_config(), b"v1")
        bed.run(suite.read())
        bed.run(suite.write(b"v2"))
        assert bed.metrics.counter("suite.reads").value == 1
        assert bed.metrics.counter("suite.writes").value == 1
        assert bed.metrics.histogram("suite.read_latency").count == 1


class TestStaleness:
    def test_read_quorum_sees_newest_version(self, bed):
        """After a write to {s1, s2}, a read whose quorum includes a
        stale rep must still return the new data."""
        suite = bed.install(triple_config(), b"old")
        bed.run(suite.write(b"new"))            # quorum s1+s2; s3 stale
        # Force the read to consult s3 by crashing s1.
        bed.crash("s1")
        result = bed.run(suite.read())
        assert result.data == b"new"
        assert result.version == 2

    def test_background_refresh_catches_up_stale_rep(self, bed):
        suite = bed.install(triple_config(), b"old")
        bed.run(suite.write(b"new"))
        bed.settle()
        assert fs_version(bed, "s3") == 2

    def test_refresh_disabled_leaves_stale(self):
        bed = Testbed(servers=["s1", "s2", "s3"], refresh_enabled=False)
        suite = bed.install(triple_config(), b"old")
        bed.run(suite.write(b"new"))
        bed.settle()
        assert fs_version(bed, "s3") == 1
        assert bed.metrics.counter("refresh.dropped").value >= 1

    def test_read_notes_stale_reps(self, bed):
        suite = bed.install(triple_config(), b"old")
        suite.refresher.enabled = False
        bed.run(suite.write(b"new"))     # quorum s1+s2; s3 left stale
        bed.crash("s1")                  # force s3 into the read quorum
        result = bed.run(suite.read())
        assert result.stale == ["rep-3"]


class TestWeakRepresentatives:
    def weak_config(self):
        # rep-1 holds the only vote; rep-2/rep-3 are fast weak caches.
        return triple_config(votes=(1, 0, 0), r=1, w=1,
                             latencies=(50.0, 1.0, 2.0))

    def test_current_weak_rep_serves_read(self, bed):
        suite = bed.install(self.weak_config(), b"cached")
        result = bed.run(suite.read())
        assert result.served_by == "rep-2"
        assert bed.metrics.counter("suite.weak_reads").value == 1

    def test_stale_weak_rep_not_used(self, bed):
        suite = bed.install(self.weak_config(), b"v1")
        suite.refresher.enabled = False
        bed.run(suite.write(b"v2"))  # quorum = rep-1 only
        result = bed.run(suite.read())
        assert result.served_by == "rep-1"
        assert result.data == b"v2"

    def test_weak_rep_refreshed_then_serves(self, bed):
        suite = bed.install(self.weak_config(), b"v1")
        bed.run(suite.write(b"v2"))
        bed.settle()
        result = bed.run(suite.read())
        assert result.served_by == "rep-2"
        assert result.data == b"v2"

    def test_weak_reps_never_in_write_quorum(self, bed):
        suite = bed.install(self.weak_config(), b"v1")
        write = bed.run(suite.write(b"v2"))
        assert write.quorum == ["rep-1"]

    def test_read_survives_all_weak_reps_down(self, bed):
        suite = bed.install(self.weak_config(), b"v1")
        bed.crash("s2")
        bed.crash("s3")
        result = bed.run(suite.read())
        assert result.data == b"v1"
        assert result.served_by == "rep-1"


class TestAvailability:
    def test_read_succeeds_with_one_server_down(self, bed):
        suite = bed.install(triple_config(), b"v1")
        bed.crash("s3")
        assert bed.run(suite.read()).data == b"v1"

    def test_write_succeeds_with_one_server_down(self, bed):
        suite = bed.install(triple_config(), b"v1")
        bed.crash("s1")
        result = bed.run(suite.write(b"v2"))
        assert sorted(result.quorum) == ["rep-2", "rep-3"]

    def test_read_blocks_below_quorum(self, bed):
        config = triple_config()
        suite = bed.install(config, b"v1")
        suite.max_attempts = 1
        bed.crash("s2")
        bed.crash("s3")
        with pytest.raises(QuorumUnavailableError):
            bed.run(suite.read())
        assert bed.metrics.counter("suite.quorum_failures").value >= 1

    def test_write_blocks_below_quorum(self, bed):
        suite = bed.install(triple_config(), b"v1")
        suite.max_attempts = 1
        bed.crash("s1")
        bed.crash("s2")
        with pytest.raises(QuorumUnavailableError):
            bed.run(suite.write(b"v2"))

    def test_retry_succeeds_after_restart(self, bed):
        suite = bed.install(triple_config(), b"v1")
        suite.retry_backoff = 400.0
        bed.crash("s2")
        bed.crash("s3")

        def heal():
            yield bed.sim.timeout(300.0)
            bed.restart("s2")

        bed.sim.spawn(heal(), name="healer")
        start = bed.sim.now
        result = bed.run(suite.read())
        assert result.data == b"v1"
        # The operation could not finish before the restart at +300ms —
        # it got there either by transaction retries or by transport
        # retransmission of the inquiry.
        assert bed.sim.now - start >= 300.0

    def test_partition_majority_side_operates(self, bed):
        suite = bed.install(triple_config(), b"v1")
        bed.partition([["client", "s1", "s2"], ["s3"]])
        assert bed.run(suite.write(b"v2")).version == 2
        assert bed.run(suite.read()).data == b"v2"

    def test_partition_minority_side_blocks(self, bed):
        suite = bed.install(triple_config(), b"v1")
        suite.max_attempts = 1
        bed.partition([["client", "s3"], ["s1", "s2"]])
        with pytest.raises(QuorumUnavailableError):
            bed.run(suite.write(b"v2"))

    def test_no_split_brain_across_partition(self, bed):
        """Writes on the majority side; after healing, a reader that can
        only reach the old minority plus one majority member still sees
        the latest version."""
        suite = bed.install(triple_config(), b"v1")
        suite.refresher.enabled = False
        bed.partition([["client", "s1", "s2"], ["s3"]])
        bed.run(suite.write(b"v2"))
        bed.heal()
        bed.crash("s1")  # force quorum {s2, s3}
        result = bed.run(suite.read())
        assert result.data == b"v2"


class TestConcurrency:
    def test_two_writers_serialize(self, bed):
        bed.add_client("writer2")
        config = triple_config()
        suite_a = bed.install(config, b"v0")
        suite_b = bed.suite(config, client="writer2")

        def race():
            pa = bed.sim.spawn(suite_a.write(b"from-a"), name="wa")
            pb = bed.sim.spawn(suite_b.write(b"from-b"), name="wb")
            results = yield bed.sim.all_of([pa, pb])
            return results

        first, second = bed.run(race())
        assert {first.version, second.version} == {2, 3}
        final = bed.run(suite_a.read())
        assert final.version == 3
        assert final.data in (b"from-a", b"from-b")

    def test_reader_never_sees_torn_write(self, bed):
        bed.add_client("reader")
        config = triple_config()
        writer = bed.install(config, b"A" * 1000)
        reader = bed.suite(config, client="reader")
        observed = []

        def read_loop():
            for _ in range(20):
                result = yield from reader.read()
                observed.append(result.data)
                yield bed.sim.timeout(3.0)

        def write_loop():
            for i in range(10):
                payload = (b"A" if i % 2 == 0 else b"B") * 1000
                yield from writer.write(payload)

        rp = bed.sim.spawn(read_loop(), name="reads")
        wp = bed.sim.spawn(write_loop(), name="writes")
        bed.run_both = bed.sim.all_of([rp, wp])
        bed.sim.run_until(bed.run_both)
        for data in observed:
            assert data in (b"A" * 1000, b"B" * 1000)

    def test_versions_strictly_increase_across_clients(self, bed):
        bed.add_client("other")
        config = triple_config()
        suite_a = bed.install(config, b"x")
        suite_b = bed.suite(config, client="other")
        versions = []

        def interleave():
            for i in range(6):
                suite = suite_a if i % 2 == 0 else suite_b
                result = yield from suite.write(f"w{i}".encode())
                versions.append(result.version)

        bed.run(interleave())
        assert versions == sorted(versions)
        assert len(set(versions)) == len(versions)


class TestDeleteSuite:
    def test_removes_every_copy(self, bed):
        from repro.core import delete_suite

        config = triple_config()
        bed.install(config, b"doomed")
        removed = bed.run(delete_suite(
            bed.clients["client"].manager, config))
        assert sorted(removed) == ["rep-1", "rep-2", "rep-3"]
        for node in bed.servers.values():
            assert not node.server.fs.exists("suite:db")

    def test_best_effort_with_server_down(self, bed):
        from repro.core import delete_suite

        config = triple_config()
        bed.install(config, b"doomed")
        bed.crash("s3")
        removed = bed.run(delete_suite(
            bed.clients["client"].manager, config))
        assert sorted(removed) == ["rep-1", "rep-2"]
        assert not bed.servers["s1"].server.fs.exists("suite:db")

    def test_strict_mode_aborts_on_unreachable(self, bed):
        from repro.core import delete_suite
        from repro.errors import ReproError

        config = triple_config()
        suite = bed.install(config, b"survives")
        bed.crash("s3")
        manager = bed.clients["client"].manager
        manager.call_timeout = 150.0
        with pytest.raises(ReproError):
            bed.run(delete_suite(manager, config, strict=True))
        manager.call_timeout = 2_000.0
        bed.restart("s3")
        # Nothing was deleted: the suite still reads fine.
        assert bed.run(suite.read()).data == b"survives"
