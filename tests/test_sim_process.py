"""Process semantics: spawning, joining, interrupts, kills, crashes."""

import pytest

from repro.errors import Interrupt, ProcessKilled
from repro.sim import Simulator


def ticker(sim, period, count, log):
    for i in range(count):
        yield sim.timeout(period)
        log.append((sim.now, i))
    return count


class TestBasics:
    def test_process_runs_and_returns(self, sim):
        log = []
        process = sim.spawn(ticker(sim, 1.0, 3, log))
        sim.run()
        assert log == [(1.0, 0), (2.0, 1), (3.0, 2)]
        assert process.value == 3
        assert not process.alive

    def test_join_receives_return_value(self, sim):
        def child(sim):
            yield sim.timeout(2.0)
            return "payload"

        def parent(sim):
            result = yield sim.spawn(child(sim))
            return result

        assert sim.run_process(parent(sim)) == "payload"

    def test_spawn_requires_generator(self, sim):
        with pytest.raises(TypeError, match="generator"):
            sim.spawn(lambda: None)

    def test_immediate_return(self, sim):
        def instant(sim):
            return "now"
            yield  # pragma: no cover

        assert sim.run_process(instant(sim)) == "now"
        assert sim.now == 0.0

    def test_yielding_non_event_crashes_process(self, sim):
        def bad(sim):
            yield 42

        with pytest.raises(TypeError, match="yield Event"):
            sim.run_process(bad(sim))


class TestFailures:
    def test_exception_propagates_to_joiner(self, sim):
        def child(sim):
            yield sim.timeout(1.0)
            raise ValueError("inner")

        def parent(sim):
            try:
                yield sim.spawn(child(sim))
            except ValueError as exc:
                return f"caught {exc}"

        assert sim.run_process(parent(sim)) == "caught inner"

    def test_orphan_failure_surfaces_at_run(self, sim):
        def doomed(sim):
            yield sim.timeout(1.0)
            raise RuntimeError("nobody watching")

        sim.spawn(doomed(sim))
        with pytest.raises(RuntimeError, match="unhandled failure"):
            sim.run()

    def test_failed_event_raises_inside_process(self, sim):
        def waiter(sim, event):
            try:
                yield event
            except KeyError:
                return "handled"

        event = sim.event()
        sim.schedule(1.0, lambda: event.fail(KeyError()))
        assert sim.run_process(waiter(sim, event)) == "handled"


class TestInterrupt:
    def test_interrupt_delivers_cause(self, sim):
        def sleeper(sim):
            try:
                yield sim.timeout(100.0)
            except Interrupt as interrupt:
                return ("interrupted", interrupt.cause, sim.now)

        process = sim.spawn(sleeper(sim))
        sim.schedule(5.0, process.interrupt, "wakeup")
        assert sim.run_until(process) == ("interrupted", "wakeup", 5.0)

    def test_uncaught_interrupt_terminates_quietly(self, sim):
        def sleeper(sim):
            yield sim.timeout(100.0)

        process = sim.spawn(sleeper(sim))
        sim.schedule(5.0, process.interrupt)
        sim.run()
        assert process.triggered
        assert process.value is None

    def test_interrupt_finished_process_noop(self, sim):
        def quick(sim):
            yield sim.timeout(1.0)
            return "ok"

        process = sim.spawn(quick(sim))
        sim.run()
        process.interrupt()  # no effect, no error
        sim.run()
        assert process.value == "ok"

    def test_interrupted_process_can_continue(self, sim):
        def resilient(sim):
            waited = 0.0
            while waited < 10.0:
                start = sim.now
                try:
                    yield sim.timeout(10.0 - waited)
                    waited = 10.0
                except Interrupt:
                    waited += sim.now - start
            return sim.now

        process = sim.spawn(resilient(sim))
        sim.schedule(3.0, process.interrupt)
        sim.schedule(6.0, process.interrupt)
        assert sim.run_until(process) == 10.0

    def test_stale_event_after_interrupt_ignored(self, sim):
        """The event a process was waiting on must not resume it after
        an interrupt redirected control."""
        log = []

        def sleeper(sim):
            try:
                yield sim.timeout(5.0)
                log.append("timeout fired into process")
            except Interrupt:
                log.append("interrupted")
                yield sim.timeout(10.0)
                log.append("second sleep done")

        process = sim.spawn(sleeper(sim))
        sim.schedule(1.0, process.interrupt)
        sim.run()
        assert log == ["interrupted", "second sleep done"]


class TestKill:
    def test_kill_stops_without_resuming(self, sim):
        log = []

        def worker(sim):
            yield sim.timeout(1.0)
            log.append("step1")
            yield sim.timeout(1.0)
            log.append("step2")

        process = sim.spawn(worker(sim))
        sim.schedule(1.5, process.kill)
        sim.run()
        assert log == ["step1"]
        assert not process.alive

    def test_joiner_sees_process_killed(self, sim):
        def victim(sim):
            yield sim.timeout(100.0)

        def parent(sim):
            child = sim.spawn(victim(sim))
            sim.schedule(1.0, child.kill)
            try:
                yield child
            except ProcessKilled:
                return "saw kill"

        assert sim.run_process(parent(sim)) == "saw kill"

    def test_kill_runs_finally_blocks(self, sim):
        log = []

        def careful(sim):
            try:
                yield sim.timeout(100.0)
            finally:
                log.append("cleanup")

        process = sim.spawn(careful(sim))
        sim.schedule(1.0, process.kill)
        sim.run()
        assert log == ["cleanup"]

    def test_double_kill_is_noop(self, sim):
        def worker(sim):
            yield sim.timeout(10.0)

        process = sim.spawn(worker(sim))
        sim.schedule(1.0, process.kill)
        sim.run()
        process.kill()
        assert not process.alive
