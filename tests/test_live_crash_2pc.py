"""Crash-mid-2PC over real sockets, and restart-recovery regressions.

The live ports of ``test_coordinator_crash.py``: a coordinator that
prepares both participants and then goes silent (the blocking face of
2PC) leaves real TCP servers in-doubt; the in-doubt state must survive
a server crash/restart, block conflicting transactions, and resolve
when an operator supplies the decision.  Plus regression pins for
``LiveStorageServer.restart()``: recovery must run before the listener
reopens, on the same address, idempotently.
"""

import asyncio

import pytest

from repro.errors import ReproError
from repro.live import LoopbackCluster
from repro.live.server import LiveStorageServer


def prepare_then_abandon(cluster, holder):
    """Stage + prepare on both servers, then never send phase 2 —
    indistinguishable, to the participants, from coordinator death."""
    manager = cluster.client.manager

    def flow():
        txn = manager.begin()
        holder["txn"] = txn
        yield txn.call("s1", "txn.stage_write", name="f", data=b"doomed",
                       version=1, create=True)
        yield txn.call("s2", "txn.stage_write", name="f", data=b"doomed",
                       version=1, create=True)
        vote_one = yield txn.call("s1", "txn.prepare")
        vote_two = yield txn.call("s2", "txn.prepare")
        assert vote_one == vote_two == "prepared"
        return txn

    return cluster.run(flow())


class TestLiveCoordinatorCrash:
    def test_in_doubt_survives_server_restart(self):
        async def scenario():
            holder = {}
            async with LoopbackCluster(["s1", "s2"], seed=21,
                                       call_timeout=1_000.0) as cluster:
                txn = await prepare_then_abandon(cluster, holder)
                await cluster.stop_server("s1")
                await cluster.restart_server("s1")
                participant = cluster.servers["s1"].participant
                return txn.txn_id, participant.in_doubt()

        txn_id, in_doubt = asyncio.run(scenario())
        assert in_doubt == [txn_id]

    def test_in_doubt_blocks_conflicting_transactions(self):
        async def scenario():
            holder = {}
            async with LoopbackCluster(
                    ["s1", "s2"], seed=22, call_timeout=800.0,
                    lock_timeout=300.0) as cluster:
                await prepare_then_abandon(cluster, holder)
                await cluster.stop_server("s1")
                await cluster.restart_server("s1")
                manager = cluster.client.manager

                def conflicting():
                    other = manager.begin()
                    try:
                        yield other.call("s1", "txn.stage_write",
                                         name="f", data=b"other",
                                         version=1, create=True,
                                         timeout=600.0)
                        yield from other.commit()
                        return "committed"
                    except ReproError:
                        yield from other.abort()
                        return "blocked"

                return await cluster.run(conflicting())

        assert asyncio.run(scenario()) == "blocked"

    def test_operator_resolution_commit_after_restart(self):
        async def scenario():
            holder = {}
            async with LoopbackCluster(["s1", "s2"], seed=23,
                                       call_timeout=1_000.0) as cluster:
                txn = await prepare_then_abandon(cluster, holder)
                await cluster.stop_server("s1")
                await cluster.restart_server("s1")
                endpoint = cluster.client.endpoint

                def resolve():
                    acks = []
                    for server in ("s1", "s2"):
                        ack = yield endpoint.call(
                            server, "txn.commit", timeout=1_000.0,
                            txn=str(txn.txn_id))
                        acks.append(ack)
                    return acks

                acks = await cluster.run(resolve())
                contents = {
                    name: node.server.fs.read_file_sync("f")
                    for name, node in cluster.servers.items()}
                pending = {name: node.participant.in_doubt()
                           for name, node in cluster.servers.items()}
                return acks, contents, pending

        acks, contents, pending = asyncio.run(scenario())
        assert acks == ["ack", "ack"]
        assert contents == {"s1": (b"doomed", 1), "s2": (b"doomed", 1)}
        assert pending == {"s1": [], "s2": []}

    def test_operator_resolution_abort(self):
        async def scenario():
            holder = {}
            async with LoopbackCluster(["s1", "s2"], seed=24,
                                       call_timeout=1_000.0) as cluster:
                txn = await prepare_then_abandon(cluster, holder)
                endpoint = cluster.client.endpoint

                def resolve():
                    for server in ("s1", "s2"):
                        yield endpoint.call(server, "txn.abort",
                                            timeout=1_000.0,
                                            txn=str(txn.txn_id))

                await cluster.run(resolve())
                return {name: node.server.fs.exists("f")
                        for name, node in cluster.servers.items()}

        assert asyncio.run(scenario()) == {"s1": False, "s2": False}

    def test_in_doubt_survives_daemon_replacement_on_disk(self, tmp_path):
        """The strongest recovery claim: a *new* daemon process (fresh
        LiveStorageServer object) mounting the old data directory finds
        the in-doubt record and replays it into the same blocked
        state."""

        async def scenario():
            holder = {}
            async with LoopbackCluster(
                    ["s1", "s2"], seed=25, call_timeout=1_000.0,
                    data_root=str(tmp_path)) as cluster:
                txn = await prepare_then_abandon(cluster, holder)
            # Cluster closed; boot a replacement daemon on s1's disk.
            replacement = LiveStorageServer(
                "s1", data_dir=str(tmp_path / "s1"), obs=False)
            try:
                return txn.txn_id, replacement.participant.in_doubt()
            finally:
                await replacement.close()

        txn_id, in_doubt = asyncio.run(scenario())
        assert in_doubt == [txn_id]


class TestLiveRestartRecovery:
    """Regression pins for LiveStorageServer.restart() ordering."""

    def test_restart_runs_recovery_exactly_once(self):
        async def scenario():
            async with LoopbackCluster(["s1", "s2"],
                                       seed=31) as cluster:
                server = cluster.servers["s1"]
                before = server.server.recoveries
                await cluster.stop_server("s1")
                await cluster.restart_server("s1")
                return before, server.server.recoveries

        before, after = asyncio.run(scenario())
        assert after == before + 1

    def test_restart_preserves_the_address(self):
        async def scenario():
            async with LoopbackCluster(["s1", "s2"],
                                       seed=32) as cluster:
                old = cluster.servers["s1"].address
                await cluster.stop_server("s1")
                new = await cluster.restart_server("s1")
                return old, new

        old, new = asyncio.run(scenario())
        assert new == old

    def test_restart_of_a_running_server_is_a_no_op_recovery_wise(self):
        async def scenario():
            async with LoopbackCluster(["s1", "s2"],
                                       seed=33) as cluster:
                server = cluster.servers["s1"]
                before = server.server.recoveries
                await cluster.restart_server("s1")   # never stopped
                still_up = server.host.up
                return before, server.server.recoveries, still_up

        before, after, still_up = asyncio.run(scenario())
        assert after == before and still_up

    def test_no_request_observes_the_pre_recovery_window(self):
        """A client hammering a restarting server must only ever see a
        timeout (listener closed) or a fully recovered answer — never
        an error from half-recovered state."""

        async def scenario():
            async with LoopbackCluster(
                    ["s1", "s2"], seed=34,
                    call_timeout=300.0) as cluster:
                endpoint = cluster.client.endpoint
                manager = cluster.client.manager
                outcomes = []

                def poke():
                    txn = str(manager.begin().txn_id)
                    try:
                        ack = yield endpoint.call(
                            "s1", "txn.abort", timeout=250.0, txn=txn)
                        outcomes.append(ack)
                    except ReproError as exc:
                        outcomes.append(type(exc).__name__)

                await cluster.stop_server("s1")
                pokes = asyncio.gather(
                    *(cluster.run(poke()) for _ in range(5)))
                await asyncio.sleep(0.05)
                await cluster.restart_server("s1")
                await pokes
                return outcomes

        outcomes = asyncio.run(scenario())
        assert outcomes and set(outcomes) <= {"ack", "RpcTimeout"}
