"""Meeting scheduling across per-user calendar suites."""

import pytest

from repro.core import make_configuration
from repro.testbed import Testbed
from repro.violet import (Calendar, CalendarError, MeetingScheduler,
                          SchedulingConflict, decode_calendar,
                          empty_calendar_data)

USERS = ["alice", "bob", "carol"]


@pytest.fixture
def sched_bed():
    bed = Testbed(servers=["s1", "s2", "s3"], seed=17)
    node = bed.clients["client"]
    calendars = {}
    for user in USERS:
        config = make_configuration(
            f"cal-{user}", [("s1", 1), ("s2", 1), ("s3", 1)], 2, 2,
            latency_hints={"s1": 5.0, "s2": 10.0, "s3": 15.0})
        calendars[user] = bed.install(config, empty_calendar_data())
    scheduler = MeetingScheduler(node.manager, calendars)
    return bed, scheduler, calendars


def entries_of(bed, suite):
    result = bed.run(suite.read())
    return decode_calendar(result.data)[1]


class TestScheduling:
    def test_meeting_appears_on_every_calendar(self, sched_bed):
        bed, scheduler, calendars = sched_bed
        meeting = bed.run(scheduler.schedule(
            "alice", ["bob", "carol"], "kickoff", 9.0, 10.0))
        assert meeting.participants == ("alice", "bob", "carol")
        for user in USERS:
            entries = entries_of(bed, calendars[user])
            assert len(entries) == 1
            assert entries[0].title == "kickoff"
            assert entries[0].meeting_id == meeting.meeting_id

    def test_conflict_rejected_atomically(self, sched_bed):
        bed, scheduler, calendars = sched_bed
        bed.run(scheduler.schedule("bob", [], "bob-busy", 9.0, 10.0))
        with pytest.raises(SchedulingConflict) as excinfo:
            bed.run(scheduler.schedule(
                "alice", ["bob", "carol"], "clash", 9.5, 10.5))
        assert "bob" in excinfo.value.blockers
        # Nobody else's calendar was touched.
        assert entries_of(bed, calendars["alice"]) == []
        assert entries_of(bed, calendars["carol"]) == []

    def test_unknown_participant_rejected(self, sched_bed):
        bed, scheduler, _calendars = sched_bed
        with pytest.raises(CalendarError):
            bed.run(scheduler.schedule("alice", ["mallory"], "x",
                                       1.0, 2.0))

    def test_meeting_ids_unique(self, sched_bed):
        bed, scheduler, _calendars = sched_bed
        first = bed.run(scheduler.schedule("alice", [], "a", 1.0, 2.0))
        second = bed.run(scheduler.schedule("alice", [], "b", 3.0, 4.0))
        assert first.meeting_id != second.meeting_id

    def test_survives_one_server_crash(self, sched_bed):
        bed, scheduler, calendars = sched_bed
        bed.crash("s3")
        meeting = bed.run(scheduler.schedule(
            "alice", ["bob"], "resilient", 9.0, 10.0))
        for user in ("alice", "bob"):
            assert entries_of(bed, calendars[user])[0].title == "resilient"


class TestCancel:
    def test_cancel_removes_everywhere(self, sched_bed):
        bed, scheduler, calendars = sched_bed
        meeting = bed.run(scheduler.schedule(
            "alice", ["bob", "carol"], "temp", 9.0, 10.0))
        bed.run(scheduler.cancel(meeting, by="alice"))
        for user in USERS:
            assert entries_of(bed, calendars[user]) == []

    def test_only_organizer_may_cancel(self, sched_bed):
        bed, scheduler, _calendars = sched_bed
        meeting = bed.run(scheduler.schedule(
            "alice", ["bob"], "locked", 9.0, 10.0))
        with pytest.raises(CalendarError):
            bed.run(scheduler.cancel(meeting, by="bob"))

    def test_cancel_leaves_other_entries(self, sched_bed):
        bed, scheduler, calendars = sched_bed
        keep = bed.run(scheduler.schedule("bob", [], "keep", 13.0, 14.0))
        victim = bed.run(scheduler.schedule(
            "alice", ["bob"], "victim", 9.0, 10.0))
        bed.run(scheduler.cancel(victim, by="alice"))
        titles = [entry.title
                  for entry in entries_of(bed, calendars["bob"])]
        assert titles == ["keep"]


class TestFindFreeSlot:
    def test_finds_earliest_common_gap(self, sched_bed):
        bed, scheduler, _calendars = sched_bed
        bed.run(scheduler.schedule("alice", [], "a", 9.0, 10.0))
        bed.run(scheduler.schedule("bob", [], "b", 10.0, 11.0))
        slot = bed.run(scheduler.find_free_slot(
            ["alice", "bob"], duration=1.0,
            window_start=9.0, window_end=17.0))
        assert slot == 11.0

    def test_none_when_window_full(self, sched_bed):
        bed, scheduler, _calendars = sched_bed
        bed.run(scheduler.schedule("alice", [], "all-day", 9.0, 17.0))
        slot = bed.run(scheduler.find_free_slot(
            ["alice"], duration=1.0, window_start=9.0,
            window_end=17.0))
        assert slot is None

    def test_slot_respects_duration(self, sched_bed):
        bed, scheduler, _calendars = sched_bed
        bed.run(scheduler.schedule("alice", [], "a", 10.0, 11.0))
        slot = bed.run(scheduler.find_free_slot(
            ["alice"], duration=1.0, window_start=9.0,
            window_end=12.0))
        assert slot == 9.0
        slot = bed.run(scheduler.find_free_slot(
            ["alice"], duration=2.0, window_start=9.0,
            window_end=17.0))
        assert slot == 11.0


class TestConcurrentScheduling:
    def test_two_organizers_same_slot_one_wins(self):
        bed = Testbed(servers=["s1", "s2", "s3"],
                      clients=["c1", "c2"], seed=18)
        calendars_one, calendars_two = {}, {}
        for user in ("alice", "bob"):
            config = make_configuration(
                f"cal-{user}", [("s1", 1), ("s2", 1), ("s3", 1)], 2, 2)
            calendars_one[user] = bed.install(config, empty_calendar_data(),
                                              client="c1")
            calendars_two[user] = bed.suite(config, client="c2")
        sched_one = MeetingScheduler(bed.clients["c1"].manager,
                                     calendars_one)
        sched_two = MeetingScheduler(bed.clients["c2"].manager,
                                     calendars_two)

        def try_schedule(scheduler, title):
            try:
                meeting = yield from scheduler.schedule(
                    "alice", ["bob"], title, 9.0, 10.0)
                return meeting.title
            except SchedulingConflict:
                return None

        def race():
            first = bed.sim.spawn(try_schedule(sched_one, "one"))
            second = bed.sim.spawn(try_schedule(sched_two, "two"))
            outcomes = yield bed.sim.all_of([first, second])
            return outcomes

        outcomes = bed.run(race())
        winners = [outcome for outcome in outcomes if outcome]
        assert len(winners) == 1
        # Both calendars agree on the single winner.
        alice = decode_calendar(
            bed.run(calendars_one["alice"].read()).data)[1]
        bob = decode_calendar(
            bed.run(calendars_one["bob"].read()).data)[1]
        assert [e.title for e in alice] == winners
        assert [e.title for e in bob] == winners
