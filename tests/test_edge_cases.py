"""Gap-filling edge cases across the stack."""

import pytest

from tests.helpers import triple_config
from repro.core.suite import FileSuiteClient
from repro.errors import QuorumUnavailableError, TransactionAborted
from repro.rpc import Reply, Request, RpcEndpoint
from repro.sim import Network, RandomStreams, Simulator
from repro.sim.network import estimate_size
from repro.testbed import Testbed


class TestEstimateSizeEdges:
    def test_none_and_bools(self):
        assert estimate_size(None) == 1
        assert estimate_size(True) == 8

    def test_deep_nesting_capped(self):
        nested = "leaf"
        for _ in range(20):
            nested = [nested]
        assert estimate_size(nested) > 0  # no recursion error

    def test_request_includes_bulk_args(self):
        request = Request(call_id=1, source="c", method="m",
                          args={"data": b"x" * 500})
        assert estimate_size(request) >= 500

    def test_set_and_tuple(self):
        assert estimate_size(({1, 2}, (3, 4))) >= 8


class TestReplyCacheEviction:
    def test_completed_cache_bounded(self, sim, network):
        client = RpcEndpoint(sim, network.add_host("c"))
        server = RpcEndpoint(sim, network.add_host("s"))
        server._completed_capacity = 5
        server.register("ping", lambda: "pong")

        def flow():
            for _ in range(20):
                yield client.call("s", "ping")

        sim.run_process(flow())
        sim.run()
        assert len(server._completed) <= 5


class TestSuiteEdges:
    def test_weak_inquiry_timeout_defaults_to_inquiry(self, bed):
        suite = bed.suite(triple_config(), inquiry_timeout=321.0)
        assert suite.weak_inquiry_timeout == 321.0

    def test_explicit_weak_inquiry_timeout(self, bed):
        suite = bed.suite(triple_config(), inquiry_timeout=321.0,
                          weak_inquiry_timeout=55.0)
        assert suite.weak_inquiry_timeout == 55.0

    def test_transact_retries_on_quorum_loss(self, bed):
        suite = bed.install(triple_config(), b"0")
        suite.retry_backoff = 300.0
        bed.crash("s1")
        bed.crash("s2")

        def heal():
            yield bed.sim.timeout(500.0)
            bed.restart("s1")

        bed.sim.spawn(heal(), name="healer")

        def increment(txn):
            current = yield from suite.read_in(txn, for_update=True)
            value = int(current.data) + 1
            yield from suite.write_in(txn, str(value).encode())
            return value

        assert bed.run(suite.transact(increment)) == 1

    def test_transact_propagates_final_failure(self, bed):
        suite = bed.install(triple_config(), b"0")
        suite.max_attempts = 1
        suite.inquiry_timeout = 60.0
        bed.crash("s1")
        bed.crash("s2")

        def nop(txn):
            yield from suite.read_in(txn)
            return None

        with pytest.raises(QuorumUnavailableError):
            bed.run(suite.transact(nop))

    def test_current_version_with_weak_reps_excluded(self, bed):
        config = triple_config(votes=(1, 1, 0), r=1, w=2)
        suite = bed.install(config, b"x")
        bed.run(suite.write(b"y"))
        assert bed.run(suite.current_version()) == 2

    def test_install_empty_data(self, bed):
        suite = bed.install(triple_config())
        result = bed.run(suite.read())
        assert result.data == b""
        assert result.version == 1


class TestRefreshEdges:
    def test_abandoned_refresh_counted(self):
        bed = Testbed(servers=["s1", "s2", "s3"], seed=95,
                      call_timeout=150.0)
        suite = bed.install(triple_config(), b"x")
        suite.refresher.max_attempts = 2
        suite.refresher.retry_backoff = 50.0
        suite.data_timeout = 300.0
        # Make the refresh target permanently unreachable: the quorum
        # write succeeds but s3 never comes back.
        bed.run(suite.write(b"y"))
        bed.crash("s3")
        bed.settle(30_000.0)
        # Either the refresh landed before the crash or was abandoned;
        # both are accounted for, nothing is stuck in-flight.
        metrics = bed.metrics
        landed = metrics.counter("refresh.completed").value
        abandoned = metrics.counter("refresh.abandoned").value
        assert landed + abandoned >= 1
        assert suite.refresher._in_flight == set()

    def test_refresh_of_reconfigured_away_rep_is_noop(self):
        from repro.core.reconfig import change_configuration

        bed = Testbed(servers=["s1", "s2", "s3"], seed=96)
        suite = bed.install(triple_config(), b"x")
        # Remove s3 while a refresh for it is queued with a delay.
        suite.refresher.delay = 400.0
        bed.run(suite.write(b"y"))     # schedules refresh for rep-3
        two_member = triple_config().evolve(
            representatives=triple_config().representatives[:2],
            read_quorum=1, write_quorum=2)
        bed.run(change_configuration(suite, two_member))
        bed.settle(30_000.0)           # the delayed refresh fires now
        # No crash, no stuck state; the removed rep's file is gone.
        assert not bed.servers["s3"].server.fs.exists("suite:db")


class TestSimulatorEdges:
    def test_run_max_steps_limits_progress(self, sim):
        fired = []
        for i in range(5):
            sim.schedule(float(i + 1), fired.append, i)
        sim.run(max_steps=2)
        assert fired == [0, 1]

    def test_step_on_empty_queue(self, sim):
        assert sim.step() is False

    def test_timeout_value_none_by_default(self, sim):
        timeout = sim.timeout(1.0)
        sim.run()
        assert timeout.value is None
