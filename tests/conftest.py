"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.votes import Representative, SuiteConfiguration
from repro.sim import Network, RandomStreams, Simulator
from repro.testbed import Testbed


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def streams() -> RandomStreams:
    return RandomStreams(seed=1234)


@pytest.fixture
def network(sim: Simulator, streams: RandomStreams) -> Network:
    return Network(sim, streams, default_latency=1.0)


@pytest.fixture
def bed() -> Testbed:
    """A standard 3-server, 1-client testbed."""
    return Testbed(servers=["s1", "s2", "s3"], seed=7)
