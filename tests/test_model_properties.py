"""Property tests for the analytic models against the implementation.

Two strong checks:

* the tuner's chosen configuration is genuinely optimal — no
  enumerated configuration meeting the constraints has lower mean
  latency (re-verified independently of the search code path);
* the message-cost model predicts the *measured* message count of the
  live protocol for hypothesis-generated configurations, not just the
  hand-checked 3-server case.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import SuiteAnalysis, make_configuration
from repro.core.analysis import message_cost
from repro.core.tuning import (ServerProfile, best_configuration,
                               enumerate_configurations, score)
from repro.errors import InvalidConfigurationError
from repro.testbed import Testbed

profiles = st.lists(
    st.builds(ServerProfile,
              name=st.sampled_from(["alpha", "beta", "gamma"]),
              latency=st.floats(min_value=1.0, max_value=500.0),
              availability=st.floats(min_value=0.5, max_value=0.999)),
    min_size=1, max_size=3,
    unique_by=lambda profile: profile.name)


class TestTunerOptimality:
    @given(profiles, st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=40, deadline=None)
    def test_best_is_never_beaten_by_enumeration(self, servers,
                                                 read_fraction):
        try:
            best = best_configuration(servers,
                                      read_fraction=read_fraction,
                                      max_votes_per_rep=2)
        except InvalidConfigurationError:
            return  # constraints unsatisfiable: nothing to check
        for config in enumerate_configurations(servers,
                                               max_votes_per_rep=2):
            rival = score(config, servers, read_fraction)
            assert best.mean_latency <= rival.mean_latency + 1e-9

    @given(profiles, st.floats(min_value=0.0, max_value=1.0),
           st.floats(min_value=0.5, max_value=0.99))
    @settings(max_examples=30, deadline=None)
    def test_constraints_respected_when_feasible(self, servers,
                                                 read_fraction, floor):
        try:
            best = best_configuration(servers,
                                      read_fraction=read_fraction,
                                      min_read_availability=floor,
                                      min_write_availability=floor,
                                      max_votes_per_rep=2)
        except InvalidConfigurationError:
            return
        assert best.read_availability >= floor
        assert best.write_availability >= floor


# Vote vectors over up to 4 servers with at least one vote.
vote_vectors = st.lists(st.integers(min_value=0, max_value=2),
                        min_size=2, max_size=4,
                        ).filter(lambda votes: sum(votes) >= 1)


@st.composite
def random_suite(draw):
    votes = draw(vote_vectors)
    total = sum(votes)
    write_quorum = draw(st.integers(min_value=total // 2 + 1,
                                    max_value=total))
    read_quorum = draw(st.integers(min_value=total - write_quorum + 1,
                                   max_value=total))
    servers = [(f"s{i}", vote) for i, vote in enumerate(votes)]
    hints = {f"s{i}": 5.0 + i for i in range(len(votes))}
    return make_configuration("prop", servers, read_quorum, write_quorum,
                              latency_hints=hints)


class TestMessageCostModel:
    @given(random_suite(), st.integers(min_value=0, max_value=2 ** 16))
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_model_matches_measured_counts(self, config, seed):
        servers = [rep.server for rep in config.representatives]
        bed = Testbed(servers=servers, seed=seed, refresh_enabled=False)
        suite = bed.install(config, b"x" * 200)
        predicted = message_cost(config)

        before = bed.network.messages_sent
        bed.run(suite.read())
        bed.settle(5_000.0)
        read_measured = bed.network.messages_sent - before
        assert read_measured == predicted["read"]

        before = bed.network.messages_sent
        bed.run(suite.write(b"y" * 200))
        bed.settle(5_000.0)
        write_measured = bed.network.messages_sent - before
        # The write count depends on which quorum was chosen; the model
        # uses the cheapest quorum, which the implementation also picks
        # when all servers respond (no failures in this test).
        assert write_measured == predicted["write"]
