"""RPC endpoints: dispatch, timeouts, retries, typed errors, crashes."""

import pytest

from repro.errors import (HostUnreachableError, NoSuchFileError,
                          NoSuchMethodError, RemoteError, RpcTimeout)
from repro.rpc import RpcEndpoint, Reply, Request
from repro.rpc.endpoint import reconstruct_error
from repro.sim import Network, RandomStreams, Simulator


@pytest.fixture
def pair(sim, network):
    client = RpcEndpoint(sim, network.add_host("client"))
    server = RpcEndpoint(sim, network.add_host("server"))
    return client, server


class TestDispatch:
    def test_plain_handler(self, sim, pair):
        client, server = pair
        server.register("add", lambda x, y: x + y)

        def flow():
            return (yield client.call("server", "add", x=3, y=4))

        assert sim.run_process(flow()) == 7

    def test_generator_handler_with_delay(self, sim, pair):
        client, server = pair

        def slow(text):
            yield sim.timeout(10.0)
            return text.upper()

        server.register("slow", slow)

        def flow():
            result = yield client.call("server", "slow", text="hi")
            return result, sim.now

        result, now = sim.run_process(flow())
        assert result == "HI"
        assert now == 12.0  # 1ms each way + 10ms service

    def test_unknown_method_typed_error(self, sim, pair):
        client, server = pair

        def flow():
            try:
                yield client.call("server", "nope")
            except NoSuchMethodError:
                return "typed"

        assert sim.run_process(flow()) == "typed"

    def test_duplicate_registration_rejected(self, pair):
        _client, server = pair
        server.register("m", lambda: 1)
        with pytest.raises(ValueError):
            server.register("m", lambda: 2)

    def test_remote_repro_error_reconstructed(self, sim, pair):
        client, server = pair

        def failing():
            raise NoSuchFileError("ghost")
            yield  # pragma: no cover

        server.register("fail", failing)

        def flow():
            try:
                yield client.call("server", "fail")
            except NoSuchFileError as exc:
                return str(exc)

        assert sim.run_process(flow()) == "ghost"

    def test_concurrent_handlers_interleave(self, sim, pair):
        client, server = pair

        def slow(tag, delay):
            yield sim.timeout(delay)
            return tag

        server.register("slow", slow)

        def flow():
            first = client.call("server", "slow", tag="a", delay=50.0)
            second = client.call("server", "slow", tag="b", delay=5.0)
            b = yield second
            a = yield first
            return a, b, sim.now

        a, b, now = sim.run_process(flow())
        assert (a, b) == ("a", "b")
        assert now == 52.0  # not serialized behind each other

    def test_payload_isolation(self, sim, pair):
        """Mutating a payload after sending must not affect the server."""
        client, server = pair
        received = []
        server.register("take", lambda items: received.append(items))

        def flow():
            payload = [1, 2, 3]
            event = client.call("server", "take", items=payload)
            payload.append(999)
            yield event

        sim.run_process(flow())
        assert received == [[1, 2, 3]]


class TestTimeoutsAndRetries:
    def test_timeout_on_dead_server(self, sim, pair):
        client, server = pair
        server.host.crash()

        def flow():
            try:
                yield client.call("server", "add", timeout=30.0)
            except RpcTimeout:
                return sim.now

        assert sim.run_process(flow()) == 30.0

    def test_late_reply_after_timeout_dropped(self, sim, pair):
        client, server = pair

        def slow():
            yield sim.timeout(100.0)
            return "late"

        server.register("slow", slow)

        def flow():
            try:
                yield client.call("server", "slow", timeout=10.0)
            except RpcTimeout:
                pass
            yield sim.timeout(200.0)  # late reply arrives harmlessly
            return "done"

        assert sim.run_process(flow()) == "done"

    def test_retries_succeed_after_restart(self, sim, pair):
        client, server = pair
        server.register("ping", lambda: "pong")
        server.host.crash()
        sim.schedule(50.0, server.host.restart)

        def flow():
            result = yield from client.call_with_retries(
                "server", "ping", timeout=30.0, attempts=5, backoff=10.0)
            return result

        assert sim.run_process(flow()) == "pong"

    def test_retries_exhausted_raises(self, sim, pair):
        client, server = pair
        server.host.crash()

        def flow():
            try:
                yield from client.call_with_retries(
                    "server", "ping", timeout=10.0, attempts=2)
            except RpcTimeout:
                return "gave up"

        assert sim.run_process(flow()) == "gave up"

    def test_timeout_none_is_bounded_by_default(self, sim, pair):
        # Regression: call(timeout=None) to a destination that never
        # answers used to strand its _pending entry (and the caller's
        # event) forever.  It now expires at the endpoint's default.
        client, server = pair
        server.host.crash()

        def flow():
            try:
                yield client.call("server", "add", timeout=None, x=1, y=2)
            except RpcTimeout:
                return sim.now

        assert sim.run_process(flow()) == RpcEndpoint.DEFAULT_CALL_TIMEOUT
        assert client._pending == {}

    def test_default_call_timeout_configurable(self, sim, network):
        client = RpcEndpoint(sim, network.add_host("c2"),
                             default_call_timeout=50.0)
        network.add_host("void")

        def flow():
            try:
                yield client.call("void", "ping")
            except RpcTimeout:
                return sim.now

        assert sim.run_process(flow()) == 50.0
        assert client._pending == {}


class TestCrashBehaviour:
    def test_client_crash_fails_its_pending_calls(self, sim, pair):
        client, server = pair

        def slow():
            yield sim.timeout(100.0)

        server.register("slow", slow)
        outcome = []

        def flow():
            try:
                yield client.call("server", "slow")
            except HostUnreachableError:
                outcome.append("failed locally")

        sim.spawn(flow())
        sim.schedule(10.0, client.host.crash)
        sim.run()
        assert outcome == ["failed locally"]

    def test_server_crash_kills_in_flight_handlers(self, sim, pair):
        client, server = pair
        progress = []

        def slow():
            progress.append("start")
            yield sim.timeout(100.0)
            progress.append("end")

        server.register("slow", slow)
        sim.schedule(20.0, server.host.crash)

        def flow():
            try:
                yield client.call("server", "slow", timeout=50.0)
            except RpcTimeout:
                return progress

        assert sim.run_process(flow()) == ["start"]
        assert len(server._handler_processes) == 0
        sim.run()
        assert progress == ["start"]  # handler never resumed

    def test_server_restarts_and_serves_again(self, sim, pair):
        client, server = pair
        server.register("ping", lambda: "pong")
        server.host.crash()
        server.host.restart()

        def flow():
            return (yield client.call("server", "ping", timeout=100.0))

        assert sim.run_process(flow()) == "pong"


class TestErrorReconstruction:
    def test_known_type(self):
        reply = Reply.failure(1, NoSuchFileError("f"))
        error = reconstruct_error(reply)
        assert isinstance(error, NoSuchFileError)

    def test_unknown_type_becomes_remote_error(self):
        reply = Reply(call_id=1, ok=False, error_type="WeirdError",
                      error_detail="huh")
        error = reconstruct_error(reply)
        assert isinstance(error, RemoteError)
        assert "huh" in str(error)
