"""Operational drills: end-to-end stories an operator would rehearse."""

import pytest

from tests.helpers import triple_config
from repro.core import (force_converge, make_configuration, suite_status,
                        verify_invariants)
from repro.core.reconfig import change_configuration
from repro.errors import ReproError
from repro.testbed import Testbed


class TestRollingMaintenance:
    def test_drain_and_service_each_server(self):
        """Converge, take a server down, keep serving, restart, repeat
        for each server — the suite never misses a beat and ends fully
        converged and invariant-clean."""
        bed = Testbed(servers=["s1", "s2", "s3"], seed=71)
        suite = bed.install(triple_config(), b"state-0")
        writes = 0

        def drill():
            nonlocal writes
            for server in ("s1", "s2", "s3"):
                status = yield from force_converge(suite)
                assert status.stale == []
                bed.crash(server)
                for _ in range(3):
                    writes += 1
                    yield from suite.write(f"state-{writes}".encode())
                    result = yield from suite.read()
                    assert result.data == f"state-{writes}".encode()
                bed.restart(server)
            yield from force_converge(suite)
            report = yield from verify_invariants(suite)
            return report

        report = bed.run(drill())
        assert report.ok
        versions = {node.server.fs.stat("suite:db").version
                    for node in bed.servers.values()}
        assert versions == {1 + writes}


class TestReconfigurationUnderFire:
    def test_emergency_demotion_of_failing_server(self):
        """s3 is flapping; the operator demotes it to a weak
        representative mid-traffic, after which its outages cannot
        affect write availability at all."""
        bed = Testbed(servers=["s1", "s2", "s3"], seed=72)
        config = triple_config()
        suite = bed.install(config, b"v1")

        # s3 flaps during normal traffic; operations retry through it.
        def flap():
            for _ in range(3):
                bed.crash("s3")
                yield bed.sim.timeout(200.0)
                bed.restart("s3")
                yield bed.sim.timeout(200.0)

        flapper = bed.sim.spawn(flap(), name="flapper")
        bed.run(suite.write(b"v2"))

        # Demote: s3 loses its vote, quorums shrink to the stable pair.
        demoted = triple_config(votes=(1, 1, 0), r=1, w=2)
        bed.run(change_configuration(suite, demoted))
        bed.sim.run_until(flapper)

        # Now s3's crashes are invisible to writes.
        bed.crash("s3")
        suite.max_attempts = 1
        result = bed.run(suite.write(b"v-final"))
        assert sorted(result.quorum) == ["rep-1", "rep-2"]
        assert bed.run(suite.read()).data == b"v-final"

    def test_capacity_expansion_under_traffic(self):
        """Grow from 3 to 5 servers while clients keep writing."""
        bed = Testbed(servers=["s1", "s2", "s3", "s4", "s5"], seed=73)
        old = triple_config()
        suite = bed.install(old, b"start")

        def traffic():
            for i in range(6):
                yield from suite.write(f"t{i}".encode())
                yield bed.sim.timeout(50.0)

        traffic_process = bed.sim.spawn(traffic(), name="traffic")
        wide = make_configuration(
            "db", [(f"s{i}", 1) for i in range(1, 6)], 3, 3,
            latency_hints={f"s{i}": float(i) for i in range(1, 6)})
        installed = bed.run(change_configuration(suite, wide))
        assert installed.total_votes == 5
        bed.sim.run_until(traffic_process)
        bed.settle(30_000.0)
        # All five servers hold the final state.
        versions = {node.server.fs.stat("suite:db").version
                    for node in bed.servers.values()}
        assert len(versions) == 1
        final = bed.run(suite.read())
        assert final.data == b"t5"


class TestDisasterRecovery:
    def test_total_outage_and_recovery(self):
        """Every server crashes; after restarts the suite resumes with
        all committed state intact."""
        bed = Testbed(servers=["s1", "s2", "s3"], seed=74)
        suite = bed.install(triple_config(), b"precious")
        bed.run(suite.write(b"more-precious"))

        for server in ("s1", "s2", "s3"):
            bed.crash(server)
        suite.max_attempts = 1
        suite.inquiry_timeout = 50.0
        with pytest.raises(ReproError):
            bed.run(suite.read())

        for server in ("s1", "s2", "s3"):
            bed.restart(server)
        suite.max_attempts = 4
        result = bed.run(suite.read())
        assert result.data == b"more-precious"
        assert result.version == 2
        report = bed.run(verify_invariants(suite))
        assert report.ok

    def test_losing_a_server_forever(self):
        """One server dies permanently; the operator removes it from
        the suite and full redundancy is restored on a replacement."""
        bed = Testbed(servers=["s1", "s2", "s3", "s4"], seed=75)
        old = triple_config()
        suite = bed.install(old, b"data")
        bed.run(suite.write(b"data-2"))
        bed.crash("s2")  # gone for good

        # Remove s2, add s4.
        replacement = make_configuration(
            "db", [("s1", 1), ("s3", 1), ("s4", 1)], 2, 2,
            latency_hints={"s1": 10.0, "s3": 30.0, "s4": 5.0})
        installed = bed.run(change_configuration(suite, replacement))
        assert {rep.server for rep in installed.representatives} == \
            {"s1", "s3", "s4"}
        bed.settle(30_000.0)

        # Full single-failure tolerance again — without s2.
        bed.crash("s1")
        result = bed.run(suite.write(b"data-3"))
        assert bed.run(suite.read()).data == b"data-3"
        status = bed.run(suite_status(suite))
        assert status.current_version == result.version
