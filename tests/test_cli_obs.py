"""The telemetry-plane CLI: multi-target metrics, top, and doctor."""

import asyncio
import json
import threading

import pytest

from repro.chaos.policy import ChaosPolicy
from repro.cli import main
from repro.core import make_configuration
from repro.obs.aggregate import write_obs_manifest
from repro.obs.collector import dump_jsonl
from repro.sim import RandomStreams
from repro.testbed import Testbed


class TestDoctorScenario:
    def test_slow_server_detected_in_both_planes(self, capsys):
        rc = main(["doctor", "--delay-server", "n2",
                   "--expect-slow", "n2", "--ops", "60"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "top quorum blockers" in out
        assert "critical path (trace plane):" in out
        assert "critical path (metrics plane):" in out
        assert "SLOs:" in out
        assert "quorum wait concentrates on rep-n2" in out
        assert "slow representative n2 DETECTED" in out

    def test_deterministic_across_reruns(self, capsys):
        main(["doctor", "--delay-server", "n3", "--ops", "40"])
        first = capsys.readouterr().out
        main(["doctor", "--delay-server", "n3", "--ops", "40"])
        second = capsys.readouterr().out
        assert first == second
        assert "rep-n3" in first

    def test_wrong_expectation_exits_2(self, capsys):
        rc = main(["doctor", "--delay-server", "n2",
                   "--expect-slow", "n4", "--ops", "40"])
        out = capsys.readouterr().out
        assert rc == 2
        assert "slow representative n4 MISSED" in out

    def test_dead_server_detected_via_breakers(self, capsys):
        rc = main(["doctor", "--kill-server", "n3",
                   "--expect-dead", "n3", "--ops", "40"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "circuit breaker tripped for n3" in out
        assert "dead representative n3 DETECTED" in out
        assert "operations failed" in out

    def test_healthy_fleet_has_no_findings(self, capsys):
        rc = main(["doctor", "--ops", "30"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "findings: none" in out

    def test_unknown_server_rejected(self, capsys):
        rc = main(["doctor", "--delay-server", "n9"])
        assert rc == 2
        assert "not in the fleet" in capsys.readouterr().err


def exported_trace(tmp_path, slow_server="s2"):
    """A JSONL span export from a slowed traced workload."""
    bed = Testbed(servers=["s1", "s2", "s3"], seed=5, obs=True)
    policy = ChaosPolicy(streams=RandomStreams(seed=5))
    policy.slow_host(slow_server, 30.0)
    bed.network.chaos = policy
    config = make_configuration(
        "cp", [("s1", 1), ("s2", 1), ("s3", 1)], 3, 3,
        latency_hints={"s1": 10.0, "s2": 20.0, "s3": 30.0})
    suite = bed.install(config, b"cp:v1")
    for _index in range(5):
        bed.run(suite.read())
    path = tmp_path / "spans.jsonl"
    with open(path, "w", encoding="utf-8") as handle:
        dump_jsonl(bed.collector.spans(), handle)
    return str(path)


class TestDoctorOffline:
    def test_trace_analysis_names_the_blocker(self, tmp_path, capsys):
        trace = exported_trace(tmp_path)
        rc = main(["doctor", "--trace", trace,
                   "--expect-slow", "s2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "rep-s2" in out
        assert "slow representative s2 DETECTED" in out

    def test_history_breakers_flag_dead_servers(self, tmp_path, capsys):
        history = tmp_path / "history.json"
        history.write_text(json.dumps({
            "verdict": "OK",
            "breakers": {
                "rep-2": {"state": "closed",
                          "consecutive_failures": 0, "opens": 4},
                "rep-1": {"state": "closed",
                          "consecutive_failures": 0, "opens": 0},
            }}))
        rc = main(["doctor", "--history", str(history),
                   "--expect-dead", "rep-2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "verdict OK" in out
        assert "rep-2 (closed, 4 opens)" in out
        assert "dead representative rep-2 DETECTED" in out

        rc = main(["doctor", "--history", str(history),
                   "--expect-dead", "rep-1"])
        assert rc == 2
        assert "MISSED" in capsys.readouterr().out

    def test_missing_file_is_an_error(self, tmp_path, capsys):
        rc = main(["doctor", "--trace", str(tmp_path / "absent.jsonl")])
        assert rc == 1
        assert "cannot read" in capsys.readouterr().err


class TestTargetResolution:
    def test_no_targets_is_usage_error(self, capsys):
        assert main(["metrics"]) == 2
        assert "no targets" in capsys.readouterr().err
        assert main(["top"]) == 2
        assert "no targets" in capsys.readouterr().err

    def test_malformed_target_rejected(self, capsys):
        assert main(["metrics", "nonsense"]) == 2
        assert "expected HOST:PORT" in capsys.readouterr().err

    def test_missing_manifest_rejected(self, capsys):
        assert main(["metrics", "--cluster", "/no/such.json"]) == 2
        assert "cannot read manifest" in capsys.readouterr().err

    def test_raw_needs_single_target(self, capsys):
        rc = main(["metrics", "--raw", "127.0.0.1:1", "127.0.0.1:2"])
        assert rc == 2
        assert "--raw needs a single target" in capsys.readouterr().err


@pytest.fixture
def live_fleet(tmp_path):
    """Two live storage daemons with obs sidecars, run on a thread."""
    from repro.live import LiveStorageServer

    started = threading.Event()
    holder = {}

    def run():
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        stop = asyncio.Event()
        holder["loop"], holder["stop"] = loop, stop

        async def serve():
            servers = []
            addresses = {}
            for name in ("s1", "s2"):
                server = LiveStorageServer(name, obs=True)
                await server.start("127.0.0.1", 0, obs_port=0)
                servers.append(server)
                addresses[name] = server.obs_address
            holder["addresses"] = addresses
            started.set()
            await stop.wait()
            for server in servers:
                await server.close()

        loop.run_until_complete(serve())
        loop.close()

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert started.wait(timeout=15), "live fleet failed to boot"
    try:
        yield holder["addresses"]
    finally:
        holder["loop"].call_soon_threadsafe(holder["stop"].set)
        thread.join(timeout=15)


class TestLiveScrapes:
    def test_single_target_raw_back_compat(self, live_fleet, capsys):
        _host, port = live_fleet["s1"]
        rc = main(["metrics", "--port", str(port), "--raw"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "repro_obs_spans_buffered" in out

    def test_multi_target_merged_view(self, live_fleet, capsys):
        targets = [f"{host}:{port}"
                   for host, port in live_fleet.values()]
        rc = main(["metrics", *targets])
        out = capsys.readouterr().out
        assert rc == 0
        assert "merged value" in out
        assert "sources: " in out

    def test_cluster_manifest_discovery(self, live_fleet, tmp_path,
                                        capsys):
        manifest = str(tmp_path / "obs.json")
        write_obs_manifest(live_fleet, manifest)
        rc = main(["metrics", "--cluster", manifest,
                   "--filter", "obs"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "sources: s1, s2" in out

    def test_top_one_iteration(self, live_fleet, tmp_path, capsys):
        manifest = str(tmp_path / "obs.json")
        write_obs_manifest(live_fleet, manifest)
        rc = main(["top", "--cluster", manifest, "--iterations", "1",
                   "--no-clear"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "repro top — refresh 1, 2/2 sources up" in out

    def test_unreachable_member_reported(self, live_fleet, capsys):
        targets = [f"{host}:{port}"
                   for host, port in live_fleet.values()]
        rc = main(["metrics", *targets, "127.0.0.1:9"])
        captured = capsys.readouterr()
        assert rc == 0                  # partial fleet still renders
        assert "cannot scrape 127.0.0.1:9" in captured.err
        assert "!! 127.0.0.1:9" in captured.out
