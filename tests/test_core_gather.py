"""Vote gathering over reply events."""

import pytest

from repro.core import gather_until, votes_predicate
from repro.sim import Simulator


class TestGatherUntil:
    def test_stops_at_threshold(self, sim):
        calls = {f"k{i}": sim.timeout(float(i), value=i) for i in range(5)}
        votes = {f"k{i}": 1 for i in range(5)}

        def flow():
            result = yield from gather_until(
                sim, calls, votes_predicate(2, votes.__getitem__))
            return result

        result = sim.run_process(flow())
        assert result.satisfied
        assert len(result.successes) == 2
        assert sim.now == 1.0  # k0 at t=0, k1 at t=1

    def test_failures_collected_not_raised(self, sim):
        ok = sim.timeout(1.0, "fine")
        bad = sim.event()
        bad.fail(RuntimeError("down"))
        calls = {"good": ok, "bad": bad}

        def flow():
            result = yield from gather_until(
                sim, calls, lambda s, f: len(s) >= 1)
            return result

        result = sim.run_process(flow())
        assert result.satisfied
        assert "good" in result.successes or "bad" in result.failures

    def test_unsatisfied_when_replies_run_out(self, sim):
        bad1, bad2 = sim.event(), sim.event()
        bad1.fail(ValueError("a"))
        bad2.fail(ValueError("b"))

        def flow():
            result = yield from gather_until(
                sim, {"x": bad1, "y": bad2}, lambda s, f: len(s) >= 1)
            return result

        result = sim.run_process(flow())
        assert not result.satisfied
        assert set(result.failures) == {"x", "y"}

    def test_empty_calls_with_trivial_predicate(self, sim):
        def flow():
            result = yield from gather_until(sim, {}, lambda s, f: True)
            return result

        assert sim.run_process(flow()).satisfied

    def test_empty_calls_unsatisfiable(self, sim):
        def flow():
            result = yield from gather_until(sim, {}, lambda s, f: False)
            return result

        assert not sim.run_process(flow()).satisfied

    def test_weighted_predicate(self, sim):
        calls = {
            "heavy": sim.timeout(5.0, "h"),
            "light1": sim.timeout(1.0, "l1"),
            "light2": sim.timeout(2.0, "l2"),
        }
        weights = {"heavy": 2, "light1": 1, "light2": 1}

        def flow():
            result = yield from gather_until(
                sim, calls, votes_predicate(2, weights.__getitem__))
            return result

        result = sim.run_process(flow())
        # The two light responders arrive first and already hold 2 votes.
        assert set(result.successes) == {"light1", "light2"}
        assert sim.now == 2.0

    def test_late_events_left_pending(self, sim):
        slow = sim.timeout(100.0, "slow")
        fast = sim.timeout(1.0, "fast")

        def flow():
            result = yield from gather_until(
                sim, {"s": slow, "f": fast}, lambda s, f: len(s) >= 1)
            return sim.now, result

        now, result = sim.run_process(flow())
        assert now == 1.0
        assert "s" not in result.successes
        sim.run()
        assert slow.triggered  # still settles afterwards, harmlessly


class TestSettleOrder:
    def test_order_records_every_settle_with_time(self, sim):
        calls = {f"k{i}": sim.timeout(float(i), value=i)
                 for i in range(3)}

        def flow():
            result = yield from gather_until(
                sim, calls, lambda s, f: len(s) >= 3)
            return result

        result = sim.run_process(flow())
        assert [(key, at) for key, at, _ok in result.order] == \
            [("k0", 0.0), ("k1", 1.0), ("k2", 2.0)]
        assert all(ok for _key, _at, ok in result.order)

    def test_closed_by_is_the_reply_that_satisfied(self, sim):
        calls = {f"k{i}": sim.timeout(float(i), value=i)
                 for i in range(4)}

        def flow():
            result = yield from gather_until(
                sim, calls, lambda s, f: len(s) >= 2)
            return result

        result = sim.run_process(flow())
        assert result.closed_by == "k1"
        # Replies after the close never enter the order.
        assert [key for key, _at, _ok in result.order] == ["k0", "k1"]

    def test_failures_appear_in_order_with_ok_false(self, sim):
        bad = sim.event()
        bad.fail(RuntimeError("down"))
        ok = sim.timeout(2.0, "fine")

        def flow():
            result = yield from gather_until(
                sim, {"bad": bad, "good": ok},
                lambda s, f: len(s) >= 1)
            return result

        result = sim.run_process(flow())
        flags = dict((key, ok_flag)
                     for key, _at, ok_flag in result.order)
        assert flags["bad"] is False
        assert flags["good"] is True
        assert result.closed_by == "good"

    def test_unsatisfied_gather_has_no_closer(self, sim):
        bad = sim.event()
        bad.fail(ValueError("a"))

        def flow():
            result = yield from gather_until(
                sim, {"x": bad}, lambda s, f: len(s) >= 1)
            return result

        result = sim.run_process(flow())
        assert not result.satisfied
        assert result.closed_by is None
        assert [key for key, _at, _ok in result.order] == ["x"]
