"""Autopilot soaks: known-answer degradation, nemesis schedules, and
the cluster-wide rollout — all invariant-checked."""

import asyncio

import pytest

from repro.chaos.soak import SoakConfig, run_live_soak, run_sim_soak
from repro.cluster.soak import ClusterSoakConfig, run_cluster_sim_soak


def _applied(state):
    return [record for record in state["reassignments"]
            if record["applied"]]


def _assert_feasible(state, read_quorum, write_quorum, floor):
    """Every applied reassignment kept Gifford's rules intact."""
    for record in _applied(state):
        before, after = record["votes_before"], record["votes_after"]
        total = sum(after.values())
        assert total == sum(before.values())          # votes conserved
        assert read_quorum + write_quorum > total
        assert 2 * write_quorum > total
        assert sum(1 for v in after.values() if v > 0) >= floor


class TestConfig:
    def test_degrade_server_must_exist(self):
        with pytest.raises(ValueError):
            SoakConfig(degrade_server="s9")

    def test_degrade_heals_halfway_by_default(self):
        assert SoakConfig(ops=100, degrade_server="s1") \
            .degrade_heal_index() == 50
        assert SoakConfig(ops=100).degrade_heal_index() is None

    def test_soak_floor_is_a_full_majority(self):
        """Repeated demotions can never leave the suite unable to lose
        one more server."""
        assert SoakConfig(reps=5).autopilot_policy().min_voting_reps == 3
        assert SoakConfig(reps=7).autopilot_policy().min_voting_reps == 4


class TestDegradeKnownAnswer:
    """The planted-slowdown scenario: the autopilot must shift votes
    off the degraded server while it is slow, and hand them back after
    it heals — without a single invariant violation."""

    CONFIG = SoakConfig(ops=120, seed=1, nemesis_kind="none",
                        autopilot=True, degrade_server="s4")

    def test_votes_shift_off_the_degraded_server(self):
        report = run_sim_soak(self.CONFIG)
        assert report.ok, report.report.violations
        state = report.autopilot
        assert any(record["kind"] == "demote"
                   and record["server"] == "s4"
                   for record in _applied(state))
        assert state["errors"] == 0

    def test_weights_restore_after_healing(self):
        report = run_sim_soak(self.CONFIG)
        state = report.autopilot
        assert state["at_seed_weights"], state["weights"]
        assert state["weights"] == state["seed_votes"]
        kinds = [record["kind"] for record in _applied(state)]
        assert "restore" in kinds

    def test_reassignments_are_feasible_and_flagged(self):
        report = run_sim_soak(self.CONFIG)
        state = report.autopilot
        _assert_feasible(state, self.CONFIG.majority,
                         self.CONFIG.majority, self.CONFIG.majority)
        assert "s4" in state["flagged"]

    def test_applied_reassignments_enter_the_checked_history(self):
        """A reassignment is a committed write at version current + 1;
        the synthetic record keeps the invariant checker's version
        chain gapless over it."""
        report = run_sim_soak(self.CONFIG)
        assert len(_applied(report.autopilot)) >= 2
        versions = [op.version for op in report.history
                    if op.kind == "write" and op.ok]
        assert versions == sorted(versions)
        assert report.ok

    def test_same_seed_same_reassignments(self):
        one = run_sim_soak(self.CONFIG)
        two = run_sim_soak(self.CONFIG)
        assert one.autopilot["reassignments"] == \
            two.autopilot["reassignments"]
        assert one.verdict == two.verdict == "OK"


class TestNemesisSoaks:
    """The autopilot riding along under crash/partition schedules: the
    gate and the old-quorum reconfiguration path must keep every
    invariant, whatever the nemesis does."""

    @pytest.mark.parametrize("kind,seed", [("random", 2),
                                           ("markov", 1)])
    def test_invariants_hold_with_autopilot(self, kind, seed):
        config = SoakConfig(ops=80, seed=seed, nemesis_kind=kind,
                            autopilot=True)
        report = run_sim_soak(config)
        assert report.ok, report.report.violations
        state = report.autopilot
        assert state["errors"] == 0
        _assert_feasible(state, config.majority, config.majority,
                         config.majority)

    def test_autopilot_state_lands_in_the_report(self):
        report = run_sim_soak(SoakConfig(ops=40, seed=2,
                                         autopilot=True))
        assert report.autopilot is not None
        assert "autopilot" in report.summary()
        # Without the autopilot the field stays empty.
        plain = run_sim_soak(SoakConfig(ops=40, seed=2))
        assert plain.autopilot is None


class TestClusterAutopilot:
    CONFIG = ClusterSoakConfig(seed=11, autopilot=True,
                               degrade_server="n2")

    def test_namespace_wide_rollout_holds_invariants(self):
        report = run_cluster_sim_soak(self.CONFIG)
        assert report.ok, report.summary()
        # One controller per suite, every one reported.
        assert set(report.autopilot) == \
            set(self.CONFIG.spec().suite_names)
        applied = sum(state["applied"]
                      for state in report.autopilot.values())
        assert applied > 0
        assert "autopilot" in report.summary()

    def test_every_suite_restores_to_seed(self):
        report = run_cluster_sim_soak(self.CONFIG)
        for name, state in report.autopilot.items():
            assert state["at_seed_weights"], (name, state["weights"])
            floor = self.CONFIG.autopilot_policy().min_voting_reps
            _assert_feasible(state, self.CONFIG.replication // 2 + 1,
                             self.CONFIG.replication // 2 + 1, floor)


class TestLiveKnownAnswer:
    """One wall-clock run: the same controller generator on the live
    kernel shifts votes off the degraded server over real sockets."""

    def test_live_degrade_shifts_votes(self):
        config = SoakConfig(ops=60, seed=1, nemesis_kind="none",
                            autopilot=True, degrade_server="s4",
                            horizon=1.0)
        report = asyncio.run(run_live_soak(config))
        assert report.ok, report.report.violations
        state = report.autopilot
        assert any(record["kind"] == "demote"
                   and record["server"] == "s4"
                   for record in _applied(state))
        _assert_feasible(state, config.majority, config.majority,
                         config.majority)
