"""Nemesis scripts and invariant-checked soaks on both runtimes."""

import asyncio

import pytest

from repro.chaos import (ChaosPolicy, NemesisScript, NemesisStep,
                         markov_nemesis, random_nemesis)
from repro.chaos.soak import SoakConfig, run_live_soak, run_sim_soak
from repro.sim.rng import RandomStreams


class TestNemesisScripts:
    def test_steps_are_sorted_and_horizon_extends(self):
        script = NemesisScript([NemesisStep(50.0, "heal"),
                                NemesisStep(10.0, "crash", ("s1",))],
                               horizon=20.0)
        assert [step.at for step in script] == [10.0, 50.0]
        assert script.horizon == 50.0

    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError):
            NemesisStep(0.0, "meteor", ("s1",))

    def test_random_nemesis_is_deterministic(self):
        one = random_nemesis(["s1", "s2", "s3"], seed=5, horizon=20_000)
        two = random_nemesis(["s1", "s2", "s3"], seed=5, horizon=20_000)
        assert one.steps == two.steps

    def test_random_nemesis_respects_the_disruption_budget(self):
        """Replaying any prefix never leaves more than max_down
        representatives crashed or isolated in a minority group."""
        servers = [f"s{i}" for i in range(1, 6)]
        script = random_nemesis(servers, seed=9, horizon=60_000,
                                mean_interval=400.0)
        max_down = (len(servers) - 1) // 2
        down = set()
        minority = set()
        for step in script:
            if step.action == "crash":
                down.update(step.targets)
            elif step.action == "restart":
                down.difference_update(step.targets)
            elif step.action == "partition":
                minority = set(step.groups[1])
            else:
                minority = set()
            assert len(down) + len(minority - down) <= max_down, \
                step.describe()
        # The script's tail repairs everything.
        assert not down and not minority

    def test_random_nemesis_ends_healed(self):
        script = random_nemesis(["s1", "s2", "s3"], seed=3,
                                horizon=30_000, mean_interval=300.0)
        crashed = set()
        partitioned = False
        for step in script:
            if step.action == "crash":
                crashed.update(step.targets)
            elif step.action == "restart":
                crashed.difference_update(step.targets)
            elif step.action == "partition":
                partitioned = True
            elif step.action == "heal":
                partitioned = False
        assert not crashed and not partitioned

    def test_markov_nemesis_alternates_and_repairs(self):
        script = markov_nemesis(["s1", "s2"], availability=0.9,
                                mttr=500.0, horizon=30_000, seed=4)
        state = {"s1": "up", "s2": "up"}
        for step in script:
            (target,) = step.targets
            if step.action == "crash":
                assert state[target] == "up", step.describe()
                state[target] = "down"
            else:
                assert state[target] == "down", step.describe()
                state[target] = "up"
        assert all(value == "up" for value in state.values())

    def test_markov_nemesis_matches_failure_process_streams(self):
        """Same seed, same per-server stream names as the sim's
        MarkovFailureProcess family: the first crash time equals the
        first expovariate draw from failures:<name>."""
        script = markov_nemesis(["s1"], availability=0.9, mttr=1_000.0,
                                horizon=10**9, seed=8)
        rng = RandomStreams(seed=8).stream("failures:s1")
        mtbf = 1_000.0 * 0.9 / 0.1
        first = rng.expovariate(1.0 / mtbf)
        assert script.steps[0].at == pytest.approx(first)
        assert script.steps[0].action == "crash"


class TestSimSoak:
    def test_small_soak_holds_invariants(self):
        report = run_sim_soak(SoakConfig(ops=40, seed=2))
        assert report.ok, report.report.violations
        assert report.runtime == "sim"
        assert report.report.committed_writes > 0
        assert report.report.successful_reads > 0
        # The nemesis actually did something.
        assert report.nemesis_steps > 0

    def test_same_seed_same_history(self):
        one = run_sim_soak(SoakConfig(ops=30, seed=6))
        two = run_sim_soak(SoakConfig(ops=30, seed=6))
        assert [(op.kind, op.ok, op.version, op.tag)
                for op in one.history] == \
            [(op.kind, op.ok, op.version, op.tag)
             for op in two.history]
        assert one.chaos_stats == two.chaos_stats

    def test_different_seeds_diverge(self):
        one = run_sim_soak(SoakConfig(ops=30, seed=6))
        two = run_sim_soak(SoakConfig(ops=30, seed=7))
        assert [(op.kind, op.version) for op in one.history] != \
            [(op.kind, op.version) for op in two.history]

    def test_final_reads_observe_the_last_committed_version(self):
        config = SoakConfig(ops=30, seed=2)
        report = run_sim_soak(config)
        tail = report.history[-config.final_reads:]
        assert all(op.kind == "read" and op.ok for op in tail)
        assert {op.version for op in tail} == \
            {report.report.final_version}

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SoakConfig(reps=2)
        with pytest.raises(ValueError):
            SoakConfig(ops=0)


class TestLiveSoak:
    """Wall-clock soaks, kept tiny: the nemesis horizon bounds runtime."""

    def test_live_soak_holds_invariants_and_matches_sim_verdict(self):
        config = SoakConfig(ops=12, seed=3, horizon=1_500.0,
                            mean_interval=400.0)
        live = asyncio.run(run_live_soak(config))
        assert live.ok, live.report.violations
        assert live.runtime == "live"
        sim = run_sim_soak(config)
        assert sim.ok, sim.report.violations
        # The acceptance bar: same seed + same nemesis script replayed
        # on the simulator produces the identical verdict.
        assert live.verdict == sim.verdict == "OK"

    def test_live_soak_records_breaker_activity_shape(self):
        config = SoakConfig(ops=8, seed=5, horizon=1_200.0,
                            mean_interval=300.0)
        report = asyncio.run(run_live_soak(config))
        assert report.ok, report.report.violations
        for state in report.breakers.values():
            assert state["state"] in ("closed", "open", "half-open")
