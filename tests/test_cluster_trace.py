"""One connected trace across the directory tier and the data tier.

A cold open is two quorum operations on two different suites — the
directory shard's read (the lookup) and the data suite's read — often
served by different daemons.  With a parent span threaded through
``ShardedNamespace.open_suite`` and ``FileSuiteClient.read``, both must
land in ONE stitched trace tree, on the simulated kernel and on real
TCP daemons alike.
"""

import asyncio

from repro.cluster import ClusterSpec, LiveCluster, SimCluster
from repro.cluster.namespace import SHARD_PREFIX


def _assert_connected_tree(spans, root):
    """Every span hangs off the single root; names span both tiers."""
    tree = [span for span in spans if span.trace_id == root.trace_id]
    ids = {span.span_id for span in tree}
    roots = [span for span in tree if span.parent_id is None]
    assert [span.span_id for span in roots] == [root.span_id]
    for span in tree:
        if span.parent_id is not None:
            assert span.parent_id in ids, \
                f"span {span.name} dangles from {span.parent_id}"

    reads = [span for span in tree if span.name == "suite.read"]
    suites = {str(span.attrs.get("suite", "")) for span in reads}
    assert any(name.startswith(SHARD_PREFIX) for name in suites), \
        f"no directory-shard read in {sorted(suites)}"
    assert "app-002" in suites
    gathers = [span for span in tree if span.name == "quorum.assemble"]
    assert len(gathers) >= 2          # one per tier at minimum
    return tree


def test_cold_open_is_one_trace_on_sim():
    spec = ClusterSpec(servers=3, suites=4, directory_shards=2, seed=5)
    cluster = SimCluster(spec, obs=True).start()
    collector = cluster.bed.collector
    root = collector.start_trace("cluster.cold_read")
    handle = cluster.bed.run(
        cluster.namespace.open_suite("app-002", parent=root))
    result = cluster.bed.run(handle.read(parent=root))
    root.end()
    assert result.data == b"app-002:v1"
    _assert_connected_tree(collector.spans(), root)


def test_cold_open_is_one_trace_on_live(tmp_path):
    spec = ClusterSpec(servers=3, suites=4, directory_shards=2, seed=5)

    async def scenario():
        async with LiveCluster(spec,
                               data_root=str(tmp_path)) as cluster:
            client = cluster.loopback.client
            root = client.collector.start_trace("cluster.cold_read")
            handle = await cluster.loopback.run(
                cluster.namespace.open_suite("app-002", parent=root))
            result = await cluster.loopback.run(
                handle.read(parent=root))
            root.end()
            assert result.data == b"app-002:v1"
            # Merged client + server spans: the tree crosses processes.
            spans = cluster.loopback.merged_spans()
            tree = _assert_connected_tree(spans, root)
            origins = {span.origin for span in tree}
            assert len(origins) > 1, \
                f"trace never crossed a process: {origins}"

    asyncio.run(scenario())
