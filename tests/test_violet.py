"""The Violet-style calendar application over file suites."""

import pytest

from tests.helpers import triple_config
from repro.testbed import Testbed
from repro.violet import (Appointment, Calendar, CalendarError,
                          decode_calendar, empty_calendar_data,
                          encode_calendar)


@pytest.fixture
def cal_bed():
    bed = Testbed(servers=["s1", "s2", "s3"], clients=["alice", "bob"],
                  seed=13)
    config = triple_config(name="cal")
    suite_alice = bed.install(config, empty_calendar_data(),
                              client="alice")
    suite_bob = bed.suite(config, client="bob")
    return bed, Calendar(suite_alice, "alice"), Calendar(suite_bob, "bob")


class TestAppointment:
    def test_rejects_reversed_times(self):
        with pytest.raises(CalendarError):
            Appointment(entry_id=1, title="x", start=5.0, end=4.0,
                        owner="a")

    def test_overlap_logic(self):
        first = Appointment(1, "a", 1.0, 3.0, "u")
        second = Appointment(2, "b", 2.0, 4.0, "u")
        third = Appointment(3, "c", 3.0, 5.0, "u")
        assert first.overlaps(second)
        assert not first.overlaps(third)  # touching is not overlapping

    def test_encoding_round_trip(self):
        entries = [Appointment(1, "meet", 9.0, 10.0, "a", ("b", "c"))]
        blob = encode_calendar(2, entries)
        next_id, decoded = decode_calendar(blob)
        assert next_id == 2
        assert decoded == entries

    def test_decode_empty_blob(self):
        assert decode_calendar(b"") == (1, [])

    def test_entries_sorted_by_start(self):
        entries = [Appointment(1, "late", 15.0, 16.0, "a"),
                   Appointment(2, "early", 9.0, 10.0, "a")]
        _next, decoded = decode_calendar(encode_calendar(3, entries))
        assert [e.title for e in decoded] == ["early", "late"]


class TestCalendarOperations:
    def test_add_and_list(self, cal_bed):
        bed, alice, bob = cal_bed

        def flow():
            yield from alice.add_appointment("standup", 9.0, 9.5)
            yield from bob.add_appointment("review", 10.0, 11.0)
            entries = yield from alice.appointments()
            return [(e.title, e.owner) for e in entries]

        assert bed.run(flow()) == [("standup", "alice"),
                                   ("review", "bob")]

    def test_ids_unique_across_users(self, cal_bed):
        bed, alice, bob = cal_bed

        def flow():
            a = yield from alice.add_appointment("a", 1.0, 2.0)
            b = yield from bob.add_appointment("b", 3.0, 4.0)
            c = yield from alice.add_appointment("c", 5.0, 6.0)
            return [a.entry_id, b.entry_id, c.entry_id]

        ids = bed.run(flow())
        assert len(set(ids)) == 3

    def test_cancel_own_entry(self, cal_bed):
        bed, alice, _bob = cal_bed

        def flow():
            entry = yield from alice.add_appointment("tmp", 1.0, 2.0)
            yield from alice.cancel(entry.entry_id)
            return (yield from alice.appointments())

        assert bed.run(flow()) == []

    def test_cancel_foreign_entry_rejected(self, cal_bed):
        bed, alice, bob = cal_bed

        def flow():
            entry = yield from alice.add_appointment("mine", 1.0, 2.0)
            try:
                yield from bob.cancel(entry.entry_id)
                return "cancelled"
            except CalendarError:
                return "refused"

        assert bed.run(flow()) == "refused"

    def test_cancel_unknown_rejected(self, cal_bed):
        bed, alice, _bob = cal_bed

        def flow():
            try:
                yield from alice.cancel(999)
                return "ok"
            except CalendarError:
                return "missing"

        assert bed.run(flow()) == "missing"

    def test_reschedule(self, cal_bed):
        bed, alice, _bob = cal_bed

        def flow():
            entry = yield from alice.add_appointment("move", 9.0, 10.0)
            moved = yield from alice.reschedule(entry.entry_id, 14.0, 15.0)
            entries = yield from alice.appointments()
            return moved.start, entries[0].start

        assert bed.run(flow()) == (14.0, 14.0)

    def test_agenda_includes_invitations(self, cal_bed):
        bed, alice, bob = cal_bed

        def flow():
            yield from alice.add_appointment("1:1", 9.0, 10.0,
                                             attendees=("bob",))
            yield from alice.add_appointment("solo", 11.0, 12.0)
            agenda = yield from bob.agenda_for("bob")
            return [e.title for e in agenda]

        assert bed.run(flow()) == ["1:1"]

    def test_between_window(self, cal_bed):
        bed, alice, _bob = cal_bed

        def flow():
            yield from alice.add_appointment("early", 8.0, 9.0)
            yield from alice.add_appointment("mid", 10.0, 11.0)
            yield from alice.add_appointment("late", 15.0, 16.0)
            window = yield from alice.between(9.5, 12.0)
            return [e.title for e in window]

        assert bed.run(flow()) == ["mid"]


class TestConflictDetection:
    def test_conflicting_add_rejected(self, cal_bed):
        bed, alice, bob = cal_bed

        def flow():
            yield from alice.add_appointment("busy", 9.0, 10.0,
                                             attendees=("bob",))
            try:
                yield from bob.add_appointment("clash", 9.5, 10.5,
                                               reject_conflicts=True)
                return "added"
            except CalendarError:
                return "conflict"

        assert bed.run(flow()) == "conflict"

    def test_non_overlapping_people_no_conflict(self, cal_bed):
        bed, alice, bob = cal_bed

        def flow():
            yield from alice.add_appointment("a-own", 9.0, 10.0)
            entry = yield from bob.add_appointment(
                "same-time", 9.0, 10.0, reject_conflicts=True)
            return entry.title

        assert bed.run(flow()) == "same-time"

    def test_failed_conflict_add_leaves_no_locks(self, cal_bed):
        bed, alice, bob = cal_bed

        def flow():
            yield from alice.add_appointment("busy", 9.0, 10.0,
                                             attendees=("bob",))
            try:
                yield from bob.add_appointment("clash", 9.0, 10.0,
                                               reject_conflicts=True)
            except CalendarError:
                pass
            # Immediately writable: the aborted attempt released locks.
            entry = yield from bob.add_appointment("later", 20.0, 21.0)
            return entry.title

        assert bed.run(flow()) == "later"


class TestConcurrency:
    def test_no_lost_updates(self, cal_bed):
        bed, alice, bob = cal_bed

        def race():
            pa = bed.sim.spawn(alice.add_appointment("a", 1.0, 2.0))
            pb = bed.sim.spawn(bob.add_appointment("b", 3.0, 4.0))
            yield bed.sim.all_of([pa, pb])
            entries = yield from alice.appointments()
            return sorted(e.title for e in entries)

        assert bed.run(race()) == ["a", "b"]

    def test_concurrent_conflicting_adds_one_wins(self, cal_bed):
        bed, alice, bob = cal_bed

        def one(cal, title):
            try:
                entry = yield from cal.add_appointment(
                    title, 9.0, 10.0, attendees=("alice", "bob"),
                    reject_conflicts=True)
                return entry.title
            except CalendarError:
                return None

        def race():
            pa = bed.sim.spawn(one(alice, "a-slot"))
            pb = bed.sim.spawn(one(bob, "b-slot"))
            results = yield bed.sim.all_of([pa, pb])
            entries = yield from alice.appointments()
            return results, [e.title for e in entries]

        results, entries = bed.run(race())
        winners = [r for r in results if r is not None]
        assert len(winners) == 1
        assert entries == winners

    def test_calendar_survives_server_crash(self, cal_bed):
        bed, alice, _bob = cal_bed

        def flow():
            yield from alice.add_appointment("before", 1.0, 2.0)
            bed.crash("s1")
            yield from alice.add_appointment("during", 3.0, 4.0)
            bed.restart("s1")
            entries = yield from alice.appointments()
            return [e.title for e in entries]

        assert bed.run(flow()) == ["before", "during"]
