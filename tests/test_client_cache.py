"""Client-resident weak representatives (temporary copies)."""

import pytest

from tests.helpers import triple_config
from repro.core import CachingSuiteClient
from repro.testbed import Testbed


@pytest.fixture
def cached(bed):
    config = triple_config()
    suite = bed.install(config)  # plain handle installs the files
    bed.run(suite.write(b"v2-data"))
    node = bed.clients["client"]
    return CachingSuiteClient(node.manager, config,
                              refresher=node.refresher,
                              metrics=bed.metrics, streams=bed.streams)


class TestCacheBehaviour:
    def test_first_read_populates(self, bed, cached):
        result = bed.run(cached.read())
        assert result.data == b"v2-data"
        assert cached.cached_version == result.version
        assert bed.metrics.counter("cache.hits").value == 0

    def test_second_read_served_from_cache(self, bed, cached):
        bed.run(cached.read())
        result = bed.run(cached.read())
        assert result.served_by == "client-cache"
        assert result.data == b"v2-data"
        assert bed.metrics.counter("cache.hits").value == 1

    def test_remote_write_invalidates_via_version_check(self, bed,
                                                        cached):
        bed.run(cached.read())
        other = bed.suite(cached.config)
        bed.run(other.write(b"fresh"))
        result = bed.run(cached.read())
        assert result.data == b"fresh"
        assert result.served_by != "client-cache"
        assert bed.metrics.counter("cache.misses").value == 1
        # And the cache is warm again at the new version.
        again = bed.run(cached.read())
        assert again.served_by == "client-cache"
        assert again.data == b"fresh"

    def test_own_write_warms_cache(self, bed, cached):
        bed.run(cached.write(b"mine"))
        result = bed.run(cached.read())
        assert result.served_by == "client-cache"
        assert result.data == b"mine"

    def test_invalidate_forces_full_read(self, bed, cached):
        bed.run(cached.read())
        cached.invalidate()
        assert cached.cached_version is None
        result = bed.run(cached.read())
        assert result.served_by != "client-cache"

    def test_disabled_cache_always_full_reads(self, bed):
        config = triple_config()
        bed.install(config, b"data")
        node = bed.clients["client"]
        client = CachingSuiteClient(node.manager, config,
                                    metrics=bed.metrics,
                                    cache_enabled=False)
        bed.run(client.read())
        result = bed.run(client.read())
        assert result.served_by != "client-cache"
        assert bed.metrics.counter("cache.hits").value == 0

    def test_cache_hit_still_needs_read_quorum(self, bed, cached):
        """The cache never weakens availability requirements: with the
        read quorum gone, a cached client blocks like anyone else."""
        bed.run(cached.read())
        cached.max_attempts = 1
        cached.inquiry_timeout = 50.0
        bed.crash("s1")
        bed.crash("s2")
        from repro.errors import QuorumUnavailableError
        with pytest.raises(QuorumUnavailableError):
            bed.run(cached.read())

    def test_cache_hit_result_carries_quorum_evidence(self, bed, cached):
        """Regression: a cache hit used to report an empty quorum, an
        empty observed map and a default attempt count, as if no
        inquiry had happened.  The currency check *is* a full version
        inquiry, and the result must say so."""
        bed.run(cached.read())
        result = bed.run(cached.read())
        assert result.served_by == "client-cache"
        assert result.attempts == 1
        assert len(result.quorum) >= cached.config.read_quorum
        assert result.observed
        assert all(version == result.version
                   for version in result.observed.values())
        assert set(result.quorum) <= set(result.observed)

    def test_cache_miss_resolves_in_one_trip(self):
        """A miss costs one data-bearing round: the inquiry that
        detected the stale copy also piggybacked the fresh bytes, so no
        separate ``txn.read`` follows."""
        from repro.rpc.messages import Request

        bed = Testbed(servers=["s1", "s2", "s3"], seed=7,
                      refresh_enabled=False)
        config = triple_config()
        bed.install(config, b"old")
        client = CachingSuiteClient(bed.clients["client"].manager,
                                    config, metrics=bed.metrics)
        bed.run(client.read())                    # populate the cache
        bed.run(bed.suite(config).write(b"fresh"))  # invalidate remotely
        methods = []
        original_send = bed.network.send

        def counting_send(source, destination, payload):
            if isinstance(payload, Request):
                methods.append(payload.method)
            original_send(source, destination, payload)

        bed.network.send = counting_send
        result = bed.run(client.read())
        assert result.data == b"fresh"
        assert result.served_by != "client-cache"
        assert methods.count("txn.read") == 0
        assert bed.metrics.counter("cache.misses").value == 1
        # And the fresh copy warmed the cache again.
        again = bed.run(client.read())
        assert again.served_by == "client-cache"

    def test_cache_hit_is_cheaper_than_full_read(self, bed):
        """On a bandwidth-limited link the version inquiry is far
        cheaper than a data transfer."""
        bed2 = Testbed(servers=["s1", "s2", "s3"])
        data = b"x" * 8_192
        for server in ("s1", "s2", "s3"):
            bed2.set_client_link("client", server, 1.0,
                                 byte_time=50.0 / len(data))
        config = triple_config()
        bed2.install(config, data)
        node = bed2.clients["client"]
        client = CachingSuiteClient(node.manager, config,
                                    metrics=bed2.metrics)

        def timed_read():
            start = bed2.sim.now
            yield from client.read()
            return bed2.sim.now - start

        cold = bed2.run(timed_read())
        warm = bed2.run(timed_read())
        assert warm < cold / 3
