"""Background refresh: convergence, monotonicity, dedup, ablation."""

import pytest

from tests.helpers import triple_config
from repro.testbed import Testbed


def versions(bed, suite_name="db"):
    return {name: node.server.fs.stat(f"suite:{suite_name}").version
            for name, node in bed.servers.items()
            if node.server.fs.exists(f"suite:{suite_name}")}


class TestConvergence:
    def test_all_reps_current_after_settle(self, bed):
        suite = bed.install(triple_config(), b"v1")
        for i in range(4):
            bed.run(suite.write(f"v{i + 2}".encode()))
        bed.settle()
        assert set(versions(bed).values()) == {5}

    def test_refresh_counts_reported(self, bed):
        suite = bed.install(triple_config(), b"v1")
        bed.run(suite.write(b"v2"))
        bed.settle()
        assert bed.metrics.counter("refresh.scheduled").value >= 1
        assert bed.metrics.counter("refresh.completed").value >= 1

    def test_weak_reps_refreshed_too(self, bed):
        config = triple_config(votes=(1, 1, 0), r=1, w=2)
        suite = bed.install(config, b"v1")
        bed.run(suite.write(b"v2"))
        bed.settle()
        assert versions(bed)["s3"] == 2

    def test_refresh_recovers_after_target_restart(self, bed):
        suite = bed.install(triple_config(), b"v1")
        suite.refresher.retry_backoff = 200.0
        bed.crash("s3")
        bed.run(suite.write(b"v2"))
        bed.settle(100.0)
        bed.restart("s3")
        bed.settle(10_000.0)
        assert versions(bed)["s3"] == 2


class TestMonotonicity:
    def test_refresh_never_regresses_version(self, bed):
        """A refresh for an old version must not clobber a newer write
        that landed on the target meanwhile (only_if_newer guard)."""
        suite = bed.install(triple_config(), b"v1")
        # Leave rep-3 stale at v1, then immediately write again with a
        # quorum that *includes* rep-3 before the refresh runs.
        suite.refresher.delay = 500.0
        bed.run(suite.write(b"v2"))            # quorum s1+s2 (cheapest)
        bed.crash("s1")
        bed.run(suite.write(b"v3"))            # quorum s2+s3
        bed.restart("s1")
        bed.settle(20_000.0)
        final = versions(bed)
        assert final["s2"] == 3
        assert final["s3"] == 3  # not regressed to 2 by the refresher
        read = bed.run(suite.read())
        assert read.data == b"v3"


class TestDeduplication:
    def test_inflight_refresh_not_duplicated(self, bed):
        suite = bed.install(triple_config(), b"v1")
        suite.refresher.delay = 1_000.0
        bed.run(suite.write(b"v2"))
        scheduled_before = bed.metrics.counter("refresh.scheduled").value
        # Reads that notice the same stale rep must not re-schedule it.
        bed.crash("s1")
        bed.run(suite.read())
        bed.run(suite.read())
        assert bed.metrics.counter("refresh.scheduled").value == \
            scheduled_before
        bed.restart("s1")
        bed.settle(30_000.0)


class TestAblation:
    def test_disabled_refresher_counts_drops(self):
        bed = Testbed(servers=["s1", "s2", "s3"], refresh_enabled=False)
        suite = bed.install(triple_config(), b"v1")
        bed.run(suite.write(b"v2"))
        bed.settle()
        assert bed.metrics.counter("refresh.dropped").value >= 1
        assert versions(bed)["s3"] == 1

    def test_disabled_refresh_still_correct_reads(self):
        """Staleness is a performance problem, never a correctness one:
        with refresh off, reads still return the latest committed data."""
        bed = Testbed(servers=["s1", "s2", "s3"], refresh_enabled=False)
        suite = bed.install(triple_config(), b"v1")
        for i in range(5):
            bed.run(suite.write(f"v{i + 2}".encode()))
        bed.crash("s1")  # push reads onto the staler members
        result = bed.run(suite.read())
        assert result.data == b"v6"
