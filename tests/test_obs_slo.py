"""Declarative SLOs: windows, burn rates, and two-window alerting."""

import pytest

from repro.obs.slo import (OK, PAGE, WARN, SLOEvaluator, SLOSpec,
                           SLOTracker, read_latency_slo, staleness_slo,
                           success_rate_slo)


class TestSpec:
    def test_threshold_classification(self):
        spec = read_latency_slo(threshold_ms=100.0)
        assert spec.good(100.0)
        assert not spec.good(100.1)
        assert spec.kind == "read_latency"

    def test_boolean_classification(self):
        spec = success_rate_slo()
        assert spec.good(1.0)
        assert not spec.good(0.0)

    def test_error_budget_never_zero(self):
        spec = SLOSpec(name="s", kind="success", target=1.0)
        assert spec.error_budget > 0.0


class TestTracker:
    def test_requires_time_order(self):
        tracker = SLOTracker(success_rate_slo())
        tracker.record(10.0, True)
        tracker.record(10.0, True)        # equal timestamps are fine
        with pytest.raises(ValueError):
            tracker.record(9.0, True)

    def test_window_counts_slide(self):
        tracker = SLOTracker(SLOSpec(name="s", kind="success",
                                     target=0.9, window_ms=100.0))
        tracker.record(0.0, False)
        tracker.record(50.0, True)
        tracker.record(120.0, False)
        assert tracker.window_counts(120.0, 100.0) == (1, 2)
        assert tracker.window_counts(120.0, 1_000.0) == (2, 3)

    def test_burn_rate_relative_to_budget(self):
        spec = SLOSpec(name="s", kind="success", target=0.9,
                       window_ms=100.0)
        tracker = SLOTracker(spec)
        for index in range(9):
            tracker.record(float(index), True)
        tracker.record(9.0, False)
        # 10% bad over a 10% budget: burn exactly 1.
        assert tracker.burn_rate(9.0, 100.0) == pytest.approx(1.0)

    def test_two_window_rule(self):
        spec = SLOSpec(name="s", kind="success", target=0.9,
                       window_ms=1_000.0, short_window_ms=100.0,
                       page_burn=5.0, warn_burn=2.0)
        tracker = SLOTracker(spec)
        # An old burst of failures, then a long healthy stretch: the
        # long window still burns but the short window is clean, so no
        # alert fires for an incident that is already over.
        for index in range(10):
            tracker.record(float(index), False)
        for index in range(10, 30):
            tracker.record(float(index) * 30.0, True)
        status = tracker.status(900.0)
        assert status.burn_long >= spec.warn_burn
        assert status.burn_short < spec.warn_burn
        assert status.state == OK

        # A fresh burst lights up both windows.
        fresh = SLOTracker(spec)
        for index in range(20):
            fresh.record(float(index), index % 2 == 0)
        status = fresh.status(19.0)
        assert status.burn_long >= spec.page_burn
        assert status.burn_short >= spec.page_burn
        assert status.state == PAGE

    def test_warn_between_thresholds(self):
        spec = SLOSpec(name="s", kind="success", target=0.9,
                       window_ms=100.0, short_window_ms=100.0,
                       page_burn=5.0, warn_burn=2.0)
        tracker = SLOTracker(spec)
        for index in range(10):
            tracker.record(float(index), index != 0)   # 10% bad: burn 1
        assert tracker.status(9.0).state == OK
        for index in range(10, 13):
            tracker.record(float(index), False)        # now > 2x budget
        status = tracker.status(13.0)
        assert status.state == WARN

    def test_empty_tracker_is_ok(self):
        status = SLOTracker(success_rate_slo()).status(0.0)
        assert status.state == OK
        assert status.compliance == 1.0


class TestEvaluator:
    def test_fan_out_by_kind_and_worst_first(self):
        evaluator = SLOEvaluator([
            success_rate_slo(target=0.5),
            read_latency_slo(threshold_ms=10.0, target=0.5,
                             page_burn=1.5, warn_burn=1.1),
            staleness_slo(),
        ])
        for index in range(10):
            now = float(index)
            evaluator.observe("success", now, 1.0)
            evaluator.observe("read_latency", now, 999.0)  # all bad
        statuses = evaluator.evaluate(10.0)
        assert statuses[0].name.startswith("read-p99")
        assert statuses[0].state == PAGE
        assert evaluator.worst_state(10.0) == PAGE
        rendered = evaluator.render(10.0)
        assert "[PAGE]" in rendered
        assert "op-success" in rendered

    def test_deterministic_under_replay(self):
        def run():
            evaluator = SLOEvaluator([success_rate_slo(target=0.9),
                                      read_latency_slo()])
            for index in range(50):
                now = float(index * 7)
                evaluator.observe("success", now, float(index % 3 != 0))
                evaluator.observe("read_latency", now,
                                  float(index % 10) * 40.0)
            return evaluator.render(350.0)

        assert run() == run()
