"""Raw page store and careful/stable storage."""

import pytest

from repro.errors import NoSuchPageError, PageCorruptError
from repro.storage import CarefulStore, PageStore, StableStore


class TestPageStore:
    def test_round_trip(self):
        store = PageStore(8)
        store.write(3, b"hello")
        assert store.read(3) == b"hello"

    def test_unwritten_page_empty(self):
        assert PageStore(4).read(2) == b""

    def test_out_of_range_rejected(self):
        store = PageStore(4)
        with pytest.raises(NoSuchPageError):
            store.read(4)
        with pytest.raises(NoSuchPageError):
            store.write(-1, b"x")

    def test_oversized_write_rejected(self):
        store = PageStore(4, page_size=64)
        with pytest.raises(ValueError):
            store.write(0, b"x" * 65)

    def test_decay_changes_bytes(self):
        store = PageStore(4)
        store.write(0, b"abc")
        store.decay(0)
        assert store.read(0) != b"abc"

    def test_tear_replaces_content(self):
        store = PageStore(4)
        store.write(1, b"data")
        store.tear(1)
        assert store.read(1) == b"\x00TORN\x00"

    def test_io_counters(self):
        store = PageStore(4)
        store.write(0, b"a")
        store.read(0)
        store.read(0)
        assert store.writes == 1
        assert store.reads == 2

    def test_minimum_sizes_enforced(self):
        with pytest.raises(ValueError):
            PageStore(0)
        with pytest.raises(ValueError):
            PageStore(4, page_size=10)


class TestCarefulStore:
    def build(self):
        return CarefulStore(PageStore(8))

    def test_round_trip(self):
        store = self.build()
        store.write(0, b"payload")
        assert store.read(0) == b"payload"

    def test_detects_decay(self):
        store = self.build()
        store.write(0, b"payload")
        store.pages.decay(0, flip_byte=10)
        with pytest.raises(PageCorruptError):
            store.read(0)
        assert not store.is_good(0)

    def test_detects_torn_write(self):
        store = self.build()
        store.write(0, b"payload")
        store.pages.tear(0)
        with pytest.raises(PageCorruptError):
            store.read(0)

    def test_unwritten_page_is_corrupt(self):
        with pytest.raises(PageCorruptError):
            self.build().read(5)

    def test_payload_capacity(self):
        store = self.build()
        store.write(0, b"x" * store.payload_size)
        with pytest.raises(ValueError):
            store.write(0, b"x" * (store.payload_size + 1))

    def test_empty_payload_ok(self):
        store = self.build()
        store.write(0, b"")
        assert store.read(0) == b""


class TestStableStore:
    def test_round_trip(self):
        store = StableStore.create(8)
        store.write(2, b"stable")
        assert store.read(2) == b"stable"

    def test_masks_primary_decay(self):
        store = StableStore.create(8)
        store.write(0, b"keep")
        store.primary.pages.decay(0)
        assert store.read(0) == b"keep"

    def test_recover_repairs_decayed_primary(self):
        store = StableStore.create(8)
        store.write(0, b"keep")
        store.primary.pages.decay(0)
        assert store.recover() == 1
        assert store.primary.read(0) == b"keep"

    def test_recover_repairs_decayed_shadow(self):
        store = StableStore.create(8)
        store.write(0, b"keep")
        store.shadow.pages.decay(0)
        store.recover()
        assert store.shadow.read(0) == b"keep"

    def test_crash_between_writes_primary_wins(self):
        store = StableStore.create(8)
        store.write(0, b"old")
        store.write_primary(0, b"new")  # crash before shadow write
        store.recover()
        assert store.read(0) == b"new"
        assert store.shadow.read(0) == b"new"

    def test_double_fault_raises(self):
        store = StableStore.create(8)
        store.write(0, b"gone")
        store.primary.pages.decay(0)
        store.shadow.pages.decay(0)
        with pytest.raises(PageCorruptError):
            store.recover()

    def test_blank_pages_skipped_in_recover(self):
        store = StableStore.create(8)
        assert store.recover() == 0

    def test_mismatched_sizes_rejected(self):
        with pytest.raises(ValueError):
            StableStore(CarefulStore(PageStore(4)),
                        CarefulStore(PageStore(8)))
