"""Live reconfiguration of vote assignments."""

import pytest

from tests.helpers import triple_config
from repro.core import (Representative, SuiteConfiguration,
                        change_configuration, make_configuration)
from repro.core.reconfig import _delete_representative
from repro.errors import InvalidConfigurationError
from repro.testbed import Testbed


class TestBasicReconfiguration:
    def test_quorum_change(self, bed):
        suite = bed.install(triple_config(), b"data")
        new = triple_config(r=1, w=3)
        installed = bed.run(change_configuration(suite, new))
        assert installed.config_version == 2
        assert suite.config.read_quorum == 1
        assert bed.run(suite.read()).data == b"data"
        assert bed.run(suite.write(b"after")).version > 1

    def test_vote_change(self, bed):
        suite = bed.install(triple_config(), b"data")
        new = triple_config(votes=(2, 1, 1), r=2, w=3)
        installed = bed.run(change_configuration(suite, new))
        assert installed.total_votes == 4
        write = bed.run(suite.write(b"weighted"))
        # rep-1 (2 votes) + rep-2 form the cheapest 3-vote quorum
        assert write.quorum == ["rep-1", "rep-2"]

    def test_wrong_suite_name_rejected(self, bed):
        suite = bed.install(triple_config(), b"data")
        other = triple_config(name="other")
        with pytest.raises(InvalidConfigurationError):
            bed.run(change_configuration(suite, other))

    def test_config_version_monotonic_over_changes(self, bed):
        suite = bed.install(triple_config(), b"data")
        for r, w in ((1, 3), (2, 2), (2, 3)):
            bed.run(change_configuration(suite, triple_config(r=r, w=w)))
        assert suite.config.config_version == 4

    def test_data_version_bumped_by_reconfig(self, bed):
        suite = bed.install(triple_config(), b"data")
        before = bed.run(suite.current_version())
        bed.run(change_configuration(suite, triple_config(r=1, w=3)))
        after = bed.run(suite.current_version())
        assert after == before + 1


class TestPropagation:
    def test_stale_client_adopts_new_configuration(self, bed):
        old = triple_config()
        suite = bed.install(old, b"data")
        bed.run(change_configuration(suite, triple_config(r=1, w=3)))
        bed.settle()
        stale_client = bed.suite(old)
        result = bed.run(stale_client.read())
        assert result.data == b"data"
        assert stale_client.config.config_version == 2
        assert stale_client.config.write_quorum == 3
        assert bed.metrics.counter("suite.config_refreshes").value >= 1

    def test_all_reps_carry_new_stamp_after_settle(self, bed):
        suite = bed.install(triple_config(), b"data")
        bed.run(change_configuration(suite, triple_config(r=1, w=3)))
        bed.settle()
        for node in bed.servers.values():
            properties = node.server.fs.stat("suite:db").properties
            assert properties["stamp"] == 2

    def test_reconfig_with_one_server_down(self, bed):
        suite = bed.install(triple_config(), b"data")
        bed.crash("s3")
        installed = bed.run(
            change_configuration(suite, triple_config(r=1, w=3)))
        assert installed.config_version == 2
        bed.restart("s3")
        bed.settle(30_000.0)
        # s3 catches up through background refresh.
        assert bed.servers["s3"].server.fs.stat(
            "suite:db").properties["stamp"] == 2


class TestMembershipChange:
    def test_add_representative(self, bed):
        bed.add_server("s4")
        suite = bed.install(triple_config(), b"data")
        reps = suite.config.representatives + (
            Representative(rep_id="rep-4", server="s4", votes=1,
                           latency_hint=5.0),)
        new = SuiteConfiguration(suite_name="db", representatives=reps,
                                 read_quorum=2, write_quorum=3)
        installed = bed.run(change_configuration(suite, new))
        assert installed.total_votes == 4
        assert bed.servers["s4"].server.fs.exists("suite:db")
        assert bed.run(suite.read()).data == b"data"

    def test_remove_representative(self, bed):
        suite = bed.install(triple_config(), b"data")
        new = SuiteConfiguration(
            suite_name="db",
            representatives=suite.config.representatives[:2],
            read_quorum=1, write_quorum=2)
        installed = bed.run(change_configuration(suite, new))
        assert len(installed.representatives) == 2
        bed.settle()
        # The removed representative's copy is deleted best-effort.
        assert not bed.servers["s3"].server.fs.exists("suite:db")
        assert bed.run(suite.write(b"post")).version > 1

    def test_demote_to_weak(self, bed):
        suite = bed.install(triple_config(latencies=(10.0, 20.0, 1.0)),
                            b"data")
        new = triple_config(votes=(1, 1, 0), r=1, w=2,
                            latencies=(10.0, 20.0, 1.0))
        bed.run(change_configuration(suite, new))
        bed.settle()
        result = bed.run(suite.read())
        # The demoted, now-weak representative is the fastest current one.
        assert result.served_by == "rep-3"


class TestBestEffortCleanup:
    def test_failed_delete_does_not_fail_the_commit(self, bed):
        """Removing a crashed representative commits fine; the
        background delete gives up silently (no orphan-process crash
        out of the settle)."""
        suite = bed.install(triple_config(), b"data")
        bed.crash("s3")
        new = SuiteConfiguration(
            suite_name="db",
            representatives=suite.config.representatives[:2],
            read_quorum=1, write_quorum=2)
        installed = bed.run(change_configuration(suite, new))
        assert installed.config_version == 2
        bed.settle(30_000.0)          # cleanup times out, swallowed
        assert bed.run(suite.write(b"post")).version > 1
        bed.restart("s3")
        # The unreferenced copy survives on the removed server; it can
        # never affect a quorum again.
        assert bed.servers["s3"].server.fs.exists("suite:db")

    def test_readded_representative_is_recreated_cleanly(self, bed):
        suite = bed.install(triple_config(), b"data")
        removed = SuiteConfiguration(
            suite_name="db",
            representatives=suite.config.representatives[:2],
            read_quorum=1, write_quorum=2)
        bed.run(change_configuration(suite, removed))
        bed.settle()
        assert not bed.servers["s3"].server.fs.exists("suite:db")
        readded = triple_config(r=2, w=2)
        installed = bed.run(change_configuration(suite, readded))
        assert installed.config_version == 3
        bed.settle()
        assert bed.servers["s3"].server.fs.stat(
            "suite:db").properties["stamp"] == 3
        assert bed.run(suite.read()).data == b"data"
        assert bed.run(suite.write(b"again")).version > 1

    def test_late_delete_skips_a_readded_copy(self, bed):
        """A background delete from configuration v2 that fires after a
        v3 reconfiguration re-added the server must leave the re-staged
        copy alone (stamp guard)."""
        suite = bed.install(triple_config(), b"data")
        removed = SuiteConfiguration(
            suite_name="db",
            representatives=suite.config.representatives[:2],
            read_quorum=1, write_quorum=2)
        bed.run(change_configuration(suite, removed))
        bed.settle()
        bed.run(change_configuration(suite, triple_config()))
        bed.settle()
        assert bed.servers["s3"].server.fs.exists("suite:db")
        # Replay v2's cleanup as if its delivery had been delayed.
        bed.run(_delete_representative(suite, "s3", "suite:db", 2))
        bed.settle()
        assert bed.servers["s3"].server.fs.exists("suite:db")
        assert bed.servers["s3"].server.fs.stat(
            "suite:db").properties["stamp"] == 3


class TestConcurrentReconfiguration:
    def test_racing_clients_resolve_via_adoption(self, bed):
        """Two clients reconfigure the same suite concurrently.  The
        loser hits StaleConfigurationError, adopts the winner's
        configuration, and retries on top of it — no configuration
        version is lost and both changes land."""
        suite_a = bed.install(triple_config(), b"data",
                              max_attempts=8)
        bed.add_client("c2")
        suite_b = bed.suite(triple_config(), client="c2",
                            max_attempts=8)
        results = {}

        def runner(key, client, target):
            installed = yield from change_configuration(client, target)
            results[key] = installed

        bed.sim.spawn(runner("a", suite_a,
                             triple_config(votes=(2, 1, 1), r=2, w=3)),
                      name="reconfig-a")
        bed.sim.spawn(runner("b", suite_b, triple_config(r=1, w=3)),
                      name="reconfig-b")
        bed.settle(60_000.0)
        assert set(results) == {"a", "b"}
        # Serialized: one installed version 2, the other version 3.
        versions = {results["a"].config_version,
                    results["b"].config_version}
        assert versions == {2, 3}
        # Every representative carries the final configuration stamp.
        for node in bed.servers.values():
            properties = node.server.fs.stat("suite:db").properties
            assert properties["stamp"] == 3
        # A fresh client sees the final configuration and can operate.
        bed.add_client("c3")
        fresh = bed.suite(triple_config(), client="c3")
        assert bed.run(fresh.read()).data == b"data"
        assert fresh.config.config_version == 3


class TestCrossConfigurationCoverage:
    def test_weight_shift_covers_new_write_quorum(self):
        """A pure vote reassignment commits at an *old*-configuration
        write quorum, which under the shifted weights can hold fewer
        than the new ``w`` votes.  The post-commit coverage pass must
        top the copy set up so a new-configuration read quorum cannot
        be assembled entirely from representatives that missed the
        reconfiguration version."""
        # No background refresh anywhere: the coverage pass alone must
        # make the new version visible.
        bed = Testbed(["s1", "s2", "s3", "s4", "s5"], seed=7,
                      refresh_enabled=False)
        old = make_configuration(
            "db",
            [("s1", 1), ("s2", 1), ("s3", 1), ("s4", 1), ("s5", 1)],
            read_quorum=3, write_quorum=3,
            latency_hints={"s1": 1.0, "s2": 2.0, "s3": 3.0,
                           "s4": 4.0, "s5": 5.0})
        suite = bed.install(old, b"v1")
        bed.run(suite.write(b"v2"))
        # Shift weight onto s4/s5 while making them the cheapest.  The
        # reconfiguration commits at the old cheapest write quorum
        # {s1, s2, s3} — only 2 of the required 3 votes under the new
        # weights — so without the coverage pass a read quorum closing
        # on {s4, s5} alone would miss the reconfiguration version.
        new = make_configuration(
            "db",
            [("s1", 1), ("s2", 1), ("s3", 0), ("s4", 2), ("s5", 1)],
            read_quorum=3, write_quorum=3,
            latency_hints={"s1": 10.0, "s2": 20.0, "s3": 30.0,
                           "s4": 1.0, "s5": 2.0})
        installed = bed.run(change_configuration(suite, new))
        assert installed.config_version == 2
        # The reader's links to the old quorum are slow, so its gather
        # genuinely closes on {s4, s5} (3 votes) before s1-s3 reply.
        bed.add_client("c2", refresh_enabled=False)
        for server in ("s1", "s2", "s3"):
            bed.network.set_latency("c2", server, 50.0)
            bed.network.set_latency(server, "c2", 50.0)
        reader = bed.suite(installed, client="c2")
        result = bed.run(reader.read())
        assert result.version == 3
        assert result.data == b"v2"

    def test_coverage_tolerates_unreachable_extra(self):
        """If the representative needed for new-quorum coverage is
        down, the reconfiguration still commits — coverage is
        best-effort and the background refresher is the backstop."""
        bed = Testbed(["s1", "s2", "s3", "s4", "s5"], seed=7)
        old = make_configuration(
            "db",
            [("s1", 1), ("s2", 1), ("s3", 1), ("s4", 1), ("s5", 1)],
            read_quorum=3, write_quorum=3,
            latency_hints={"s1": 1.0, "s2": 2.0, "s3": 3.0,
                           "s4": 4.0, "s5": 5.0})
        suite = bed.install(old, b"v1")
        new = make_configuration(
            "db",
            [("s1", 1), ("s2", 1), ("s3", 0), ("s4", 2), ("s5", 1)],
            read_quorum=3, write_quorum=3,
            latency_hints={"s1": 10.0, "s2": 20.0, "s3": 30.0,
                           "s4": 1.0, "s5": 2.0})
        bed.crash("s4")
        installed = bed.run(change_configuration(suite, new))
        assert installed.config_version == 2
        bed.restart("s4")
        bed.settle(30_000.0)
        # s4 catches up through background refresh.
        assert bed.servers["s4"].server.fs.stat(
            "suite:db").properties["stamp"] == 2
