"""Live reconfiguration of vote assignments."""

import pytest

from tests.helpers import triple_config
from repro.core import (Representative, SuiteConfiguration,
                        change_configuration, make_configuration)
from repro.errors import InvalidConfigurationError
from repro.testbed import Testbed


class TestBasicReconfiguration:
    def test_quorum_change(self, bed):
        suite = bed.install(triple_config(), b"data")
        new = triple_config(r=1, w=3)
        installed = bed.run(change_configuration(suite, new))
        assert installed.config_version == 2
        assert suite.config.read_quorum == 1
        assert bed.run(suite.read()).data == b"data"
        assert bed.run(suite.write(b"after")).version > 1

    def test_vote_change(self, bed):
        suite = bed.install(triple_config(), b"data")
        new = triple_config(votes=(2, 1, 1), r=2, w=3)
        installed = bed.run(change_configuration(suite, new))
        assert installed.total_votes == 4
        write = bed.run(suite.write(b"weighted"))
        # rep-1 (2 votes) + rep-2 form the cheapest 3-vote quorum
        assert write.quorum == ["rep-1", "rep-2"]

    def test_wrong_suite_name_rejected(self, bed):
        suite = bed.install(triple_config(), b"data")
        other = triple_config(name="other")
        with pytest.raises(InvalidConfigurationError):
            bed.run(change_configuration(suite, other))

    def test_config_version_monotonic_over_changes(self, bed):
        suite = bed.install(triple_config(), b"data")
        for r, w in ((1, 3), (2, 2), (2, 3)):
            bed.run(change_configuration(suite, triple_config(r=r, w=w)))
        assert suite.config.config_version == 4

    def test_data_version_bumped_by_reconfig(self, bed):
        suite = bed.install(triple_config(), b"data")
        before = bed.run(suite.current_version())
        bed.run(change_configuration(suite, triple_config(r=1, w=3)))
        after = bed.run(suite.current_version())
        assert after == before + 1


class TestPropagation:
    def test_stale_client_adopts_new_configuration(self, bed):
        old = triple_config()
        suite = bed.install(old, b"data")
        bed.run(change_configuration(suite, triple_config(r=1, w=3)))
        bed.settle()
        stale_client = bed.suite(old)
        result = bed.run(stale_client.read())
        assert result.data == b"data"
        assert stale_client.config.config_version == 2
        assert stale_client.config.write_quorum == 3
        assert bed.metrics.counter("suite.config_refreshes").value >= 1

    def test_all_reps_carry_new_stamp_after_settle(self, bed):
        suite = bed.install(triple_config(), b"data")
        bed.run(change_configuration(suite, triple_config(r=1, w=3)))
        bed.settle()
        for node in bed.servers.values():
            properties = node.server.fs.stat("suite:db").properties
            assert properties["stamp"] == 2

    def test_reconfig_with_one_server_down(self, bed):
        suite = bed.install(triple_config(), b"data")
        bed.crash("s3")
        installed = bed.run(
            change_configuration(suite, triple_config(r=1, w=3)))
        assert installed.config_version == 2
        bed.restart("s3")
        bed.settle(30_000.0)
        # s3 catches up through background refresh.
        assert bed.servers["s3"].server.fs.stat(
            "suite:db").properties["stamp"] == 2


class TestMembershipChange:
    def test_add_representative(self, bed):
        bed.add_server("s4")
        suite = bed.install(triple_config(), b"data")
        reps = suite.config.representatives + (
            Representative(rep_id="rep-4", server="s4", votes=1,
                           latency_hint=5.0),)
        new = SuiteConfiguration(suite_name="db", representatives=reps,
                                 read_quorum=2, write_quorum=3)
        installed = bed.run(change_configuration(suite, new))
        assert installed.total_votes == 4
        assert bed.servers["s4"].server.fs.exists("suite:db")
        assert bed.run(suite.read()).data == b"data"

    def test_remove_representative(self, bed):
        suite = bed.install(triple_config(), b"data")
        new = SuiteConfiguration(
            suite_name="db",
            representatives=suite.config.representatives[:2],
            read_quorum=1, write_quorum=2)
        installed = bed.run(change_configuration(suite, new))
        assert len(installed.representatives) == 2
        bed.settle()
        # The removed representative's copy is deleted best-effort.
        assert not bed.servers["s3"].server.fs.exists("suite:db")
        assert bed.run(suite.write(b"post")).version > 1

    def test_demote_to_weak(self, bed):
        suite = bed.install(triple_config(latencies=(10.0, 20.0, 1.0)),
                            b"data")
        new = triple_config(votes=(1, 1, 0), r=1, w=2,
                            latencies=(10.0, 20.0, 1.0))
        bed.run(change_configuration(suite, new))
        bed.settle()
        result = bed.run(suite.read())
        # The demoted, now-weak representative is the fastest current one.
        assert result.served_by == "rep-3"
