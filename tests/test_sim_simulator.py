"""Simulator scheduling, determinism and run control."""

import pytest

from repro.sim import Simulator


class TestScheduling:
    def test_now_starts_at_zero(self, sim):
        assert sim.now == 0.0

    def test_callbacks_run_at_scheduled_time(self, sim):
        times = []
        sim.schedule(3.0, lambda: times.append(sim.now))
        sim.schedule(1.0, lambda: times.append(sim.now))
        sim.run()
        assert times == [1.0, 3.0]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.schedule(-0.1, lambda: None)

    def test_callback_args_passed(self, sim):
        seen = []
        sim.schedule(1.0, seen.append, "value")
        sim.run()
        assert seen == ["value"]

    def test_run_until_time_limit(self, sim):
        fired = []
        sim.schedule(1.0, fired.append, 1)
        sim.schedule(10.0, fired.append, 10)
        sim.run(until=5.0)
        assert fired == [1]
        assert sim.now == 5.0
        sim.run()
        assert fired == [1, 10]

    def test_max_steps(self, sim):
        for i in range(10):
            sim.schedule(float(i), lambda: None)
        sim.run(max_steps=4)
        assert sim.now == 3.0

    def test_nested_scheduling(self, sim):
        order = []

        def outer():
            order.append("outer")
            sim.schedule(1.0, inner)

        def inner():
            order.append("inner")

        sim.schedule(1.0, outer)
        sim.run()
        assert order == ["outer", "inner"]
        assert sim.now == 2.0

    def test_not_reentrant(self, sim):
        def recurse():
            sim.run()

        sim.schedule(1.0, recurse)
        with pytest.raises(RuntimeError, match="reentrant"):
            sim.run()


class TestRunUntil:
    def test_returns_event_value(self, sim):
        event = sim.event()
        sim.schedule(2.0, event.trigger, "done")
        assert sim.run_until(event) == "done"
        assert sim.now == 2.0

    def test_raises_event_failure(self, sim):
        event = sim.event()
        sim.schedule(1.0, event.fail, IndexError("bad"))
        with pytest.raises(IndexError):
            sim.run_until(event)

    def test_drained_queue_without_settle_raises(self, sim):
        with pytest.raises(RuntimeError, match="never settled"):
            sim.run_until(sim.event())

    def test_limit_guards_livelock(self, sim):
        def forever(sim):
            while True:
                yield sim.timeout(1.0)

        sim.spawn(forever(sim))
        with pytest.raises(RuntimeError, match="did not settle"):
            sim.run_until(sim.event(), limit=50.0)


class TestDeterminism:
    def build_and_run(self, seed):
        from repro.sim import Network, RandomStreams

        sim = Simulator()
        streams = RandomStreams(seed=seed)
        network = Network(sim, streams, default_latency=1.0,
                          loss_probability=0.2)
        a = network.add_host("a")
        b = network.add_host("b")
        received = []

        def receiver(host):
            while True:
                message = yield host.receive()
                received.append((sim.now, message))

        def sender(host):
            for i in range(50):
                host.send("b", i)
                yield sim.timeout(1.0)

        sim.spawn(receiver(b))
        sim.spawn(sender(a))
        sim.run(until=100.0)
        return received

    def test_same_seed_same_history(self):
        assert self.build_and_run(5) == self.build_and_run(5)

    def test_different_seed_different_history(self):
        # With 20% loss the delivered sets should differ.
        assert self.build_and_run(5) != self.build_and_run(6)
