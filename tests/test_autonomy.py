"""The vote autopilot's scoring, safety gate, and control loop."""

import json

import pytest

from repro.autonomy import (AutopilotPolicy, RepSignals, WeightAutopilot,
                            collect_signals, gate_proposal, score_signals)
from repro.chaos.health import CLOSED, HALF_OPEN, OPEN, HealthTracker
from repro.core.reconfig import change_configuration
from repro.core.votes import make_configuration
from repro.sim.metrics import MetricsRegistry
from repro.testbed import Testbed

POLICY = AutopilotPolicy()


def _signals(**overrides) -> RepSignals:
    base = dict(rep_id="rep-s1", server="s1", votes=1)
    base.update(overrides)
    return RepSignals(**base)


class TestScoring:
    def test_open_breaker_alone_crosses_the_demote_threshold(self):
        score = score_signals(_signals(breaker_state=OPEN), POLICY,
                              num_reps=5)
        assert score >= POLICY.demote_threshold

    def test_half_open_counts_half(self):
        half = score_signals(_signals(breaker_state=HALF_OPEN), POLICY,
                             num_reps=5)
        full = score_signals(_signals(breaker_state=OPEN), POLICY,
                             num_reps=5)
        assert half == pytest.approx(full / 2)

    def test_healthy_representative_scores_zero(self):
        assert score_signals(_signals(), POLICY, num_reps=5) == 0.0

    def test_flap_term_saturates(self):
        two = score_signals(_signals(), POLICY, opens_delta=2,
                            num_reps=5)
        many = score_signals(_signals(), POLICY, opens_delta=50,
                             num_reps=5)
        assert two == pytest.approx(POLICY.flap_weight)
        assert many == two            # capped at one window's worth

    def test_lag_term_saturates_at_tolerance(self):
        at = score_signals(_signals(version_lag=POLICY.lag_tolerance),
                           POLICY, num_reps=5)
        beyond = score_signals(_signals(version_lag=100.0), POLICY,
                               num_reps=5)
        assert at == pytest.approx(POLICY.lag_weight)
        assert beyond == at

    def test_weak_staleness_counts_as_lag(self):
        """The version-lag gauge freezes for a demoted representative;
        the weak-staleness gauge keeps tracking it."""
        score = score_signals(
            _signals(weak_staleness=POLICY.lag_tolerance), POLICY,
            num_reps=5)
        assert score == pytest.approx(POLICY.lag_weight)

    def test_fair_blocking_share_is_not_evidence(self):
        score = score_signals(
            _signals(blocking_share=0.2, blocking_window_ms=1_000.0),
            POLICY, num_reps=5)
        assert score == 0.0

    def test_monopolised_blocking_crosses_the_threshold(self):
        score = score_signals(
            _signals(blocking_share=1.0, blocking_window_ms=1_000.0),
            POLICY, num_reps=5)
        assert score >= POLICY.demote_threshold

    def test_thin_window_discounts_the_blocking_share(self):
        """In a near-idle window somebody always arrives last and holds
        100% of the share — that is not evidence."""
        thin = score_signals(
            _signals(blocking_share=1.0, blocking_window_ms=50.0),
            POLICY, num_reps=5)
        fat = score_signals(
            _signals(blocking_share=1.0,
                     blocking_window_ms=POLICY.blocking_floor_ms),
            POLICY, num_reps=5)
        assert thin == pytest.approx(
            fat * 50.0 / POLICY.blocking_floor_ms)

    def test_single_representative_has_no_blocking_term(self):
        score = score_signals(
            _signals(blocking_share=1.0, blocking_window_ms=1_000.0),
            POLICY, num_reps=1)
        assert score == 0.0


class TestCollectSignals:
    def _config(self):
        return make_configuration("db", [("s1", 1), ("s2", 1),
                                         ("s3", 1)], 2, 2)

    def test_windowed_blocking_share(self):
        """Successive calls see deltas of the cumulative gauge, so a
        representative slow an hour ago but healthy now scores clean."""
        metrics = MetricsRegistry()
        config = self._config()
        gauge = "quorum.blocking.wait_ms[suite=db,rep=rep-s1]"
        metrics.gauge(gauge).set(400.0)
        previous = {}
        first = collect_signals(config, metrics, {}, previous)
        assert first["rep-s1"].blocking_share == pytest.approx(1.0)
        assert first["rep-s1"].blocking_window_ms == pytest.approx(400.0)
        # No new blocking: the share evaporates with the window.
        second = collect_signals(config, metrics, {}, previous)
        assert second["rep-s1"].blocking_share == 0.0
        assert second["rep-s1"].blocking_window_ms == 0.0

    def test_breaker_snapshot_is_folded_in(self):
        metrics = MetricsRegistry()
        snapshot = {"s2": {"state": OPEN, "opens": 3, "closes": 2,
                           "last_transition": 17.0}}
        signals = collect_signals(self._config(), metrics, snapshot, {})
        assert signals["rep-s2"].breaker_state == OPEN
        assert signals["rep-s2"].opens == 3
        assert signals["rep-s1"].breaker_state == CLOSED


class TestSafetyGate:
    def _config(self, votes=(1, 1, 1), r=2, w=2):
        servers = [f"s{i + 1}" for i in range(len(votes))]
        return make_configuration("db", list(zip(servers, votes)), r, w)

    def test_accepts_a_conserved_shift(self):
        config = self._config((1, 1, 1, 1, 1), r=3, w=3)
        votes = {"rep-s1": 2, "rep-s2": 1, "rep-s3": 1, "rep-s4": 0,
                 "rep-s5": 1}
        assert gate_proposal(config, votes, POLICY) is None

    def test_rejects_unknown_representatives(self):
        reason = gate_proposal(self._config(), {"rep-s9": 1}, POLICY)
        assert "unknown" in reason

    def test_rejects_negative_votes(self):
        votes = {"rep-s1": -1, "rep-s2": 2, "rep-s3": 2}
        assert "negative" in gate_proposal(self._config(), votes, POLICY)

    def test_rejects_an_emptied_suite(self):
        votes = {"rep-s1": 0, "rep-s2": 0, "rep-s3": 0}
        assert "no votes" in gate_proposal(self._config(), votes, POLICY)

    def test_rejects_quorum_outside_total(self):
        votes = {"rep-s1": 1, "rep-s2": 0, "rep-s3": 0}
        reason = gate_proposal(self._config(), votes, POLICY)
        assert "outside" in reason

    def test_rejects_read_write_coverage_loss(self):
        """Inflating the total so r + w no longer exceeds it would let
        a read quorum miss the latest write."""
        votes = {"rep-s1": 3, "rep-s2": 1, "rep-s3": 1}
        reason = gate_proposal(self._config(), votes, POLICY)
        assert "r + w" in reason

    def test_rejects_disjoint_write_quorums(self):
        config = self._config(r=3, w=2)
        votes = {"rep-s1": 2, "rep-s2": 1, "rep-s3": 1}
        reason = gate_proposal(config, votes, POLICY)
        assert "2w" in reason

    def test_rejects_below_the_survivability_floor(self):
        policy = AutopilotPolicy(min_voting_reps=3)
        votes = {"rep-s1": 2, "rep-s2": 1, "rep-s3": 0}
        reason = gate_proposal(self._config(), votes, policy)
        assert "floor" in reason

    def test_gate_is_pure(self):
        config = self._config()
        votes = {"rep-s1": 1, "rep-s2": 1, "rep-s3": 1}
        gate_proposal(config, votes, POLICY)
        assert votes == {"rep-s1": 1, "rep-s2": 1, "rep-s3": 1}


def _bed_with_autopilot(policy=None, votes=(1, 1, 1, 1, 1), r=3, w=3,
                        health=False, seed=1):
    servers = [f"s{i + 1}" for i in range(len(votes))]
    bed = Testbed(servers, seed=seed, obs=True)
    config = make_configuration(
        "db", list(zip(servers, votes)), r, w,
        latency_hints={name: float(i + 1)
                       for i, name in enumerate(servers)})
    tracker = None
    if health:
        tracker = HealthTracker(clock=lambda: bed.sim.now,
                                metrics=bed.metrics)
    suite = bed.install(config, b"seed", health=tracker)
    autopilot = WeightAutopilot(suite, health=tracker, policy=policy)
    return bed, suite, autopilot, tracker


def _blame(bed, rep_id, ms=500.0):
    """Attribute ``ms`` fresh blocking milliseconds to ``rep_id``."""
    gauge = bed.metrics.gauge(
        f"quorum.blocking.wait_ms[suite=db,rep={rep_id}]")
    gauge.set(gauge.value + ms)


class TestAutopilotControl:
    def test_demotes_after_patience_and_conserves_votes(self):
        bed, suite, autopilot, _ = _bed_with_autopilot()
        records = []
        for _ in range(2):
            _blame(bed, "rep-s4")
            records.append(bed.run(autopilot.step()))
        assert records[0] is None          # patience: one sample never moves votes
        record = records[1]
        assert record.kind == "demote" and record.applied
        assert record.server == "s4"
        weights = autopilot.weights()
        assert weights["rep-s4"] == 0
        assert sum(weights.values()) == 5  # votes conserved
        assert suite.config.config_version == 2
        # The suite still serves reads under the shifted weights.
        result = bed.run(suite.read())
        assert result.data == b"seed"

    def test_quiet_observation_resets_the_streak(self):
        bed, _suite, autopilot, _ = _bed_with_autopilot()
        _blame(bed, "rep-s4")
        bed.run(autopilot.step())
        bed.run(autopilot.step())          # no new blocking this window
        _blame(bed, "rep-s4")
        assert bed.run(autopilot.step()) is None
        assert autopilot.at_seed_weights()
        assert autopilot.records == []

    def test_cooldown_blocks_back_to_back_shifts(self):
        bed, _suite, autopilot, _ = _bed_with_autopilot()
        for _ in range(2):
            _blame(bed, "rep-s4")
            bed.run(autopilot.step())
        assert not autopilot.at_seed_weights()
        # A second representative goes just as bad, but the cooldown
        # holds further reassignment.
        for _ in range(2):
            _blame(bed, "rep-s5")
            assert bed.run(autopilot.step()) is None
        assert autopilot.weights()["rep-s5"] == 1

    def test_restores_to_seed_after_recovery(self):
        policy = AutopilotPolicy(cooldown_ms=0.0)
        bed, _suite, autopilot, _ = _bed_with_autopilot(policy=policy)
        for _ in range(2):
            _blame(bed, "rep-s4")
            bed.run(autopilot.step())
        assert autopilot.weights()["rep-s4"] == 0
        # Quiet windows: the demoted representative proves itself.
        restored = None
        for _ in range(3):
            restored = bed.run(autopilot.step())
            if restored is not None:
                break
        assert restored is not None and restored.kind == "restore"
        assert restored.applied
        assert autopilot.at_seed_weights()
        assert autopilot.suite.config.config_version == 3

    def test_gate_rejection_is_recorded_not_applied(self):
        policy = AutopilotPolicy(min_voting_reps=5)
        bed, suite, autopilot, _ = _bed_with_autopilot(policy=policy)
        for _ in range(2):
            _blame(bed, "rep-s4")
            record = bed.run(autopilot.step())
        assert record is not None and not record.applied
        assert "floor" in record.rejected_by_gate
        assert autopilot.at_seed_weights()
        assert suite.config.config_version == 1
        state = autopilot.state()
        assert state["rejected_gate"] == 1 and state["applied"] == 0

    def test_open_breaker_drives_a_demotion(self):
        bed, _suite, autopilot, tracker = _bed_with_autopilot(health=True)
        for _ in range(3):
            tracker.record_failure("s3")
        assert tracker.state("s3") == OPEN
        bed.run(autopilot.step())
        record = bed.run(autopilot.step())
        assert record is not None and record.applied
        assert record.kind == "demote" and record.server == "s3"
        assert "s3" in autopilot.flagged

    def test_open_breaker_never_receives_votes(self):
        bed, _suite, autopilot, tracker = _bed_with_autopilot(health=True)
        for server in ("s1", "s3"):
            for _ in range(3):
                tracker.record_failure(server)
        for _ in range(2):
            _blame(bed, "rep-s3", 800.0)
            record = bed.run(autopilot.step())
        assert record is not None and record.applied
        recipient = [rep_id for rep_id, votes
                     in autopilot.weights().items() if votes == 2]
        assert recipient and recipient[0] not in ("rep-s1", "rep-s3")

    def test_flagged_history_survives_recovery(self):
        policy = AutopilotPolicy(cooldown_ms=0.0)
        bed, _suite, autopilot, _ = _bed_with_autopilot(policy=policy)
        for _ in range(2):
            _blame(bed, "rep-s4")
            bed.run(autopilot.step())
        while not autopilot.at_seed_weights():
            bed.run(autopilot.step())
        # Diagnostic history for the doctor: the flag is not erased by
        # the restoration.
        assert autopilot.flagged["s4"]["rep_id"] == "rep-s4"

    def test_manual_membership_change_rebaselines(self):
        bed = Testbed(["s1", "s2", "s3", "s4"], seed=1, obs=True)
        suite = bed.install(
            make_configuration("db", [("s1", 1), ("s2", 1), ("s3", 1)],
                               2, 2), b"seed")
        autopilot = WeightAutopilot(suite)
        grown = make_configuration(
            "db", [("s1", 1), ("s2", 1), ("s3", 1), ("s4", 1)], 3, 3)
        bed.run(change_configuration(suite, grown))
        autopilot.observe()
        assert autopilot.seed_votes == {
            "rep-s1": 1, "rep-s2": 1, "rep-s3": 1, "rep-s4": 1}
        assert autopilot.at_seed_weights()

    def test_state_is_json_safe_and_complete(self):
        bed, _suite, autopilot, _ = _bed_with_autopilot()
        for _ in range(2):
            _blame(bed, "rep-s4")
            bed.run(autopilot.step())
        state = json.loads(json.dumps(autopilot.state()))
        assert state["suite"] == "db"
        assert state["applied"] == 1
        assert state["at_seed_weights"] is False
        assert state["seed_votes"] != state["weights"]
        (record,) = state["reassignments"]
        assert record["kind"] == "demote" and record["applied"]
        assert record["config_version"] == 2

    def test_same_script_same_records(self):
        outcomes = []
        for _ in range(2):
            bed, _suite, autopilot, _ = _bed_with_autopilot(
                policy=AutopilotPolicy(cooldown_ms=0.0), seed=9)
            for _ in range(2):
                _blame(bed, "rep-s2")
                bed.run(autopilot.step())
            for _ in range(3):
                bed.run(autopilot.step())
            outcomes.append([record.to_json()
                             for record in autopilot.records])
        assert outcomes[0] == outcomes[1]
        assert [record["kind"] for record in outcomes[0]] == \
            ["demote", "restore"]
