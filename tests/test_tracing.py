"""Protocol tracing: the audit trail of suite operations."""

import pytest

from tests.helpers import triple_config
from repro.testbed import Testbed


@pytest.fixture
def traced_bed():
    return Testbed(servers=["s1", "s2", "s3"], seed=7, trace=True)


class TestSuiteTracing:
    def test_reads_and_writes_traced(self, traced_bed):
        bed = traced_bed
        suite = bed.install(triple_config(), b"v1")
        bed.run(suite.read())
        bed.run(suite.write(b"v2"))
        assert bed.tracer.count(component="suite:db", event="read") == 1
        assert bed.tracer.count(component="suite:db", event="write") == 1
        write_record = next(bed.tracer.matching(event="write"))
        assert write_record.details["version"] == 2

    def test_refresh_touches_exactly_the_stale_reps(self, traced_bed):
        """The docstring promise of repro.sim.trace, kept: assert the
        background refresher touched precisely the representatives the
        write left behind."""
        bed = traced_bed
        suite = bed.install(triple_config(), b"v1")
        write = bed.run(suite.write(b"v2"))
        bed.settle()
        refreshes = list(bed.tracer.matching(component="suite:db",
                                             event="refresh"))
        assert len(refreshes) == 1
        assert refreshes[0].details["targets"] == ",".join(write.stale)
        assert refreshes[0].details["version"] == 2

    def test_aborted_write_not_traced(self, traced_bed):
        bed = traced_bed
        suite = bed.install(triple_config(), b"v1")
        suite.max_attempts = 1
        suite.inquiry_timeout = 50.0
        bed.crash("s1")
        bed.crash("s2")
        with pytest.raises(Exception):
            bed.run(suite.write(b"nope"))
        assert bed.tracer.count(component="suite:db", event="write") == 0

    def test_tracing_off_by_default(self, bed):
        suite = bed.install(triple_config(), b"v1")
        bed.run(suite.read())
        assert bed.tracer.records == []

    def test_trace_dump_readable(self, traced_bed):
        bed = traced_bed
        suite = bed.install(triple_config(), b"v1")
        bed.run(suite.read())
        dump = bed.tracer.dump()
        assert "suite:db" in dump
        assert "read" in dump
