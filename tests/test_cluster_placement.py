"""The consistent-hash placement ring and rebalance planner."""

import pytest

from repro.cluster import PlacementRing, plan_rebalance
from repro.core.votes import SuiteConfiguration

SERVERS = ["n1", "n2", "n3", "n4", "n5"]
NAMES = [f"app-{i:03d}" for i in range(64)]


class TestDeterminism:
    def test_layout_is_pure_function_of_member_set(self):
        forward = PlacementRing(SERVERS, replication=3, seed=9)
        backward = PlacementRing(list(reversed(SERVERS)),
                                 replication=3, seed=9)
        assert forward.placement_map(NAMES) == backward.placement_map(NAMES)

    def test_same_seed_same_layout_across_instances(self):
        one = PlacementRing(SERVERS, seed=4).placement_map(NAMES)
        two = PlacementRing(SERVERS, seed=4).placement_map(NAMES)
        assert one == two

    def test_different_seed_different_layout(self):
        one = PlacementRing(SERVERS, seed=0).placement_map(NAMES)
        two = PlacementRing(SERVERS, seed=1).placement_map(NAMES)
        assert one != two

    def test_checksum_stable_and_membership_sensitive(self):
        ring = PlacementRing(SERVERS, seed=0)
        digest = ring.checksum(NAMES)
        assert digest == PlacementRing(SERVERS, seed=0).checksum(NAMES)
        ring.add_server("n6")
        assert ring.checksum(NAMES) != digest

    def test_checksum_independent_of_name_order(self):
        ring = PlacementRing(SERVERS, seed=0)
        assert ring.checksum(NAMES) == ring.checksum(list(reversed(NAMES)))


class TestPlacement:
    def test_place_returns_distinct_servers(self):
        ring = PlacementRing(SERVERS, replication=3)
        for name in NAMES:
            placed = ring.place(name)
            assert len(placed) == 3
            assert len(set(placed)) == 3
            assert set(placed) <= set(SERVERS)

    def test_every_server_carries_load(self):
        load = PlacementRing(SERVERS).load_distribution(NAMES)
        assert set(load) == set(SERVERS)
        assert all(count > 0 for count in load.values())
        assert sum(load.values()) == len(NAMES) * 3

    def test_replication_one(self):
        ring = PlacementRing(["a", "b"], replication=1)
        assert len(ring.place("x")) == 1

    def test_too_few_servers_rejected(self):
        ring = PlacementRing(["a", "b"], replication=3)
        with pytest.raises(ValueError):
            ring.place("x")

    def test_membership_guards(self):
        ring = PlacementRing(["a", "b", "c"], replication=3)
        with pytest.raises(ValueError):
            ring.add_server("a")
        with pytest.raises(ValueError):
            ring.remove_server("ghost")
        with pytest.raises(ValueError):
            ring.remove_server("c")  # would fall below replication

    def test_validation(self):
        with pytest.raises(ValueError):
            PlacementRing(SERVERS, replication=0)
        with pytest.raises(ValueError):
            PlacementRing(SERVERS, vnodes=0)


class TestConfigurationFor:
    def test_majority_quorums_by_default(self):
        config = PlacementRing(SERVERS).configuration_for("app-000")
        assert isinstance(config, SuiteConfiguration)
        assert config.suite_name == "app-000"
        assert len(config.representatives) == 3
        assert config.read_quorum == 2
        assert config.write_quorum == 2

    def test_reps_follow_placement(self):
        ring = PlacementRing(SERVERS)
        config = ring.configuration_for("app-017")
        assert [rep.server for rep in config.representatives] == \
            ring.place("app-017")
        assert all(rep.rep_id == f"rep-{rep.server}"
                   for rep in config.representatives)

    def test_explicit_quorums_and_hints(self):
        config = PlacementRing(SERVERS).configuration_for(
            "app-001", read_quorum=1, write_quorum=3,
            latency_hints={"n1": 5.0})
        assert config.read_quorum == 1
        assert config.write_quorum == 3


class TestRebalance:
    def test_join_moves_only_affected_suites(self):
        ring = PlacementRing(SERVERS, replication=3, seed=2)
        before = ring.placement_map(NAMES)
        ring.add_server("n6")
        plan = plan_rebalance(before, ring.placement_map(NAMES))
        assert 0 < plan.moved_suites < len(NAMES)
        # Every move gains the new server; nothing else changes.
        for name, (was, now) in plan.moves.items():
            assert "n6" in now and "n6" not in was
        assert plan.unchanged == len(NAMES) - plan.moved_suites
        # Consistent hashing: roughly replication/N of the namespace
        # moves, far from a full reshuffle.
        assert plan.moved_fraction < 0.75

    def test_leave_reverses_join(self):
        ring = PlacementRing(SERVERS + ["n6"], replication=3, seed=2)
        before = ring.placement_map(NAMES)
        ring.remove_server("n6")
        plan = plan_rebalance(before, ring.placement_map(NAMES))
        for name, (was, now) in plan.moves.items():
            assert "n6" in was and "n6" not in now

    def test_mismatched_maps_rejected(self):
        ring = PlacementRing(SERVERS)
        with pytest.raises(ValueError):
            plan_rebalance(ring.placement_map(["a"]),
                           ring.placement_map(["a", "b"]))

    def test_summary_mentions_counts(self):
        ring = PlacementRing(SERVERS, seed=2)
        before = ring.placement_map(NAMES)
        ring.add_server("n6")
        plan = plan_rebalance(before, ring.placement_map(NAMES))
        assert f"{plan.moved_suites} suite(s) move" in plan.summary()
