"""Coordinator (client) failure: the blocking face of 2PC.

If the coordinating client dies between phase 1 and phase 2, prepared
participants are stuck in-doubt — exactly the textbook behaviour the
paper's substrate has.  These tests exercise that path end-to-end:
the in-doubt state survives participant restarts, blocks conflicting
transactions, and is resolved when an operator (or a recovered
coordinator) supplies the decision.
"""

import pytest

from repro.errors import LockTimeoutError, ReproError, RpcTimeout
from repro.testbed import Testbed


@pytest.fixture
def bed():
    return Testbed(servers=["s1", "s2"], seed=91, call_timeout=200.0)


def prepare_then_die(bed):
    """Run a transaction up to successful prepare, then crash the
    client host before any commit can be sent.  Returns the txn id."""
    manager = bed.clients["client"].manager
    holder = {}

    def flow():
        txn = manager.begin()
        holder["txn"] = txn
        yield txn.call("s1", "txn.stage_write", name="f", data=b"doomed",
                       version=1, create=True)
        yield txn.call("s2", "txn.stage_write", name="f", data=b"doomed",
                       version=1, create=True)
        # Phase 1 only: prepare both participants directly.
        vote_one = yield txn.call("s1", "txn.prepare")
        vote_two = yield txn.call("s2", "txn.prepare")
        assert vote_one == vote_two == "prepared"
        return txn

    txn = bed.run(flow())
    bed.network.host("client").crash()
    return txn


class TestCoordinatorCrash:
    def test_participants_stay_in_doubt(self, bed):
        txn = prepare_then_die(bed)
        bed.settle(120_000.0)  # far beyond the idle sweeper
        for server in ("s1", "s2"):
            participant = bed.servers[server].participant
            # Prepared state is binding: never swept, still pending.
            assert (txn.txn_id in participant._active
                    and participant._active[txn.txn_id].prepared)

    def test_in_doubt_survives_participant_restart(self, bed):
        txn = prepare_then_die(bed)
        bed.crash("s1")
        bed.restart("s1")
        participant = bed.servers["s1"].participant
        assert participant.in_doubt() == [txn.txn_id]

    def test_in_doubt_blocks_conflicting_transactions(self, bed):
        txn = prepare_then_die(bed)
        bed.crash("s1")
        bed.restart("s1")
        bed.add_client("second")
        manager = bed.clients["second"].manager

        def conflicting():
            other = manager.begin()
            try:
                yield other.call("s1", "txn.stage_write", name="f",
                                 data=b"other", version=1, create=True,
                                 timeout=300.0)
                yield from other.commit()
                return "committed"
            except ReproError:
                yield from other.abort()
                return "blocked"

        assert bed.run(conflicting()) == "blocked"

    def test_operator_resolution_commit(self, bed):
        txn = prepare_then_die(bed)
        bed.crash("s1")
        bed.restart("s1")
        bed.add_client("operator")
        endpoint = bed.clients["operator"].endpoint

        def resolve():
            for server in ("s1", "s2"):
                ack = yield endpoint.call(server, "txn.commit",
                                          timeout=1_000.0,
                                          txn=str(txn.txn_id))
                assert ack == "ack"

        bed.run(resolve())
        for server in ("s1", "s2"):
            node = bed.servers[server]
            assert node.server.fs.read_file_sync("f") == (b"doomed", 1)
            assert node.participant.in_doubt() == []

    def test_operator_resolution_abort(self, bed):
        txn = prepare_then_die(bed)
        bed.add_client("operator")
        endpoint = bed.clients["operator"].endpoint

        def resolve():
            for server in ("s1", "s2"):
                yield endpoint.call(server, "txn.abort", timeout=1_000.0,
                                    txn=str(txn.txn_id))

        bed.run(resolve())
        for server in ("s1", "s2"):
            assert not bed.servers[server].server.fs.exists("f")

    def test_recovered_coordinator_can_finish(self, bed):
        """The client restarts and re-drives phase 2 (the decision was
        'all voted yes', which is recomputable: every participant holds
        the prepared record)."""
        txn = prepare_then_die(bed)
        bed.network.host("client").restart()
        manager = bed.clients["client"].manager

        def finish():
            for server in ("s1", "s2"):
                ack = yield manager.endpoint.call(
                    server, "txn.commit", timeout=1_000.0,
                    txn=str(txn.txn_id))
                assert ack == "ack"

        bed.run(finish())
        assert bed.servers["s1"].server.fs.read_file_sync("f") == \
            (b"doomed", 1)
