"""Multi-tenant Zipf-skewed open-loop load over a sharded cluster."""

import pytest

from repro.cluster import ClusterSpec, SimCluster
from repro.sim import RandomStreams
from repro.workload import (MultiTenantWorkload, OperationMix,
                            ZipfPopularity)


class TestZipfPopularity:
    def test_validation(self):
        with pytest.raises(ValueError):
            ZipfPopularity(0)
        with pytest.raises(ValueError):
            ZipfPopularity(5, s=-1.0)

    def test_weights_sum_to_one_and_decrease(self):
        zipf = ZipfPopularity(20, s=1.1)
        weights = [zipf.weight(rank) for rank in range(20)]
        assert abs(sum(weights) - 1.0) < 1e-9
        assert weights == sorted(weights, reverse=True)

    def test_zero_skew_is_uniform(self):
        zipf = ZipfPopularity(10, s=0.0)
        assert all(abs(zipf.weight(rank) - 0.1) < 1e-9
                   for rank in range(10))

    def test_choose_skews_toward_low_ranks(self):
        zipf = ZipfPopularity(50, s=1.2)
        rng = RandomStreams(3).stream("zipf")
        draws = [zipf.choose(rng) for _ in range(3000)]
        assert all(0 <= rank < 50 for rank in draws)
        head = sum(rank < 5 for rank in draws) / len(draws)
        expected = sum(zipf.weight(rank) for rank in range(5))
        assert abs(head - expected) < 0.05


@pytest.fixture
def cluster():
    spec = ClusterSpec(servers=4, suites=8, directory_shards=2, seed=6)
    return SimCluster(spec).start()


def _run(cluster, clients=20, arrivals=3, read_fraction=0.9, seed=42):
    workload = MultiTenantWorkload(
        cluster.bed.sim, cluster.handles,
        mix=OperationMix(read_fraction=read_fraction),
        interarrival=25.0, clients=clients,
        streams=RandomStreams(seed=seed))
    return workload, cluster.bed.run(workload.run(arrivals))


class TestMultiTenantWorkload:
    def test_validation(self, cluster):
        with pytest.raises(ValueError):
            MultiTenantWorkload(cluster.bed.sim, cluster.handles,
                                OperationMix.read_only(), 10.0, clients=0)
        with pytest.raises(ValueError):
            MultiTenantWorkload(cluster.bed.sim, {},
                                OperationMix.read_only(), 10.0, clients=1)

    def test_population_accounting(self, cluster):
        workload, stats = _run(cluster)
        attempts = 20 * 3
        assert sum(stats.per_suite.values()) == attempts
        assert stats.operations + stats.blocked == attempts
        assert stats.reads + stats.writes == stats.operations
        assert stats.read_latency.count == stats.reads
        assert stats.write_latency.count == stats.writes

    def test_per_server_load_from_quorums(self, cluster):
        workload, stats = _run(cluster)
        assert set(stats.per_server) <= set(cluster.spec.server_names)
        # Every successful op charges at least a read quorum of load.
        assert sum(stats.per_server.values()) >= stats.operations

    def test_latency_percentiles_ordered(self, cluster):
        workload, stats = _run(cluster, read_fraction=0.5)
        assert 0 < stats.read_p50 <= stats.read_p99
        assert 0 < stats.write_p50 <= stats.write_p99
        summary = stats.summary()
        assert summary["read_latency_p99"] == stats.read_p99
        assert summary["load_imbalance"] == stats.load_imbalance()

    def test_popularity_ranking_seeded_not_lexical(self, cluster):
        workload, stats = _run(cluster, clients=40, arrivals=4)
        ranked = [workload.rank_of(name)
                  for name in cluster.spec.suite_names]
        assert sorted(ranked) == list(range(8))
        assert ranked != list(range(8))  # the shuffle did something
        # The Zipf head should be the most-hit suite.
        hottest = stats.hottest_suites(top=1)[0][0]
        assert workload.rank_of(hottest) <= 2

    def test_load_imbalance_defaults_to_one(self):
        from repro.workload import ClusterWorkloadStats
        assert ClusterWorkloadStats().load_imbalance() == 1.0
