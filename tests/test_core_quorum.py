"""Quorum mathematics, including the intersection property under
hypothesis-generated configurations."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (Representative, SuiteConfiguration,
                        availability_of_votes, blocking_probability,
                        cheapest_quorum, feasible_quorum_pairs, is_quorum,
                        minimal_quorums, quorum_latency, quorums_intersect,
                        votes_of)
from repro.errors import InvalidConfigurationError


def reps(*specs):
    return [Representative(rep_id=f"r{i}", server=f"h{i}", votes=v,
                           latency_hint=lat)
            for i, (v, lat) in enumerate(specs)]


class TestBasics:
    def test_votes_of(self):
        assert votes_of(reps((2, 0), (1, 0), (0, 0))) == 3

    def test_is_quorum(self):
        group = reps((2, 0), (1, 0))
        assert is_quorum(group, 3)
        assert not is_quorum(group, 4)


class TestCheapestQuorum:
    def test_prefers_fast_representatives(self):
        group = reps((1, 30.0), (1, 10.0), (1, 20.0))
        quorum = cheapest_quorum(group, 2)
        assert sorted(r.rep_id for r in quorum) == ["r1", "r2"]

    def test_weighted_holder_can_cover_alone(self):
        group = reps((2, 75.0), (1, 100.0), (1, 750.0))
        quorum = cheapest_quorum(group, 2)
        assert [r.rep_id for r in quorum] == ["r0"]

    def test_trims_redundant_members(self):
        # Sorted by latency: r0 (1 vote, 1ms), r1 (3 votes, 2ms): prefix
        # scanning picks both, but r0 becomes redundant once r1 joins.
        group = reps((1, 1.0), (3, 2.0))
        quorum = cheapest_quorum(group, 3)
        assert [r.rep_id for r in quorum] == ["r1"]

    def test_weak_reps_never_chosen(self):
        group = reps((0, 0.0), (1, 50.0))
        quorum = cheapest_quorum(group, 1)
        assert [r.rep_id for r in quorum] == ["r1"]

    def test_insufficient_votes_raises(self):
        with pytest.raises(InvalidConfigurationError):
            cheapest_quorum(reps((1, 0.0)), 2)

    def test_explicit_cost_map_overrides_hints(self):
        group = reps((1, 10.0), (1, 20.0))
        quorum = cheapest_quorum(group, 1, cost={"r0": 99.0, "r1": 1.0})
        assert [r.rep_id for r in quorum] == ["r1"]

    def test_quorum_latency_is_max_member(self):
        group = reps((1, 75.0), (1, 100.0), (1, 750.0))
        assert quorum_latency(group, 2) == 100.0
        assert quorum_latency(group, 3) == 750.0

    def test_quorum_latency_with_explicit_map(self):
        group = reps((1, 75.0), (1, 100.0), (1, 750.0))
        latency = {"r0": 5.0, "r1": 7.0, "r2": 9.0}
        assert quorum_latency(group, 2, latency=latency) == 7.0

    def test_quorum_latency_partial_map_does_not_raise(self):
        """Regression: a latency map missing some representatives used
        to raise KeyError, because cheapest_quorum happily selects an
        unmapped (infinite-cost) member when the mapped ones cannot
        reach the threshold on their own."""
        group = reps((1, 75.0), (1, 100.0), (1, 750.0))
        # Only r0 is mapped, but a 2-vote quorum needs a second member.
        assert quorum_latency(group, 2, latency={"r0": 5.0}) == \
            float("inf")
        # When the mapped members suffice, the answer stays finite.
        assert quorum_latency(group, 1, latency={"r0": 5.0}) == 5.0


class TestMinimalQuorums:
    def test_equal_votes(self):
        group = reps((1, 0), (1, 0), (1, 0))
        quorums = minimal_quorums(group, 2)
        assert len(quorums) == 3
        assert all(len(q) == 2 for q in quorums)

    def test_weighted(self):
        group = reps((2, 0), (1, 0), (1, 0))
        quorums = {frozenset(q) for q in minimal_quorums(group, 2)}
        assert frozenset({"r0"}) in quorums
        assert frozenset({"r1", "r2"}) in quorums
        assert len(quorums) == 2

    def test_minimality(self):
        group = reps((2, 0), (2, 0), (1, 0))
        for quorum in minimal_quorums(group, 3):
            members = [r for r in group if r.rep_id in quorum]
            total = votes_of(members)
            assert total >= 3
            for member in members:
                assert total - member.votes < 3


class TestAvailability:
    def test_single_rep(self):
        group = reps((1, 0))
        assert availability_of_votes(group, {"r0": 0.99}, 1) == \
            pytest.approx(0.99)

    def test_paper_example2_read(self):
        group = reps((2, 0), (1, 0), (1, 0))
        p = {f"r{i}": 0.99 for i in range(3)}
        assert blocking_probability(group, p, 2) == \
            pytest.approx(0.01 * (1 - 0.99 ** 2))

    def test_paper_example3_write(self):
        group = reps((1, 0), (1, 0), (1, 0))
        p = {f"r{i}": 0.99 for i in range(3)}
        assert blocking_probability(group, p, 3) == \
            pytest.approx(1 - 0.99 ** 3)

    def test_heterogeneous_availability(self):
        group = reps((1, 0), (1, 0))
        p = {"r0": 0.5, "r1": 0.8}
        # Need both (threshold 2): 0.4
        assert availability_of_votes(group, p, 2) == pytest.approx(0.4)
        # Need either: 1 - 0.5*0.2
        assert availability_of_votes(group, p, 1) == pytest.approx(0.9)

    def test_threshold_zero_always_available(self):
        group = reps((1, 0))
        assert availability_of_votes(group, {"r0": 0.1}, 0) == 1.0

    def test_missing_availability_rejected(self):
        with pytest.raises(KeyError):
            availability_of_votes(reps((1, 0)), {}, 1)

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            availability_of_votes(reps((1, 0)), {"r0": 1.5}, 1)

    def test_brute_force_agreement(self):
        """DP result equals explicit enumeration over up/down outcomes."""
        group = reps((2, 0), (1, 0), (3, 0), (1, 0))
        p = {"r0": 0.9, "r1": 0.8, "r2": 0.7, "r3": 0.6}
        threshold = 4
        expected = 0.0
        for outcome in itertools.product([True, False], repeat=4):
            probability = 1.0
            votes = 0
            for rep, up in zip(group, outcome):
                probability *= p[rep.rep_id] if up else 1 - p[rep.rep_id]
                if up:
                    votes += rep.votes
            if votes >= threshold:
                expected += probability
        assert availability_of_votes(group, p, threshold) == \
            pytest.approx(expected)


class TestFeasiblePairs:
    def test_all_pairs_satisfy_rules(self):
        for total in range(1, 8):
            for r, w in feasible_quorum_pairs(total):
                assert r + w > total
                assert 2 * w > total
                assert 1 <= r <= total and 1 <= w <= total

    def test_pairs_are_exhaustive(self):
        total = 5
        pairs = set(feasible_quorum_pairs(total))
        for r in range(1, total + 1):
            for w in range(1, total + 1):
                if r + w > total and 2 * w > total:
                    assert (r, w) in pairs


# --------------------------------------------------------------------------
# Property-based: the intersection property holds for every configuration
# that passes validation, and fails whenever validation would reject.
# --------------------------------------------------------------------------

vote_lists = st.lists(st.integers(min_value=0, max_value=4), min_size=1,
                      max_size=5).filter(lambda v: sum(v) > 0)


@st.composite
def valid_configurations(draw):
    votes = draw(vote_lists)
    total = sum(votes)
    w = draw(st.integers(min_value=total // 2 + 1, max_value=total))
    r = draw(st.integers(min_value=total - w + 1, max_value=total))
    representatives = tuple(
        Representative(rep_id=f"r{i}", server=f"h{i}", votes=v)
        for i, v in enumerate(votes))
    return SuiteConfiguration(suite_name="prop",
                              representatives=representatives,
                              read_quorum=r, write_quorum=w)


class TestIntersectionProperty:
    @given(valid_configurations())
    @settings(max_examples=80, deadline=None)
    def test_every_valid_configuration_intersects(self, config):
        assert quorums_intersect(config)

    @given(vote_lists, st.data())
    @settings(max_examples=80, deadline=None)
    def test_rule_violations_break_intersection(self, votes, data):
        """If r+w <= N there exist disjoint read and write quorums
        (whenever both thresholds are individually reachable)."""
        total = sum(votes)
        if total < 2:
            return
        w = data.draw(st.integers(min_value=1, max_value=total - 1))
        r = data.draw(st.integers(min_value=1, max_value=total - w))
        representatives = tuple(
            Representative(rep_id=f"r{i}", server=f"h{i}", votes=v)
            for i, v in enumerate(votes))
        voting = [rep for rep in representatives if rep.votes > 0]
        # Find a read quorum and check the complement can hold a write
        # quorum — a direct witness of non-intersection when one exists.
        witness = False
        for size in range(len(voting) + 1):
            for combo in itertools.combinations(voting, size):
                if votes_of(combo) >= r:
                    rest = [rep for rep in voting if rep not in combo]
                    if votes_of(rest) >= w:
                        witness = True
                        break
            if witness:
                break
        # A disjoint pair can only exist when the totals allow a split;
        # and with unit votes the split is always realizable.
        if witness:
            assert total >= r + w
        if total >= r + w and all(v <= 1 for v in votes):
            assert witness
