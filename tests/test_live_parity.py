"""Sim/live parity: one protocol implementation, two schedulers.

The same scenario — the paper's example 2 suite, one quorum read, one
quorum write, and one stale-representative read-repair — runs on the
discrete-event :class:`Testbed` and on the loopback live cluster, and
must produce identical version numbers, quorum memberships, data
routing and per-server message counts.

The scenario is constructed so every gather is *forced*: each inquiry's
threshold can only be met by one exact set of representatives (a server
holding the balance of votes is stopped), so reply arrival order — the
one thing real sockets cannot make deterministic — never influences
which quorum is chosen:

* read1 with server-1 stopped — r=2 needs rep-2 AND rep-3;
* the write with server-3 stopped — w=3 needs rep-1 AND rep-2,
  leaving rep-3 stale (refresh disabled so it stays stale);
* read2 with server-1 stopped — quorum rep-2+rep-3 observes the stale
  rep-3, and the re-enabled refresher repairs it from the read.

Message counts are compared on the two surviving servers; the stopped
server also absorbs background abort retries whose timing is inherently
wall-clock-dependent.
"""

import asyncio

from repro.core.examples import example_configuration
from repro.live import LoopbackCluster
from repro.testbed import Testbed

#: Example 2: server-1 holds 2 of 4 votes, r = 2, w = 3.
SERVERS = ("server-1", "server-2", "server-3")

#: The servers whose final state and message counts are compared.
SURVIVORS = ("server-2", "server-3")


def observables(read1, write, read2, fs_version, requests_served):
    return {
        "read1": (read1.version, read1.served_by,
                  sorted(read1.quorum), sorted(read1.stale)),
        "write": (write.version, sorted(write.quorum),
                  sorted(write.stale)),
        "read2": (read2.version, read2.served_by,
                  sorted(read2.quorum), sorted(read2.stale)),
        "final_versions": {server: fs_version(server)
                           for server in SURVIVORS},
        "requests_served": {server: requests_served(server)
                            for server in SURVIVORS},
    }


def run_on_testbed():
    bed = Testbed(servers=list(SERVERS))
    config = example_configuration(2)
    suite = bed.install(config, b"version one")

    bed.crash("server-1")
    read1 = bed.run(suite.read())
    bed.restart("server-1")
    # Let read1's fire-and-forget lock releases land before the next
    # crash: the release prepare to server-3 is in flight when read()
    # returns, and crashing into it would make its fate a race (sim
    # drops the in-flight message; live sockets deliver it first).
    bed.settle(grace=10.0)

    suite.refresher.enabled = False
    bed.crash("server-3")
    write = bed.run(suite.write(b"version two"))
    bed.restart("server-3")

    suite.refresher.enabled = True
    bed.crash("server-1")
    read2 = bed.run(suite.read())
    # Run background work (refresh, decision retries) to quiescence.
    bed.settle(grace=20_000.0)

    def fs_version(server):
        return bed.servers[server].server.fs.stat(
            config.file_name).version

    assert fs_version("server-3") == write.version  # repair landed
    return observables(
        read1, write, read2, fs_version,
        lambda server: bed.servers[server].endpoint.requests_served)


def run_on_live_cluster():
    async def scenario():
        async with LoopbackCluster(list(SERVERS)) as cluster:
            config = example_configuration(2)
            suite = await cluster.install(config, b"version one")

            await cluster.stop_server("server-1")
            read1 = await cluster.read(suite)
            await cluster.restart_server("server-1")
            # Mirror the sim's post-read grace (see run_on_testbed).
            await asyncio.sleep(0.05)

            suite.refresher.enabled = False
            await cluster.stop_server("server-3")
            write = await cluster.write(suite, b"version two")
            await cluster.restart_server("server-3")

            suite.refresher.enabled = True
            await cluster.stop_server("server-1")
            read2 = await cluster.read(suite)

            def fs_version(server):
                return cluster.servers[server].server.fs.stat(
                    config.file_name).version

            loop = asyncio.get_event_loop()
            deadline = loop.time() + 15.0
            while loop.time() < deadline:
                if fs_version("server-3") == write.version:
                    break
                await asyncio.sleep(0.02)
            assert fs_version("server-3") == write.version
            # Let trailing background traffic land before counting
            # messages — notably the write transaction's abort retry to
            # server-3 (it was an unconfirmed participant; the retry
            # cadence is 500 ms of wall-clock time).  Wait for message
            # counts to go quiescent, as Testbed.settle does in sim.
            def counts():
                return tuple(cluster.servers[server
                                             ].endpoint.requests_served
                             for server in SURVIVORS)

            stable_since = loop.time()
            last = counts()
            deadline = loop.time() + 12.0
            while loop.time() < deadline:
                await asyncio.sleep(0.25)
                current = counts()
                if current != last:
                    last = current
                    stable_since = loop.time()
                elif loop.time() - stable_since >= 1.0:
                    break

            return observables(
                read1, write, read2, fs_version,
                lambda server: cluster.servers[
                    server].endpoint.requests_served)

    return asyncio.run(scenario())


class TestSimLiveParity:
    def test_same_scenario_same_observables(self):
        sim_result = run_on_testbed()
        live_result = run_on_live_cluster()
        assert sim_result == live_result

    def test_scenario_shape(self):
        # The forced quorums themselves, pinned so a regression in
        # either backend cannot silently agree on wrong behaviour.
        result = run_on_testbed()
        assert result["read1"] == (1, "rep-2", ["rep-2", "rep-3"], [])
        assert result["write"] == (2, ["rep-1", "rep-2"], ["rep-3"])
        assert result["read2"] == (2, "rep-2", ["rep-2", "rep-3"],
                                   ["rep-3"])
        assert result["final_versions"] == {"server-2": 2,
                                            "server-3": 2}
