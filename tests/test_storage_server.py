"""Storage servers: disk timing and crash/restart semantics."""

import pytest

from repro.errors import ServerDownError
from repro.sim import Network, RandomStreams, Simulator
from repro.storage import StorageServer


@pytest.fixture
def server(sim, network):
    host = network.add_host("s1")
    return StorageServer(sim, host, num_pages=256, page_io_time=2.0)


class TestTiming:
    def test_write_charges_per_page_step(self, sim, server):
        def work():
            yield from server.write_file("f", b"x" * 100, version=1,
                                         create=True)
            return sim.now

        elapsed = sim.run_process(work())
        # Data chain (1 page) + directory chain + root, each duplexed:
        # 6 steps at 2.0 each.
        assert elapsed == pytest.approx(12.0)

    def test_read_charges_per_page(self, sim, server):
        def work():
            yield from server.write_file("f", b"x" * 2000, version=1,
                                         create=True)
            start = sim.now
            data, version = yield from server.read_file("f")
            return sim.now - start, data

        elapsed, data = sim.run_process(work())
        assert data == b"x" * 2000
        pages = -(-2000 // server.fs.chunk_size)
        assert elapsed == pytest.approx(2.0 * pages)

    def test_disk_serializes_concurrent_ops(self, sim, server):
        finish_times = []

        def writer(name):
            yield from server.write_file(name, b"d", version=1,
                                         create=True)
            finish_times.append(sim.now)

        sim.spawn(writer("a"))
        sim.spawn(writer("b"))
        sim.run()
        assert finish_times == [12.0, 24.0]

    def test_zero_io_time_is_instant(self, sim, network):
        host = network.add_host("s0")
        fast = StorageServer(sim, host, num_pages=64, page_io_time=0.0)

        def work():
            yield from fast.write_file("f", b"x", version=1, create=True)
            return sim.now

        assert sim.run_process(work()) == 0.0


class TestCrashSemantics:
    def test_down_server_rejects_ops(self, sim, server):
        server.host.crash()
        with pytest.raises(ServerDownError):
            sim.run_process(server.read_file("any"))
        with pytest.raises(ServerDownError):
            server.stat("any")

    def test_restart_remounts_and_preserves(self, sim, server):
        def work():
            yield from server.write_file("f", b"keep", version=2,
                                         create=True)

        sim.run_process(work())
        server.host.crash()
        server.host.restart()
        assert server.recoveries == 1
        assert server.stat("f").version == 2

    def test_crash_mid_write_keeps_old_state(self, sim, server):
        def setup():
            yield from server.write_file("f", b"OLD", version=1,
                                         create=True)

        sim.run_process(setup())

        process = sim.spawn(server.write_file("f", b"NEW" * 400,
                                              version=2))
        sim.run(until=sim.now + 3.0)   # a step or two into the write
        process.kill()                 # what a host crash does to it
        server.host.crash()
        server.host.restart()
        def check():
            data, version = yield from server.read_file("f")
            return data, version

        assert sim.run_process(check()) == (b"OLD", 1)

    def test_crash_restart_listeners(self, sim, server):
        events = []
        server.on_crash(lambda: events.append("crash"))
        server.on_restart(lambda: events.append("restart"))
        server.host.crash()
        server.host.restart()
        assert events == ["crash", "restart"]

    def test_disk_resource_reset_on_restart(self, sim, server):
        process = sim.spawn(server.write_file("f", b"x" * 3000, version=1,
                                              create=True))
        sim.run(until=1.0)
        process.kill()
        server.host.crash()
        server.host.restart()
        # Disk must be usable again.
        def work():
            yield from server.write_file("g", b"y", version=1, create=True)
            return "ok"

        assert sim.run_process(work()) == "ok"
