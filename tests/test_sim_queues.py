"""Queues and resources."""

import pytest

from repro.sim import Queue, QueueClosed, Resource


class TestQueue:
    def test_put_then_get(self, sim):
        queue = Queue(sim)
        queue.put("a")
        queue.put("b")
        assert sim.run_until(queue.get()) == "a"
        assert sim.run_until(queue.get()) == "b"

    def test_get_blocks_until_put(self, sim):
        queue = Queue(sim)

        def consumer():
            item = yield queue.get()
            return (sim.now, item)

        sim.schedule(5.0, queue.put, "late")
        assert sim.run_process(consumer()) == (5.0, "late")

    def test_fifo_among_waiters(self, sim):
        queue = Queue(sim)
        order = []

        def consumer(tag):
            item = yield queue.get()
            order.append((tag, item))

        sim.spawn(consumer("first"))
        sim.spawn(consumer("second"))
        sim.schedule(1.0, queue.put, "x")
        sim.schedule(2.0, queue.put, "y")
        sim.run()
        assert order == [("first", "x"), ("second", "y")]

    def test_close_fails_waiters(self, sim):
        queue = Queue(sim, name="inbox")

        def consumer():
            try:
                yield queue.get()
            except QueueClosed:
                return "closed"

        sim.schedule(1.0, queue.close)
        assert sim.run_process(consumer()) == "closed"

    def test_close_drops_items_and_future_puts(self, sim):
        queue = Queue(sim)
        queue.put("lost")
        queue.close()
        queue.put("also lost")
        assert len(queue) == 0
        with pytest.raises(QueueClosed):
            sim.run_until(queue.get())

    def test_reopen_after_close(self, sim):
        queue = Queue(sim)
        queue.close()
        queue.reopen()
        queue.put("back")
        assert sim.run_until(queue.get()) == "back"

    def test_len_counts_buffered(self, sim):
        queue = Queue(sim)
        for i in range(3):
            queue.put(i)
        assert len(queue) == 3


class TestResource:
    def test_serializes_holders(self, sim):
        disk = Resource(sim, capacity=1)
        log = []

        def worker(tag, hold):
            yield disk.acquire()
            log.append((sim.now, tag, "got"))
            yield sim.timeout(hold)
            disk.release()

        sim.spawn(worker("a", 3.0))
        sim.spawn(worker("b", 1.0))
        sim.run()
        assert log == [(0.0, "a", "got"), (3.0, "b", "got")]

    def test_capacity_two(self, sim):
        pool = Resource(sim, capacity=2)
        log = []

        def worker(tag):
            yield pool.acquire()
            log.append((sim.now, tag))
            yield sim.timeout(2.0)
            pool.release()

        for tag in "abc":
            sim.spawn(worker(tag))
        sim.run()
        assert log == [(0.0, "a"), (0.0, "b"), (2.0, "c")]

    def test_release_idle_rejected(self, sim):
        disk = Resource(sim)
        with pytest.raises(RuntimeError):
            disk.release()

    def test_invalid_capacity(self, sim):
        with pytest.raises(ValueError):
            Resource(sim, capacity=0)

    def test_queue_length_reporting(self, sim):
        disk = Resource(sim)
        sim.run_until(disk.acquire())
        disk.acquire()
        disk.acquire()
        assert disk.in_use == 1
        assert disk.queue_length == 2

    def test_reset_clears_state(self, sim):
        disk = Resource(sim)
        sim.run_until(disk.acquire())
        waiter = disk.acquire()
        disk.reset()
        assert disk.in_use == 0
        assert waiter.failed
