"""The closed-form model and the paper's example table (experiment T1)."""

import math

import pytest

from repro.core import (EXACT, EXPECTED, SuiteAnalysis, availability_sweep,
                        example_analysis, example_configuration,
                        paper_table, quorum_tradeoff)
from tests.helpers import triple_config


class TestPaperTable:
    """The analytic model must reproduce Gifford's Section-3 table."""

    @pytest.mark.parametrize("example", [1, 2, 3])
    def test_read_latency(self, example):
        analysis = example_analysis(example)
        assert analysis.read_latency() == \
            EXPECTED[example]["read_latency"]

    @pytest.mark.parametrize("example", [1, 2, 3])
    def test_write_latency(self, example):
        analysis = example_analysis(example)
        assert analysis.write_latency() == \
            EXPECTED[example]["write_latency"]

    @pytest.mark.parametrize("example", [1, 2, 3])
    def test_read_blocking_probability_exact(self, example):
        analysis = example_analysis(example)
        assert analysis.read_blocking_probability() == \
            pytest.approx(EXACT[example]["read_blocking"], rel=1e-12)

    @pytest.mark.parametrize("example", [1, 2, 3])
    def test_write_blocking_probability_exact(self, example):
        analysis = example_analysis(example)
        assert analysis.write_blocking_probability() == \
            pytest.approx(EXACT[example]["write_blocking"], rel=1e-12)

    @pytest.mark.parametrize("example", [1, 2, 3])
    def test_blocking_matches_paper_rounding(self, example):
        """The paper's printed (rounded) numbers are within 5% of exact."""
        analysis = example_analysis(example)
        assert analysis.read_blocking_probability() == pytest.approx(
            EXPECTED[example]["read_blocking"], rel=0.05)
        assert analysis.write_blocking_probability() == pytest.approx(
            EXPECTED[example]["write_blocking"], rel=0.05)

    def test_paper_table_shape(self):
        table = paper_table()
        assert [row["example"] for row in table] == [1.0, 2.0, 3.0]
        for row in table:
            assert set(row) == {"example", "read_latency", "read_blocking",
                                "write_latency", "write_blocking"}

    def test_example_configurations_validate(self):
        for number in (1, 2, 3):
            config = example_configuration(number)
            config.validate()

    def test_unknown_example_rejected(self):
        with pytest.raises(ValueError):
            example_configuration(4)


class TestModelBehaviour:
    def test_read_latency_without_weak_reps(self):
        analysis = example_analysis(1)
        # Ignoring the weak reps, the read must hit rep-1 at 75 ms.
        assert analysis.read_latency(use_weak=False) == 75.0

    def test_strict_read_accounting_adds_inquiry(self):
        analysis = example_analysis(1)
        inquiry = {"rep-1": 2.0, "rep-2": 1.0, "rep-3": 1.0}
        assert analysis.read_latency_strict(inquiry) == 2.0 + 65.0

    def test_mean_latency_interpolates(self):
        analysis = example_analysis(3)
        assert analysis.mean_latency(1.0) == 75.0
        assert analysis.mean_latency(0.0) == 750.0
        assert analysis.mean_latency(0.5) == pytest.approx((75 + 750) / 2)

    def test_mean_latency_validates_fraction(self):
        with pytest.raises(ValueError):
            example_analysis(1).mean_latency(1.5)

    def test_write_quorum_members_reported(self):
        assert example_analysis(2).write_quorum_members() == \
            ["rep-1", "rep-2"]

    def test_availability_and_blocking_sum_to_one(self):
        analysis = example_analysis(2)
        assert analysis.read_availability() + \
            analysis.read_blocking_probability() == pytest.approx(1.0)

    def test_default_availability_scalar_broadcast(self):
        analysis = SuiteAnalysis(triple_config(), availability=0.9)
        assert analysis.availability == {
            "rep-1": 0.9, "rep-2": 0.9, "rep-3": 0.9}

    def test_per_rep_availability_map(self):
        analysis = SuiteAnalysis(
            triple_config(),
            availability={"rep-1": 0.5, "rep-2": 0.9, "rep-3": 0.9})
        # r=2: blocked unless >=2 up.
        expected_up = (0.5 * 0.9 * 0.9 + 0.5 * 0.9 * 0.9
                       + 0.5 * 0.1 * 0.9 + 0.5 * 0.9 * 0.1)
        assert analysis.read_availability() == pytest.approx(expected_up)


class TestSweeps:
    def test_availability_sweep_monotone(self):
        config = example_configuration(3)
        latencies = {rep.rep_id: rep.latency_hint
                     for rep in config.representatives}
        rows = availability_sweep(config, latencies,
                                  [0.5, 0.9, 0.99, 0.999])
        read_blocking = [row[1] for row in rows]
        write_blocking = [row[2] for row in rows]
        assert read_blocking == sorted(read_blocking, reverse=True)
        assert write_blocking == sorted(write_blocking, reverse=True)

    def test_quorum_tradeoff_frontier(self):
        config = triple_config(votes=(1, 1, 1, ), r=2, w=2)
        rows = quorum_tradeoff(config, availability=0.9)
        # Smaller r ⇒ higher read availability, and w=N hurts writes most.
        by_rw = {(row["r"], row["w"]): row for row in rows}
        assert by_rw[(1.0, 3.0)]["read_availability"] > \
            by_rw[(3.0, 3.0)]["read_availability"]
        assert by_rw[(2.0, 2.0)]["write_availability"] > \
            by_rw[(1.0, 3.0)]["write_availability"]

    def test_tradeoff_rows_all_valid(self):
        config = triple_config()
        for row in quorum_tradeoff(config, availability=0.99):
            assert 0.0 <= row["read_availability"] <= 1.0
            assert 0.0 <= row["write_availability"] <= 1.0
