"""The history checker itself, then the protocol checked by it."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from tests.helpers import triple_config
from repro.errors import ReproError
from repro.testbed import Testbed
from repro.verification import (HistoryRecorder, Operation, check_history)


def op(client, kind, start, end, version, data=b""):
    return Operation(client=client, kind=kind, start=start, end=end,
                     version=version, data=data)


class TestCheckerOnSyntheticHistories:
    def test_empty_history_valid(self):
        assert check_history([]) == []

    def test_simple_valid_history(self):
        history = [
            op("a", "write", 0, 1, 2, b"x"),
            op("b", "read", 2, 3, 2, b"x"),
        ]
        assert check_history(history) == []

    def test_duplicate_write_versions_flagged(self):
        history = [
            op("a", "write", 0, 1, 2, b"x"),
            op("b", "write", 0, 1, 2, b"y"),
        ]
        violations = check_history(history)
        assert any(v.rule == "W1" for v in violations)

    def test_read_of_wrong_data_flagged(self):
        history = [
            op("a", "write", 0, 1, 2, b"right"),
            op("b", "read", 2, 3, 2, b"wrong"),
        ]
        assert any(v.rule == "W2" for v in check_history(history))

    def test_read_of_phantom_version_flagged(self):
        history = [op("b", "read", 0, 1, 7, b"ghost")]
        assert any(v.rule == "R2" for v in check_history(history))

    def test_stale_read_after_write_flagged(self):
        history = [
            op("a", "write", 0, 1, 2, b"new"),
            op("b", "read", 5, 6, 1, b""),  # reads the install version
        ]
        assert any(v.rule == "R1" for v in check_history(history))

    def test_version_regression_between_writes_flagged(self):
        history = [
            op("a", "write", 0, 1, 3, b"x"),
            op("b", "write", 5, 6, 2, b"y"),
        ]
        assert any(v.rule == "R1" for v in check_history(history))

    def test_concurrent_operations_unconstrained(self):
        # b starts before a ends: any version order is acceptable.
        history = [
            op("a", "write", 0, 10, 3, b"x"),
            op("b", "read", 5, 6, 1, b""),
        ]
        assert check_history(history) == []

    def test_install_data_respected(self):
        history = [op("b", "read", 0, 1, 1, b"seed")]
        assert check_history(history, install_data=b"seed") == []
        assert check_history(history, install_data=b"other") != []

    def test_operation_validation(self):
        with pytest.raises(ValueError):
            op("a", "mystery", 0, 1, 1)
        with pytest.raises(ValueError):
            op("a", "read", 5, 1, 1)


class TestProtocolUnderChecker:
    def run_workload(self, seed, clients=3, ops_per_client=8,
                     crash=False):
        names = [f"c{i}" for i in range(clients)]
        bed = Testbed(servers=["s1", "s2", "s3"], clients=names,
                      seed=seed)
        config = triple_config()
        history = []
        recorders = []
        first = True
        for name in names:
            if first:
                suite = bed.install(config, b"seed", client=name)
                first = False
            else:
                suite = bed.suite(config, client=name)
            suite.retry_backoff = 120.0
            recorders.append(HistoryRecorder(suite, name, history))

        def client_loop(recorder, index):
            rng = bed.streams.stream(f"verify:{recorder.client}")
            for i in range(ops_per_client):
                try:
                    if rng.random() < 0.5:
                        yield from recorder.read()
                    else:
                        yield from recorder.write(
                            f"{recorder.client}-{i}".encode())
                except ReproError:
                    pass  # blocked ops record nothing: fine
                yield bed.sim.timeout(rng.uniform(0, 40.0))

        def chaos():
            yield bed.sim.timeout(100.0)
            bed.crash("s2")
            yield bed.sim.timeout(300.0)
            bed.restart("s2")

        processes = [bed.sim.spawn(client_loop(recorder, i),
                                   name=f"verify-{i}")
                     for i, recorder in enumerate(recorders)]
        if crash:
            bed.sim.spawn(chaos(), name="chaos")
        bed.sim.run_until(bed.sim.all_of(processes))
        return history

    def test_concurrent_clients_strictly_serializable(self):
        history = self.run_workload(seed=101)
        assert len(history) > 10
        assert check_history(history, install_data=b"seed") == []

    def test_still_serializable_under_crashes(self):
        history = self.run_workload(seed=102, crash=True)
        violations = check_history(history, install_data=b"seed")
        assert violations == []

    @given(st.integers(min_value=0, max_value=2 ** 16))
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_random_seeds_always_serializable(self, seed):
        history = self.run_workload(seed=seed, clients=2,
                                    ops_per_client=6)
        assert check_history(history, install_data=b"seed") == []

    def test_checker_catches_a_broken_protocol(self):
        """Sanity check of the checker itself against a protocol we
        know is broken: the single-representative inquiry client from
        the anomaly suite produces R1 violations."""
        from tests.test_anomalies import SingleRepInquiryClient

        bed = Testbed(servers=["s1", "s2", "s3"], seed=103,
                      refresh_enabled=False)
        config = triple_config()
        good = bed.install(config, b"seed")
        history = []
        good_recorder = HistoryRecorder(good, "good", history)
        bed.run(good_recorder.write(b"v2"))     # quorum {s1, s2}

        broken = SingleRepInquiryClient(
            bed.clients["client"].manager, config, max_attempts=1,
            inquiry_timeout=100.0)
        broken_recorder = HistoryRecorder(broken, "broken", history)
        bed.crash("s1")
        bed.crash("s2")
        bed.run(broken_recorder.read())         # stale read, recorded
        violations = check_history(history, install_data=b"seed")
        assert any(v.rule == "R1" for v in violations)
