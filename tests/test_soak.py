"""Soak test: everything at once, checked by the history checker.

Three clients, rolling server crashes, message loss *and* duplication,
background refresh on, for a few hundred operations — then the full
history must be strictly serializable, every replica must converge,
and the participants must hold no residual transaction state.
"""

import pytest

from tests.helpers import triple_config
from repro.errors import ReproError
from repro.testbed import Testbed
from repro.verification import HistoryRecorder, check_history

CLIENTS = ["c0", "c1", "c2"]
OPS_PER_CLIENT = 35


def run_soak(seed=2026):
    bed = Testbed(servers=["s1", "s2", "s3"], clients=CLIENTS, seed=seed)
    bed.network.loss_probability = 0.02
    bed.network.duplicate_probability = 0.05
    config = triple_config()
    history = []
    recorders = []
    first = True
    for name in CLIENTS:
        if first:
            suite = bed.install(config, b"genesis", client=name)
            first = False
        else:
            suite = bed.suite(config, client=name)
        suite.max_attempts = 8
        suite.retry_backoff = 150.0
        suite.inquiry_timeout = 400.0
        suite.data_timeout = 800.0
        recorders.append(HistoryRecorder(suite, name, history))

    blocked = 0

    def client_loop(recorder):
        nonlocal blocked
        rng = bed.streams.stream(f"soak:{recorder.client}")
        for i in range(OPS_PER_CLIENT):
            try:
                if rng.random() < 0.6:
                    yield from recorder.read()
                else:
                    yield from recorder.write(
                        f"{recorder.client}/{i}".encode())
            except ReproError:
                blocked += 1
            yield bed.sim.timeout(rng.uniform(5.0, 80.0))

    def chaos():
        rng = bed.streams.stream("soak:chaos")
        for round_number in range(8):
            victim = f"s{rng.randint(1, 3)}"
            bed.crash(victim)
            yield bed.sim.timeout(rng.uniform(100.0, 400.0))
            bed.restart(victim)
            yield bed.sim.timeout(rng.uniform(100.0, 500.0))

    processes = [bed.sim.spawn(client_loop(recorder),
                               name=f"soak-{recorder.client}")
                 for recorder in recorders]
    chaos_process = bed.sim.spawn(chaos(), name="soak-chaos")
    bed.sim.run_until(bed.sim.all_of(processes))
    bed.sim.run_until(chaos_process)
    bed.settle(120_000.0)
    return bed, history, blocked


class TestSoak:
    def test_everything_at_once(self):
        bed, history, blocked = run_soak()
        completed = len(history)
        assert completed >= 60, \
            f"only {completed} ops completed ({blocked} blocked)"

        # 1. The complete multi-client history is strictly serializable.
        violations = check_history(history, install_data=b"genesis")
        assert violations == [], [str(v) for v in violations]

        # 2. All replicas converged to the newest committed version.
        versions = {node.server.fs.stat("suite:db").version
                    for node in bed.servers.values()}
        max_written = max((op.version for op in history), default=1)
        assert versions == {max_written}

        # 3. No residual transaction state anywhere.
        for node in bed.servers.values():
            assert node.participant.in_doubt() == []
            assert len(node.participant._active) == 0
            assert not node.participant.locks.holders_of("suite:db")
