"""The perf subsystem: result schema, registry files, regression
comparison, and the hot-path phase profiler.

Acceptance scenarios from the issue are exercised directly: a result
file compared against itself exits clean, an injected 2x latency
regression makes the comparator fail, advisory (``gate=False``) live
numbers never fail a compare, and ``repro perf profile`` produces a
phase breakdown on both runtimes with self-measured overhead.
"""

import json
import os

import pytest

from repro.cli import main as cli_main
from repro.perf import (DEFAULT_TOLERANCE, RUNTIMES, SCHEMA_VERSION,
                        BenchRegistry, BenchResult, MetricRule,
                        PhaseProfiler, SchemaError, bench_path,
                        compare_results, current_git_sha, discover,
                        infer_direction, load_results, validate_result,
                        write_results)
from repro.sim.metrics import MetricsRegistry
from repro.testbed import Testbed, example_data, example_testbed


def make_result(**overrides):
    base = dict(bench="fig_x", metric="read_latency_ms", value=75.0,
                unit="ms", config="example-1", runtime="sim", seed=7)
    base.update(overrides)
    return BenchResult(**base)


# ---------------------------------------------------------------------------
# Schema
# ---------------------------------------------------------------------------

class TestSchema:
    def test_roundtrip(self):
        result = make_result(git_sha="abc1234", duration_s=0.25)
        raw = result.to_json()
        assert raw["schema"] == SCHEMA_VERSION
        assert BenchResult.from_json(raw) == result
        # JSON-serialisable end to end.
        assert BenchResult.from_json(json.loads(json.dumps(raw))) == result

    def test_key_and_label(self):
        result = make_result()
        assert result.key() == ("fig_x", "read_latency_ms", "example-1",
                                "sim")
        assert result.label() == "fig_x/read_latency_ms/example-1/sim"
        assert make_result(config="").label() == \
            "fig_x/read_latency_ms/sim"

    def test_defaults_fill_missing_optionals(self):
        raw = {"bench": "b", "metric": "m", "value": 1.0, "unit": "ms"}
        result = BenchResult.from_json(raw)
        assert result.runtime == "sim"
        assert result.gate is True
        assert result.seed is None
        assert result.git_sha == "unknown"

    @pytest.mark.parametrize("broken, message", [
        ({"bench": ""}, "bench"),
        ({"metric": None}, "metric"),
        ({"unit": 5}, "unit"),
        ({"value": "fast"}, "value"),
        ({"value": True}, "value"),
        ({"runtime": "gpu"}, "runtime"),
        ({"seed": 1.5}, "seed"),
        ({"gate": "yes"}, "gate"),
        ({"duration_s": "long"}, "duration_s"),
        ({"schema": 99}, "schema"),
    ])
    def test_validation_rejects_bad_fields(self, broken, message):
        raw = make_result().to_json()
        raw.update(broken)
        with pytest.raises(SchemaError) as excinfo:
            validate_result(raw)
        assert message in str(excinfo.value)

    def test_validation_rejects_non_dict(self):
        with pytest.raises(SchemaError):
            validate_result(["not", "a", "record"])

    def test_runtime_vocabulary(self):
        assert RUNTIMES == ("analytic", "sim", "live")
        for runtime in RUNTIMES:
            validate_result(make_result(runtime=runtime).to_json())

    def test_git_sha_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SHA", "feedface")
        assert current_git_sha() == "feedface"


# ---------------------------------------------------------------------------
# Registry files
# ---------------------------------------------------------------------------

class TestRegistry:
    def test_bench_path_shape(self, tmp_path):
        assert bench_path("figs", str(tmp_path)) == \
            os.path.join(str(tmp_path), "BENCH_FIGS.json")
        with pytest.raises(ValueError):
            bench_path("../evil", str(tmp_path))
        with pytest.raises(ValueError):
            bench_path("", str(tmp_path))

    def test_write_load_roundtrip_sorted_and_stable(self, tmp_path):
        path = bench_path("figs", str(tmp_path))
        second = make_result(metric="write_latency_ms", value=99.0)
        first = make_result()
        write_results(path, [second, first])
        loaded = load_results(path)
        assert loaded == sorted([first, second],
                                key=lambda result: result.key())
        # Regenerating with the same records is byte-identical.
        before = open(path, encoding="utf-8").read()
        write_results(path, [first, second])
        assert open(path, encoding="utf-8").read() == before
        assert before.endswith("\n")

    def test_load_rejects_bad_envelope(self, tmp_path):
        path = tmp_path / "BENCH_BAD.json"
        path.write_text(json.dumps({"schema": 2, "results": []}))
        with pytest.raises(SchemaError):
            load_results(str(path))
        path.write_text(json.dumps({"schema": 1, "results": [{}]}))
        with pytest.raises(SchemaError) as excinfo:
            load_results(str(path))
        assert "result #0" in str(excinfo.value)

    def test_record_replaces_same_key_and_merges_disk(self, tmp_path):
        registry = BenchRegistry(root=str(tmp_path))
        registry.record("figs", make_result(value=1.0))
        registry.record("figs", make_result(value=2.0))  # same key
        (written,) = registry.flush()
        assert load_results(written)[0].value == 2.0

        # A fresh registry (new pytest item, same process pattern) must
        # merge with what is already on disk, not clobber it.
        other = BenchRegistry(root=str(tmp_path))
        other.record("figs", make_result(metric="write_latency_ms",
                                         value=3.0))
        other.flush()
        assert len(load_results(written)) == 2

    def test_discover(self, tmp_path):
        write_results(bench_path("figs", str(tmp_path)), [make_result()])
        write_results(bench_path("obs", str(tmp_path)), [make_result()])
        (tmp_path / "not_bench.json").write_text("{}")
        names = [os.path.basename(path)
                 for path in discover(str(tmp_path))]
        assert names == ["BENCH_FIGS.json", "BENCH_OBS.json"]


# ---------------------------------------------------------------------------
# Regression comparison
# ---------------------------------------------------------------------------

class TestCompare:
    def test_direction_inference(self):
        assert infer_direction("read_latency_ms", "ms") == "lower"
        assert infer_direction("reads_per_sec", "ops/s") == "higher"
        assert infer_direction("write_availability",
                               "probability") == "higher"
        assert infer_direction("mystery", "widgets") is None

    def test_exact_direction_inference_wins_over_other_hints(self):
        assert infer_direction("placement_checksum", "digest") == "exact"
        assert infer_direction("rebalance_moved_suites",
                               "count") == "exact"
        # "placement" beats the "_ms"/"message" lower-hints.
        assert infer_direction("placement_messages", "count") == "exact"

    def test_exact_metric_fails_on_any_move(self):
        old = [make_result(metric="placement_checksum", unit="digest",
                           value=12345.0)]
        same = [make_result(metric="placement_checksum", unit="digest",
                            value=12345.0)]
        drift = [make_result(metric="placement_checksum", unit="digest",
                             value=12346.0)]
        assert not compare_results(old, same).failed
        report = compare_results(old, drift)
        assert report.failed
        (delta,) = report.regressions
        assert delta.direction == "exact"
        assert "= required" in report.render()

    def test_exact_metric_fails_in_both_directions(self):
        old = [make_result(metric="layout_digest", unit="digest",
                           value=100.0)]
        assert compare_results(old, [make_result(
            metric="layout_digest", unit="digest", value=99.0)]).failed
        assert compare_results(old, [make_result(
            metric="layout_digest", unit="digest", value=101.0)]).failed

    def test_exact_abs_tolerance_grants_slack(self):
        old = [make_result(metric="rebalance_moved_suites", unit="count",
                           value=10.0)]
        new = [make_result(metric="rebalance_moved_suites", unit="count",
                           value=11.0)]
        assert compare_results(old, new).failed
        rules = {"rebalance_moved_suites": MetricRule(
            direction="exact", abs_tolerance=2.0)}
        assert not compare_results(old, new, rules=rules).failed

    def test_exact_respects_gate_false(self):
        old = [make_result(metric="placement_checksum", unit="digest",
                           runtime="live", gate=False, value=1.0)]
        new = [make_result(metric="placement_checksum", unit="digest",
                           runtime="live", gate=False, value=2.0)]
        report = compare_results(old, new)
        assert report.counts() == {"info": 1}
        assert not report.failed

    def test_identical_files_are_clean(self):
        results = [make_result(), make_result(metric="reads", value=9.0,
                                              unit="count")]
        report = compare_results(results, results)
        assert not report.failed
        assert report.regressions == []
        assert "REGRESSION" not in report.render()

    def test_injected_2x_latency_regression_fails(self):
        old = [make_result(value=75.0)]
        new = [make_result(value=150.0)]
        report = compare_results(old, new)
        assert report.failed
        (delta,) = report.regressions
        assert delta.change == pytest.approx(1.0)
        assert delta.direction == "lower"
        assert "REGRESSION" in report.render()

    def test_throughput_drop_is_a_regression_too(self):
        old = [make_result(metric="reads_per_sec", unit="ops/s",
                           value=2000.0)]
        new = [make_result(metric="reads_per_sec", unit="ops/s",
                           value=900.0)]
        assert compare_results(old, new).failed

    def test_improvement_and_within_tolerance(self):
        old = [make_result(value=100.0)]
        assert compare_results(
            old, [make_result(value=110.0)]).counts() == {"ok": 1}
        report = compare_results(old, [make_result(value=50.0)])
        assert report.counts() == {"improvement": 1}
        assert not report.failed

    def test_gate_false_is_advisory(self):
        # A 10x live wall-clock swing must never fail the build.
        old = [make_result(runtime="live", gate=False, value=10.0)]
        new = [make_result(runtime="live", gate=False, value=100.0)]
        report = compare_results(old, new)
        assert report.counts() == {"info": 1}
        assert not report.failed

    def test_unknown_direction_is_info(self):
        old = [make_result(metric="mystery", unit="widgets", value=1.0)]
        new = [make_result(metric="mystery", unit="widgets", value=9.0)]
        assert compare_results(old, new).counts() == {"info": 1}

    def test_new_and_removed_metrics(self):
        old = [make_result(metric="gone")]
        new = [make_result(metric="fresh")]
        report = compare_results(old, new)
        assert report.counts() == {"new": 1, "removed": 1}
        assert not report.failed
        rendered = report.render()
        assert "new" in rendered and "removed" in rendered

    def test_explicit_rule_overrides_inference(self):
        # "mystery" has no inferable direction; a rule makes it gate.
        old = [make_result(metric="mystery", unit="widgets", value=10.0)]
        new = [make_result(metric="mystery", unit="widgets", value=20.0)]
        rules = {"mystery": MetricRule(direction="lower",
                                       rel_tolerance=0.1)}
        assert compare_results(old, new, rules=rules).failed

    def test_abs_tolerance_shields_near_zero_baselines(self):
        old = [make_result(metric="stale_reads", unit="count",
                           value=0.0)]
        new = [make_result(metric="stale_reads", unit="count",
                           value=0.5)]
        assert compare_results(old, new).failed   # inf relative change
        rules = {"stale_reads": MetricRule(direction="lower",
                                           abs_tolerance=1.0)}
        assert not compare_results(old, new, rules=rules).failed

    def test_tolerance_default(self):
        assert DEFAULT_TOLERANCE == 0.25
        old = [make_result(value=100.0)]
        new = [make_result(value=124.0)]   # inside 25%
        assert not compare_results(old, new).failed
        assert compare_results(old, new, tolerance=0.1).failed


# ---------------------------------------------------------------------------
# Phase profiler
# ---------------------------------------------------------------------------

class TestProfiler:
    def _ticking(self):
        clock = iter(range(0, 10000, 5))
        return PhaseProfiler(clock=lambda: float(next(clock)))

    def test_start_stop_and_observe(self):
        profiler = self._ticking()
        token = profiler.start()
        profiler.stop("rpc.serve", token)            # 5ms tick
        profiler.observe("rpc.serve", 15.0)
        profiler.count("rpc.retransmit")
        stats = profiler.stats()
        assert stats["rpc.serve"].count == 2
        assert stats["rpc.serve"].total == 20.0
        assert stats["rpc.serve"].mean == 10.0
        assert stats["rpc.serve"].minimum == 5.0
        assert stats["rpc.serve"].maximum == 15.0
        assert stats["rpc.retransmit"].count == 1
        assert profiler.samples == 3

    def test_measure_context_manager_records_on_error(self):
        profiler = self._ticking()
        with pytest.raises(RuntimeError):
            with profiler.measure("2pc.prepare"):
                raise RuntimeError("abort")
        assert profiler.stats()["2pc.prepare"].count == 1

    def test_disabled_profiler_records_nothing(self):
        profiler = PhaseProfiler(clock=lambda: 0.0, enabled=False)
        profiler.observe("x", 1.0)
        profiler.stop("x", profiler.start())
        assert profiler.stats() == {}
        assert profiler.samples == 0

    def test_top_and_render(self):
        profiler = self._ticking()
        profiler.observe("small", 1.0)
        profiler.observe("big", 100.0)
        assert [name for name, _ in profiler.top(1)] == ["big"]
        text = profiler.render(top_n=2, unit="sim ms")
        assert "big" in text and "small" in text and "sim ms" in text
        profiler.reset()
        assert profiler.render() == "(no phases recorded)"
        assert profiler.samples == 0

    def test_publish_mirrors_into_metrics(self):
        profiler = self._ticking()
        profiler.observe("quorum.assemble", 30.0)
        registry = MetricsRegistry()
        profiler.publish(registry)
        assert registry.gauge(
            "perf.phase.quorum.assemble.count").value == 1.0
        assert registry.gauge(
            "perf.phase.quorum.assemble.mean").value == 30.0

    def test_calibration_and_overhead_fraction(self):
        profiler = PhaseProfiler(clock=lambda: 0.0)
        cost = profiler.calibrate(iterations=2000)
        assert cost > 0.0
        # Calibration never leaks a phase or inflates the sample count.
        assert "__calibration__" not in profiler.stats()
        assert profiler.samples == 0
        profiler.observe("x", 1.0)
        assert profiler.overhead_fraction(1.0) == pytest.approx(cost)
        assert profiler.overhead_fraction(0.0) == 0.0

    def test_testbed_profile_captures_hot_path_phases(self):
        bed, config = example_testbed(1, profile=True)
        suite = bed.install(config, example_data())
        for _ in range(3):
            bed.run(suite.read())
            bed.run(suite.write(example_data(b"2")))
        bed.settle()
        stats = bed.profiler.stats()
        assert {"quorum.assemble", "2pc.prepare", "2pc.commit",
                "rpc.roundtrip", "rpc.serve"} <= set(stats)
        assert stats["2pc.prepare"].count >= 3
        # Phase durations are virtual milliseconds of the sim clock.
        assert stats["quorum.assemble"].total > 0.0
        # The profiler stays off unless asked for.
        assert Testbed(servers=["s1"]).profiler is None


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

class TestPerfCli:
    def _write(self, tmp_path, name, results):
        path = str(tmp_path / name)
        write_results(path, results)
        return path

    def test_compare_identical_exits_zero(self, tmp_path, capsys):
        path = self._write(tmp_path, "old.json", [make_result()])
        assert cli_main(["perf", "compare", path, path]) == 0
        assert "1 ok" in capsys.readouterr().out

    def test_compare_regression_exits_nonzero(self, tmp_path, capsys):
        old = self._write(tmp_path, "old.json",
                          [make_result(value=75.0)])
        new = self._write(tmp_path, "new.json",
                          [make_result(value=150.0)])
        assert cli_main(["perf", "compare", old, new]) == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out
        assert "75 → 150" in out

    def test_compare_tolerance_flag(self, tmp_path):
        old = self._write(tmp_path, "old.json",
                          [make_result(value=100.0)])
        new = self._write(tmp_path, "new.json",
                          [make_result(value=120.0)])
        assert cli_main(["perf", "compare", old, new]) == 0
        assert cli_main(["perf", "compare", "--tolerance", "0.05",
                         old, new]) == 1

    def test_compare_missing_file_exits_two(self, tmp_path, capsys):
        path = self._write(tmp_path, "old.json", [make_result()])
        missing = str(tmp_path / "nope.json")
        assert cli_main(["perf", "compare", path, missing]) == 2
        assert "repro perf compare" in capsys.readouterr().err

    def test_profile_sim_runtime(self, capsys):
        assert cli_main(["perf", "profile", "--runtime", "sim",
                         "--ops", "20", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "phase breakdown" in out
        assert "quorum.assemble" in out
        assert "2pc.prepare" in out
        assert "overhead" in out

    def test_profile_live_runtime(self, capsys):
        assert cli_main(["perf", "profile", "--runtime", "live",
                         "--ops", "8", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "frame.encode" in out
        assert "frame.decode" in out
        assert "storage.page_write" in out
