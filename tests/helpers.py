"""Shared helpers for tests (importable, unlike conftest)."""

from repro.core.votes import Representative, SuiteConfiguration


def triple_config(name: str = "db", votes=(1, 1, 1), r: int = 2,
                  w: int = 2, latencies=(10.0, 20.0, 30.0),
                  ) -> SuiteConfiguration:
    """A suite over s1..s3 with the given vote/latency shape."""
    reps = tuple(
        Representative(rep_id=f"rep-{i + 1}", server=f"s{i + 1}",
                       votes=v, latency_hint=lat)
        for i, (v, lat) in enumerate(zip(votes, latencies)))
    return SuiteConfiguration(suite_name=name, representatives=reps,
                              read_quorum=r, write_quorum=w)
