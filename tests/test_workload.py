"""Workload mixes, payloads and drivers."""

import pytest

from tests.helpers import triple_config
from repro.sim import RandomStreams
from repro.testbed import Testbed
from repro.workload import (ClosedLoopDriver, OpenLoopDriver, OperationMix,
                            PayloadShape, READ, WRITE)
from repro.workload.drivers import _stream_name


class TestOperationMix:
    def test_fraction_validated(self):
        with pytest.raises(ValueError):
            OperationMix(read_fraction=1.5)

    def test_read_only_and_write_only(self):
        rng = RandomStreams(0).stream("m")
        assert all(OperationMix.read_only().choose(rng) == READ
                   for _ in range(20))
        assert all(OperationMix.write_only().choose(rng) == WRITE
                   for _ in range(20))

    def test_mix_roughly_matches_fraction(self):
        rng = RandomStreams(0).stream("m")
        mix = OperationMix(read_fraction=0.7)
        reads = sum(mix.choose(rng) == READ for _ in range(2000))
        assert 1300 < reads < 1500


class TestPayloadShape:
    def test_fixed_size(self):
        rng = RandomStreams(0).stream("p")
        payload = PayloadShape(size=128).build(rng, 7)
        assert len(payload) == 128
        assert payload.startswith(b"#7:")

    def test_jitter_varies_size(self):
        rng = RandomStreams(0).stream("p")
        shape = PayloadShape(size=1000, jitter=0.5)
        sizes = {len(shape.build(rng, i)) for i in range(50)}
        assert len(sizes) > 5
        assert all(500 <= s <= 1000 for s in sizes)

    def test_tiny_size_truncates_marker(self):
        rng = RandomStreams(0).stream("p")
        assert len(PayloadShape(size=2).build(rng, 123)) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            PayloadShape(size=-1)
        with pytest.raises(ValueError):
            PayloadShape(jitter=2.0)


class TestClosedLoopDriver:
    def test_runs_requested_operations(self, bed):
        suite = bed.install(triple_config(), b"seed")
        driver = ClosedLoopDriver(bed.sim, suite,
                                  OperationMix(read_fraction=0.5),
                                  streams=bed.streams, name="d1")
        stats = bed.run(driver.run(30))
        assert stats.operations == 30
        assert stats.reads + stats.writes == 30
        assert stats.read_latency.count == stats.reads
        assert stats.write_latency.count == stats.writes

    def test_think_time_spaces_operations(self, bed):
        suite = bed.install(triple_config(), b"seed")
        driver = ClosedLoopDriver(bed.sim, suite,
                                  OperationMix.read_only(),
                                  think_time=100.0, streams=bed.streams)
        start = bed.sim.now
        bed.run(driver.run(5))
        assert bed.sim.now - start >= 500.0

    def test_blocked_operations_counted(self, bed):
        suite = bed.install(triple_config(), b"seed")
        suite.max_attempts = 1
        suite.inquiry_timeout = 50.0
        bed.crash("s1")
        bed.crash("s2")
        driver = ClosedLoopDriver(bed.sim, suite, OperationMix.read_only(),
                                  streams=bed.streams)
        stats = bed.run(driver.run(5))
        assert stats.read_blocked == 5
        assert stats.read_blocking_rate == 1.0
        assert stats.operations == 0

    def test_run_for_duration(self, bed):
        suite = bed.install(triple_config(), b"seed")
        driver = ClosedLoopDriver(bed.sim, suite, OperationMix.read_only(),
                                  think_time=10.0, streams=bed.streams)
        stats = bed.run(driver.run_for(500.0))
        assert stats.operations > 5
        assert bed.sim.now >= 500.0

    def test_summary_keys(self, bed):
        suite = bed.install(triple_config(), b"seed")
        driver = ClosedLoopDriver(bed.sim, suite, OperationMix(0.5),
                                  streams=bed.streams)
        stats = bed.run(driver.run(10))
        summary = stats.summary()
        assert summary["operations"] == 10.0
        assert "read_latency_mean" in summary


class TestOpenLoopDriver:
    def test_arrivals_independent_of_latency(self, bed):
        suite = bed.install(triple_config(), b"seed")
        driver = OpenLoopDriver(bed.sim, suite, OperationMix.read_only(),
                                interarrival=5.0, streams=bed.streams)
        stats = bed.run(driver.run(20))
        assert stats.operations == 20

    def test_blocked_trials_do_not_stop_arrivals(self, bed):
        suite = bed.install(triple_config(), b"seed")
        suite.max_attempts = 1
        suite.inquiry_timeout = 20.0
        bed.crash("s1")
        bed.crash("s2")
        driver = OpenLoopDriver(bed.sim, suite, OperationMix.read_only(),
                                interarrival=50.0, streams=bed.streams)
        stats = bed.run(driver.run(10))
        assert stats.read_blocked == 10


class TestPerClientDeterminism:
    """Per-client randomness is a pure function of seed and client id."""

    def test_client_id_keys_the_stream(self):
        draws = []
        for _attempt in range(2):
            streams = RandomStreams(seed=77)
            rng = streams.stream(_stream_name("whatever", client_id=4))
            draws.append([rng.random() for _ in range(5)])
        assert draws[0] == draws[1]

    def test_stream_independent_of_driver_name(self):
        one = RandomStreams(seed=9).stream(_stream_name("alpha", 2))
        two = RandomStreams(seed=9).stream(_stream_name("beta", 2))
        assert [one.random() for _ in range(5)] == \
            [two.random() for _ in range(5)]

    def test_legacy_name_keyed_stream_without_client_id(self):
        assert _stream_name("open-driver", None) == "workload:open-driver"
        assert _stream_name("ignored", 12) == "workload:client:12"

    def test_driver_stats_reproducible_for_same_client_id(self, bed):
        def one_run():
            local = Testbed(servers=["s1", "s2", "s3"], seed=7)
            suite = local.install(triple_config(), b"seed")
            driver = OpenLoopDriver(local.sim, suite, OperationMix(0.5),
                                    interarrival=20.0,
                                    streams=local.streams,
                                    name="run-specific-name",
                                    client_id=3)
            stats = local.run(driver.run(12))
            return stats.summary()

        assert one_run() == one_run()

    def test_adding_client_does_not_perturb_existing_clients(self, bed):
        """Common random numbers: client N+1 never changes what
        clients 0..N draw."""
        def draws_for(population):
            streams = RandomStreams(seed=5)
            return {
                client_id: [
                    streams.stream(_stream_name("d", client_id)).random()
                    for _ in range(3)]
                for client_id in range(population)
            }

        small = draws_for(3)
        large = draws_for(4)
        assert all(large[cid] == small[cid] for cid in small)


class TestMultiTenantDeterminism:
    """Whole-population runs are byte-reproducible per seed."""

    def _run_population(self, clients):
        from repro.cluster import ClusterSpec, SimCluster
        from repro.workload import MultiTenantWorkload

        spec = ClusterSpec(servers=4, suites=6, directory_shards=2,
                           seed=13)
        cluster = SimCluster(spec).start()
        workload = MultiTenantWorkload(
            cluster.bed.sim, cluster.handles,
            mix=OperationMix(read_fraction=0.9), interarrival=30.0,
            clients=clients, streams=RandomStreams(seed=21))
        stats = cluster.bed.run(workload.run(3))
        return stats

    def test_identical_runs_identical_everything(self):
        one = self._run_population(12)
        two = self._run_population(12)
        assert one.summary() == two.summary()
        assert one.per_suite == two.per_suite
        assert one.per_server == two.per_server
        assert one.read_latency.samples == two.read_latency.samples
        assert one.write_latency.samples == two.write_latency.samples
