"""Workload mixes, payloads and drivers."""

import pytest

from tests.helpers import triple_config
from repro.sim import RandomStreams
from repro.workload import (ClosedLoopDriver, OpenLoopDriver, OperationMix,
                            PayloadShape, READ, WRITE)


class TestOperationMix:
    def test_fraction_validated(self):
        with pytest.raises(ValueError):
            OperationMix(read_fraction=1.5)

    def test_read_only_and_write_only(self):
        rng = RandomStreams(0).stream("m")
        assert all(OperationMix.read_only().choose(rng) == READ
                   for _ in range(20))
        assert all(OperationMix.write_only().choose(rng) == WRITE
                   for _ in range(20))

    def test_mix_roughly_matches_fraction(self):
        rng = RandomStreams(0).stream("m")
        mix = OperationMix(read_fraction=0.7)
        reads = sum(mix.choose(rng) == READ for _ in range(2000))
        assert 1300 < reads < 1500


class TestPayloadShape:
    def test_fixed_size(self):
        rng = RandomStreams(0).stream("p")
        payload = PayloadShape(size=128).build(rng, 7)
        assert len(payload) == 128
        assert payload.startswith(b"#7:")

    def test_jitter_varies_size(self):
        rng = RandomStreams(0).stream("p")
        shape = PayloadShape(size=1000, jitter=0.5)
        sizes = {len(shape.build(rng, i)) for i in range(50)}
        assert len(sizes) > 5
        assert all(500 <= s <= 1000 for s in sizes)

    def test_tiny_size_truncates_marker(self):
        rng = RandomStreams(0).stream("p")
        assert len(PayloadShape(size=2).build(rng, 123)) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            PayloadShape(size=-1)
        with pytest.raises(ValueError):
            PayloadShape(jitter=2.0)


class TestClosedLoopDriver:
    def test_runs_requested_operations(self, bed):
        suite = bed.install(triple_config(), b"seed")
        driver = ClosedLoopDriver(bed.sim, suite,
                                  OperationMix(read_fraction=0.5),
                                  streams=bed.streams, name="d1")
        stats = bed.run(driver.run(30))
        assert stats.operations == 30
        assert stats.reads + stats.writes == 30
        assert stats.read_latency.count == stats.reads
        assert stats.write_latency.count == stats.writes

    def test_think_time_spaces_operations(self, bed):
        suite = bed.install(triple_config(), b"seed")
        driver = ClosedLoopDriver(bed.sim, suite,
                                  OperationMix.read_only(),
                                  think_time=100.0, streams=bed.streams)
        start = bed.sim.now
        bed.run(driver.run(5))
        assert bed.sim.now - start >= 500.0

    def test_blocked_operations_counted(self, bed):
        suite = bed.install(triple_config(), b"seed")
        suite.max_attempts = 1
        suite.inquiry_timeout = 50.0
        bed.crash("s1")
        bed.crash("s2")
        driver = ClosedLoopDriver(bed.sim, suite, OperationMix.read_only(),
                                  streams=bed.streams)
        stats = bed.run(driver.run(5))
        assert stats.read_blocked == 5
        assert stats.read_blocking_rate == 1.0
        assert stats.operations == 0

    def test_run_for_duration(self, bed):
        suite = bed.install(triple_config(), b"seed")
        driver = ClosedLoopDriver(bed.sim, suite, OperationMix.read_only(),
                                  think_time=10.0, streams=bed.streams)
        stats = bed.run(driver.run_for(500.0))
        assert stats.operations > 5
        assert bed.sim.now >= 500.0

    def test_summary_keys(self, bed):
        suite = bed.install(triple_config(), b"seed")
        driver = ClosedLoopDriver(bed.sim, suite, OperationMix(0.5),
                                  streams=bed.streams)
        stats = bed.run(driver.run(10))
        summary = stats.summary()
        assert summary["operations"] == 10.0
        assert "read_latency_mean" in summary


class TestOpenLoopDriver:
    def test_arrivals_independent_of_latency(self, bed):
        suite = bed.install(triple_config(), b"seed")
        driver = OpenLoopDriver(bed.sim, suite, OperationMix.read_only(),
                                interarrival=5.0, streams=bed.streams)
        stats = bed.run(driver.run(20))
        assert stats.operations == 20

    def test_blocked_trials_do_not_stop_arrivals(self, bed):
        suite = bed.install(triple_config(), b"seed")
        suite.max_attempts = 1
        suite.inquiry_timeout = 20.0
        bed.crash("s1")
        bed.crash("s2")
        driver = OpenLoopDriver(bed.sim, suite, OperationMix.read_only(),
                                interarrival=50.0, streams=bed.streams)
        stats = bed.run(driver.run(10))
        assert stats.read_blocked == 10
