"""The replicated suite directory."""

import pytest

from tests.helpers import triple_config
from repro.core import install_suite, make_configuration
from repro.directory import (DirectoryError, SuiteDirectory,
                             decode_directory, empty_directory_data,
                             encode_directory)
from repro.core.reconfig import change_configuration
from repro.testbed import Testbed


@pytest.fixture
def directory(bed):
    dir_config = make_configuration(
        "__directory__", [("s1", 1), ("s2", 1), ("s3", 1)], 2, 2,
        latency_hints={"s1": 5.0, "s2": 6.0, "s3": 7.0})
    suite = bed.install(dir_config, empty_directory_data())
    return SuiteDirectory(suite)


class TestEncoding:
    def test_round_trip(self):
        entries = {"db": triple_config().to_json()}
        assert decode_directory(encode_directory(entries)) == entries

    def test_empty(self):
        assert decode_directory(empty_directory_data()) == {}
        assert decode_directory(b"") == {}


class TestBindings:
    def test_bind_and_lookup(self, bed, directory):
        config = triple_config(name="app-data")

        def flow():
            yield from directory.bind(config)
            found = yield from directory.lookup("app-data")
            return found

        assert bed.run(flow()) == config

    def test_lookup_unknown_raises(self, bed, directory):
        def flow():
            try:
                yield from directory.lookup("ghost")
            except DirectoryError:
                return "missing"

        assert bed.run(flow()) == "missing"

    def test_bind_no_replace_rejects_duplicate(self, bed, directory):
        config = triple_config(name="once")

        def flow():
            yield from directory.bind(config)
            try:
                yield from directory.bind(config, replace=False)
                return "rebound"
            except DirectoryError:
                return "refused"

        assert bed.run(flow()) == "refused"

    def test_bind_refuses_configuration_regression(self, bed, directory):
        newer = triple_config(name="svc").evolve(read_quorum=1,
                                                 write_quorum=3)
        older = triple_config(name="svc")

        def flow():
            yield from directory.bind(newer)
            try:
                yield from directory.bind(older)
                return "regressed"
            except DirectoryError:
                return "refused"

        assert bed.run(flow()) == "refused"

    def test_unbind(self, bed, directory):
        config = triple_config(name="temp")

        def flow():
            yield from directory.bind(config)
            yield from directory.unbind("temp")
            names = yield from directory.list_suites()
            return names

        assert bed.run(flow()) == []

    def test_unbind_unknown_raises(self, bed, directory):
        def flow():
            try:
                yield from directory.unbind("ghost")
            except DirectoryError:
                return "missing"

        assert bed.run(flow()) == "missing"

    def test_list_suites_sorted(self, bed, directory):
        def flow():
            for name in ("zeta", "alpha"):
                yield from directory.bind(triple_config(name=name))
            return (yield from directory.list_suites())

        assert bed.run(flow()) == ["alpha", "zeta"]


class TestOpenSuite:
    def test_open_returns_working_handle(self, bed, directory):
        config = triple_config(name="app")
        app_suite = bed.install(config, b"payload")

        def flow():
            yield from directory.bind(config)
            handle = yield from directory.open_suite("app")
            result = yield from handle.read()
            return result.data

        assert bed.run(flow()) == b"payload"

    def test_stale_directory_entry_still_works(self, bed, directory):
        """A client bootstrapping from a pre-reconfiguration entry
        reaches the suite and adopts the newer configuration."""
        config = triple_config(name="app")
        app_suite = bed.install(config, b"payload")

        def flow():
            yield from directory.bind(config)
            # Reconfigure the suite *without* updating the directory.
            new_config = triple_config(name="app", r=1, w=3)
            yield from change_configuration(app_suite, new_config)
            handle = yield from directory.open_suite("app")
            result = yield from handle.read()
            return result.data, handle.config.config_version

        data, adopted_version = bed.run(flow())
        assert data == b"payload"
        assert adopted_version == 2

    def test_directory_survives_server_crash(self, bed, directory):
        config = triple_config(name="app")

        def flow():
            yield from directory.bind(config)
            bed.crash("s2")
            found = yield from directory.lookup("app")
            return found.suite_name

        assert bed.run(flow()) == "app"


class TestConcurrentBinds:
    def test_two_clients_bind_different_names(self, bed, directory):
        bed.add_client("other")
        dir_two = SuiteDirectory(
            bed.suite(directory.suite.config, client="other"))

        def race():
            first = bed.sim.spawn(
                directory.bind(triple_config(name="from-main")))
            second = bed.sim.spawn(
                dir_two.bind(triple_config(name="from-other")))
            yield bed.sim.all_of([first, second])
            return (yield from directory.list_suites())

        assert bed.run(race()) == ["from-main", "from-other"]


class TestCorruptPages:
    """Damaged directory pages fail at directory level (satellite)."""

    def test_truncated_json_names_suite_and_offset(self):
        page = encode_directory({"db": triple_config().to_json()})[:-9]
        with pytest.raises(DirectoryError) as excinfo:
            decode_directory(page, "__directory__")
        message = str(excinfo.value)
        assert "'__directory__'" in message
        assert "offset" in message
        assert f"page is {len(page)} bytes" in message

    def test_garbage_json_reports_offset(self):
        with pytest.raises(DirectoryError) as excinfo:
            decode_directory(b'{"a": nope}', "dirsuite")
        assert "offset 6" in str(excinfo.value)

    def test_invalid_utf8_reports_offset(self):
        with pytest.raises(DirectoryError) as excinfo:
            decode_directory(b'{"a"\xff: 1}', "dirsuite")
        assert "invalid UTF-8 at offset 4" in str(excinfo.value)

    def test_without_suite_name_still_directory_error(self):
        with pytest.raises(DirectoryError) as excinfo:
            decode_directory(b"{{{{")
        assert "directory page" in str(excinfo.value)

    def test_error_chains_to_json_decoder(self):
        try:
            decode_directory(b"[1,", "d")
        except DirectoryError as exc:
            import json as json_module
            assert isinstance(exc.__cause__, json_module.JSONDecodeError)
        else:
            raise AssertionError("corrupt page decoded")

    def test_lookup_surfaces_directory_error_on_corrupt_page(self, bed,
                                                             directory):
        def flow():
            yield from directory.suite.write(b'{"broken":')
            try:
                yield from directory.lookup("anything")
            except DirectoryError as exc:
                return str(exc)

        message = bed.run(flow())
        assert "'__directory__'" in message
        assert "offset" in message


class TestStalenessRepair:
    """End-to-end staleness repair across a reconfiguration (satellite)."""

    def test_stale_entry_repairs_via_stamp_check_on_first_contact(
            self, bed, directory):
        config = triple_config(name="app")
        app_suite = bed.install(config, b"payload")

        def flow():
            yield from directory.bind(config)
            new_config = triple_config(name="app", r=1, w=3)
            yield from change_configuration(app_suite, new_config)
            # The directory still holds the v1 entry; a client
            # bootstrapping from it must repair on first contact.
            handle = yield from directory.open_suite("app")
            bootstrapped = handle.config.config_version
            result = yield from handle.read()
            return bootstrapped, result.config_refreshes, \
                handle.config.config_version, result.data

        bootstrapped, refreshes, adopted, data = bed.run(flow())
        assert bootstrapped == 1
        assert refreshes > 0          # the stamp check actually fired
        assert adopted == 2
        assert data == b"payload"

    def test_rebind_serves_new_clients_without_repair(self, bed,
                                                      directory):
        config = triple_config(name="app")
        app_suite = bed.install(config, b"payload")

        def flow():
            yield from directory.bind(config)
            installed = yield from change_configuration(
                app_suite, triple_config(name="app", r=1, w=3))
            # Re-bind after the reconfiguration: brand-new clients
            # bootstrap straight to v2, no stamp repair needed.
            yield from directory.bind(installed)
            handle = yield from directory.open_suite("app")
            bootstrapped = handle.config.config_version
            result = yield from handle.read()
            return bootstrapped, result.config_refreshes

        bootstrapped, refreshes = bed.run(flow())
        assert bootstrapped == 2
        assert refreshes == 0

    def test_write_through_stale_entry_lands_on_new_configuration(
            self, bed, directory):
        config = triple_config(name="app")
        app_suite = bed.install(config, b"payload")

        def flow():
            yield from directory.bind(config)
            yield from change_configuration(
                app_suite, triple_config(name="app", r=1, w=3))
            handle = yield from directory.open_suite("app")
            yield from handle.write(b"after-repair")
            check = yield from app_suite.read()
            return handle.config.config_version, check.data

        version, data = bed.run(flow())
        assert version == 2
        assert data == b"after-repair"
