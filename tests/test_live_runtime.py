"""Live runtime: kernel semantics, cluster operations, persistence."""

import asyncio

import pytest

from repro.core import make_configuration
from repro.errors import RpcTimeout
from repro.live import FilePageStore, LiveKernel, LoopbackCluster
from repro.live.server import make_stable_store
from repro.live.transport import TransportNode
from repro.rpc.messages import Request


def make_config(name="live", servers=("s1", "s2", "s3"), r=2, w=2):
    return make_configuration(
        name, [(server, 1) for server in servers], r, w,
        latency_hints={server: 10.0 * (index + 1)
                       for index, server in enumerate(servers)})


class TestLiveKernel:
    def test_now_tracks_wall_clock_in_ms(self):
        async def scenario():
            kernel = LiveKernel()
            before = kernel.now
            await asyncio.sleep(0.05)
            return kernel.now - before

        elapsed = asyncio.run(scenario())
        assert 40.0 <= elapsed < 5_000.0

    def test_schedule_maps_to_event_loop(self):
        async def scenario():
            kernel = LiveKernel()
            fired = []
            done = asyncio.get_event_loop().create_future()
            kernel.schedule(0.0, fired.append, "now")
            kernel.schedule(20.0, lambda: (fired.append("later"),
                                           done.set_result(None)))
            await done
            return fired

        assert asyncio.run(scenario()) == ["now", "later"]

    def test_sim_pumping_api_forbidden(self):
        async def scenario():
            kernel = LiveKernel()
            for method in (kernel.step, kernel.run):
                with pytest.raises(RuntimeError):
                    method()
            with pytest.raises(RuntimeError):
                kernel.run_until(None)

        asyncio.run(scenario())

    def test_processes_run_on_the_loop(self):
        async def scenario():
            kernel = LiveKernel()

            def process():
                yield kernel.timeout(10.0)
                return "done"

            return await kernel.wrap_awaitable(kernel.spawn(process()))

        assert asyncio.run(scenario()) == "done"


class TestLoopbackCluster:
    def test_quorum_read_write_over_tcp(self):
        async def scenario():
            async with LoopbackCluster(["s1", "s2", "s3"]) as cluster:
                suite = await cluster.install(make_config(), b"v1")
                read = await cluster.read(suite)
                assert (read.data, read.version) == (b"v1", 1)

                write = await cluster.write(suite, b"v2")
                assert write.version == 2
                assert len(write.quorum) == 2

                read = await cluster.read(suite)
                assert (read.data, read.version) == (b"v2", 2)

        asyncio.run(scenario())

    def test_read_and_write_survive_one_server_down(self):
        async def scenario():
            async with LoopbackCluster(["s1", "s2", "s3"]) as cluster:
                suite = await cluster.install(make_config(), b"v1")
                await cluster.stop_server("s1")

                read = await cluster.read(suite)
                assert (read.data, read.version) == (b"v1", 1)
                assert "rep-s1" not in read.quorum

                write = await cluster.write(suite, b"v2")
                assert sorted(write.quorum) == ["rep-s2", "rep-s3"]

        asyncio.run(scenario())

    def test_restarted_server_catches_up_via_refresh(self):
        async def scenario():
            async with LoopbackCluster(["s1", "s2", "s3"]) as cluster:
                config = make_config()
                suite = await cluster.install(config, b"v1")
                await cluster.stop_server("s1")
                write = await cluster.write(suite, b"v2")
                await cluster.restart_server("s1")

                cluster.client.refresher.schedule(suite, ["rep-s1"],
                                                 write.version)
                loop = asyncio.get_event_loop()
                deadline = loop.time() + 10.0
                fs = cluster.servers["s1"].server.fs
                while loop.time() < deadline:
                    if fs.stat(config.file_name).version == write.version:
                        return True
                    await asyncio.sleep(0.02)
                return False

        assert asyncio.run(scenario())

    def test_at_most_once_across_retransmission(self):
        # A duplicated request frame (same source + call id) must not
        # re-execute the handler: the live endpoint IS the sim endpoint,
        # so its dedup carries over to real sockets.
        async def scenario():
            async with LoopbackCluster(["s1", "s2", "s3"]) as cluster:
                server = cluster.servers["s1"]
                replies = []
                rogue = TransportNode("rogue", replies.append)
                host, port = server.address
                rogue.register_peer("s1", host, port)

                request = Request(call_id=900, source="rogue",
                                  method="txn.abort",
                                  args={"txn": "rogue#1"})

                async def await_replies(count):
                    deadline = asyncio.get_event_loop().time() + 5.0
                    while (len(replies) < count
                           and asyncio.get_event_loop().time() < deadline):
                        await asyncio.sleep(0.01)

                rogue.send("s1", request)
                await await_replies(1)
                rogue.send("s1", request)  # retransmission, same call id
                await await_replies(2)
                await rogue.close()

                assert len(replies) == 2  # second answered from cache
                assert replies[0].call_id == replies[1].call_id == 900
                assert server.endpoint.duplicates_suppressed >= 1
                served = server.endpoint.requests_served
                return served

        # Exactly one execution for the two deliveries.
        assert asyncio.run(scenario()) == 1

    def test_client_call_times_out_on_stopped_server(self):
        async def scenario():
            async with LoopbackCluster(["s1", "s2", "s3"]) as cluster:
                await cluster.stop_server("s1")
                event = cluster.client.endpoint.call(
                    "s1", "txn.stat", timeout=100.0, name="f",
                    mode="shared")
                with pytest.raises(RpcTimeout):
                    await cluster.client.kernel.wrap_awaitable(event)
                assert cluster.client.endpoint._pending == {}

        asyncio.run(scenario())


class TestPersistence:
    def test_file_page_store_reloads(self, tmp_path):
        path = str(tmp_path / "pages.bin")
        store = FilePageStore(path, num_pages=8, page_size=128)
        store.write(0, b"alpha")
        store.write(5, b"\x00\xff" * 30)
        store.close()

        reloaded = FilePageStore(path, num_pages=8, page_size=128)
        assert reloaded.read(0) == b"alpha"
        assert reloaded.read(5) == b"\x00\xff" * 30
        assert reloaded.read(3) == b""  # never written stays blank
        reloaded.close()

    def test_make_stable_store_reports_freshness(self, tmp_path):
        directory = str(tmp_path / "rep")
        stable, fresh = make_stable_store(directory, num_pages=8,
                                          page_size=128)
        assert fresh
        stable.write(0, b"payload")
        for careful in (stable.primary, stable.shadow):
            careful.pages.close()

        stable2, fresh2 = make_stable_store(directory, num_pages=8,
                                            page_size=128)
        assert not fresh2
        assert stable2.read(0) == b"payload"
        for careful in (stable2.primary, stable2.shadow):
            careful.pages.close()

    def test_cluster_state_survives_restarting_the_daemons(self, tmp_path):
        config = make_config("durable")
        data_root = str(tmp_path)

        async def first_life():
            async with LoopbackCluster(["s1", "s2", "s3"],
                                       data_root=data_root,
                                       num_pages=256,
                                       page_size=256) as cluster:
                suite = await cluster.install(config, b"v1")
                write = await cluster.write(suite, b"durable bytes")
                return write.version

        async def second_life():
            # Fresh daemons over the same directories: they mount the
            # existing stable storage instead of formatting.
            async with LoopbackCluster(["s1", "s2", "s3"],
                                       data_root=data_root,
                                       num_pages=256,
                                       page_size=256) as cluster:
                suite = cluster.suite(config)
                read = await cluster.read(suite)
                return read.data, read.version

        version = asyncio.run(first_life())
        data, read_version = asyncio.run(second_life())
        assert data == b"durable bytes"
        assert read_version == version

    def test_live_demo_cli_runs(self, capsys):
        from repro.cli import main

        assert main(["live-demo"]) == 0
        out = capsys.readouterr().out
        assert "read b'hello, 1979 (live)' at version 1" in out
        assert "with s1 stopped" in out
        assert "versions: [3, 3, 3]" in out
