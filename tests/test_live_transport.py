"""Live transport: framing, datagram semantics, reply routing."""

import asyncio

import pytest

from repro.live.transport import (FrameError, MAX_FRAME_BYTES, TransportNode,
                                  encode_frame, jsonify, message_from_wire,
                                  message_to_wire, read_frame, unjsonify)
from repro.rpc import Reply, Request


class TestJson:
    def test_bytes_round_trip(self):
        value = {"data": b"\x00\xffbinary", "nested": [b"a", {"b": b"c"}]}
        assert unjsonify(jsonify(value)) == value

    def test_tuples_become_lists(self):
        assert jsonify((1, 2, (3,))) == [1, 2, [3]]

    def test_plain_values_untouched(self):
        for value in (None, True, 3, 2.5, "text", [1, "x"]):
            assert unjsonify(jsonify(value)) == value

    def test_request_round_trip(self):
        request = Request(call_id=7, source="client", method="txn.read",
                          args={"name": "f", "payload": b"\x01\x02"})
        assert message_from_wire(message_to_wire(request)) == request

    def test_reply_round_trip(self):
        for reply in (Reply(call_id=3, ok=True, value=(b"data", 4)),
                      Reply(call_id=4, ok=False, value=None,
                            error_type="RpcTimeout", error_detail="x")):
            decoded = message_from_wire(message_to_wire(reply))
            assert decoded.call_id == reply.call_id
            assert decoded.ok == reply.ok

    def test_unknown_kind_rejected(self):
        with pytest.raises(FrameError):
            message_from_wire({"kind": "mystery"})


def _read_frames(raw: bytes, count: int):
    """Feed ``raw`` into a fresh StreamReader and read ``count`` frames."""
    async def drain():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return [await read_frame(reader) for _ in range(count)]

    return asyncio.run(drain())


class TestFraming:
    def test_frame_round_trip(self):
        request = Request(call_id=1, source="a", method="m",
                          args={"blob": b"\x00" * 100})
        assert _read_frames(encode_frame(request), 1) == [request]

    def test_several_frames_in_sequence(self):
        messages = [Request(call_id=i, source="a", method="m", args={})
                    for i in range(3)]
        raw = b"".join(encode_frame(message) for message in messages)
        assert _read_frames(raw, 3) == messages

    def test_oversized_length_prefix_rejected(self):
        with pytest.raises(FrameError):
            _read_frames((MAX_FRAME_BYTES + 1).to_bytes(4, "big"), 1)

    def test_malformed_body_rejected(self):
        body = b"not json"
        with pytest.raises(FrameError):
            _read_frames(len(body).to_bytes(4, "big") + body, 1)


class TestTransportNode:
    def test_request_and_learned_reply_route(self):
        # The server never dials out: it learns the client's reply route
        # from the source field of the inbound request.
        async def scenario():
            server_inbox, client_inbox = [], []
            server = TransportNode("server", server_inbox.append)
            client = TransportNode("client", client_inbox.append)
            host, port = await server.listen()
            client.register_peer("server", host, port)

            client.send("server", Request(call_id=1, source="client",
                                          method="ping", args={}))
            for _ in range(200):
                if server_inbox:
                    break
                await asyncio.sleep(0.005)
            assert server_inbox and server_inbox[0].method == "ping"

            server.send("client", Reply(call_id=1, ok=True, value="pong"))
            for _ in range(200):
                if client_inbox:
                    break
                await asyncio.sleep(0.005)
            assert client_inbox and client_inbox[0].value == "pong"

            await client.close()
            await server.close()

        asyncio.run(scenario())

    def test_unknown_destination_dropped_silently(self):
        async def scenario():
            node = TransportNode("n", lambda message: None)
            node.send("nowhere", Request(call_id=1, source="n",
                                         method="m", args={}))
            assert node.frames_dropped == 1
            await node.close()

        asyncio.run(scenario())

    def test_send_to_dead_address_is_lost_not_raised(self):
        async def scenario():
            inbox = []
            server = TransportNode("server", inbox.append)
            host, port = await server.listen()
            await server.stop_listening()

            client = TransportNode("client", lambda message: None)
            client.register_peer("server", host, port)
            client.send("server", Request(call_id=1, source="client",
                                          method="m", args={}))
            await asyncio.sleep(0.05)  # dial fails in the background
            assert inbox == []
            await client.close()
            await server.close()

        asyncio.run(scenario())

    def test_listener_reopens_on_same_port(self):
        async def scenario():
            inbox = []
            server = TransportNode("server", inbox.append)
            host, port = await server.listen()
            await server.stop_listening()
            assert server.address == (host, port)
            again = await server.listen(host, port)
            assert again == (host, port)

            client = TransportNode("client", lambda message: None)
            client.register_peer("server", host, port)
            client.send("server", Request(call_id=1, source="client",
                                          method="m", args={}))
            for _ in range(200):
                if inbox:
                    break
                await asyncio.sleep(0.005)
            assert len(inbox) == 1
            await client.close()
            await server.close()

        asyncio.run(scenario())


class TestTornAndCoalescedFrames:
    def test_frame_torn_across_segments(self):
        # TCP may deliver a frame in arbitrary chunks; the parser must
        # reassemble across data_received calls.
        async def scenario():
            inbox = []
            server = TransportNode("server", inbox.append)
            host, port = await server.listen()
            reader, writer = await asyncio.open_connection(host, port)
            frame = encode_frame(Request(call_id=1, source="raw",
                                         method="m",
                                         args={"blob": b"\x07" * 300}))
            for i in range(0, len(frame), 7):  # 7-byte shreds
                writer.write(frame[i:i + 7])
                await writer.drain()
                await asyncio.sleep(0)
            for _ in range(200):
                if inbox:
                    break
                await asyncio.sleep(0.005)
            assert len(inbox) == 1 and inbox[0].call_id == 1
            writer.close()
            await server.close()

        asyncio.run(scenario())

    def test_multiple_frames_in_one_segment(self):
        async def scenario():
            inbox = []
            server = TransportNode("server", inbox.append)
            host, port = await server.listen()
            reader, writer = await asyncio.open_connection(host, port)
            frames = b"".join(
                encode_frame(Request(call_id=i, source="raw", method="m",
                                     args={}))
                for i in range(5))
            writer.write(frames)  # one write, five frames
            for _ in range(200):
                if len(inbox) == 5:
                    break
                await asyncio.sleep(0.005)
            assert [m.call_id for m in inbox] == [0, 1, 2, 3, 4]
            writer.close()
            await server.close()

        asyncio.run(scenario())


class TestOversizeFrames:
    def test_oversize_outbound_dropped_not_raised(self):
        # Satellite fix: a message too large for any frame must behave
        # like a dropped datagram — counted and logged, never raised
        # into protocol code.
        async def scenario():
            inbox = []
            server = TransportNode("server", inbox.append)
            host, port = await server.listen()
            client = TransportNode("client", lambda message: None)
            client.register_peer("server", host, port)
            client.send("server", Request(
                call_id=1, source="client", method="m",
                args={"blob": b"\x00" * (MAX_FRAME_BYTES + 1)}))
            client.send("server", Request(call_id=2, source="client",
                                          method="m", args={}))
            for _ in range(200):
                if inbox:
                    break
                await asyncio.sleep(0.005)
            # The oversize message vanished; the next one arrived.
            assert [m.call_id for m in inbox] == [2]
            assert client.frames_dropped == 1
            await client.close()
            await server.close()

        asyncio.run(scenario())

    def test_oversize_inbound_drops_connection_only(self):
        async def scenario():
            inbox = []
            server = TransportNode("server", inbox.append)
            host, port = await server.listen()
            reader, writer = await asyncio.open_connection(host, port)
            writer.write((MAX_FRAME_BYTES + 1).to_bytes(4, "big"))
            await writer.drain()
            await asyncio.sleep(0.05)
            # The poisoned connection is gone, the listener survives.
            assert inbox == []
            assert server.listening
            reader2, writer2 = await asyncio.open_connection(host, port)
            writer2.write(encode_frame(Request(call_id=9, source="raw",
                                               method="m", args={})))
            for _ in range(200):
                if inbox:
                    break
                await asyncio.sleep(0.005)
            assert [m.call_id for m in inbox] == [9]
            writer.close()
            writer2.close()
            await server.close()

        asyncio.run(scenario())


class TestConnectionLifecycle:
    def test_dial_failure_drops_and_counts_backlog(self):
        async def scenario():
            server = TransportNode("server", lambda message: None)
            host, port = await server.listen()
            await server.stop_listening()  # port now refuses connects

            client = TransportNode("client", lambda message: None)
            client.register_peer("server", host, port)
            for i in range(3):
                client.send("server", Request(call_id=i, source="client",
                                              method="m", args={}))
            await asyncio.sleep(0.05)  # dial fails in the background
            assert client.frames_dropped == 3
            assert "server" not in client._connections
            await client.close()
            await server.close()

        asyncio.run(scenario())

    def test_close_deregisters_connection(self):
        # Satellite fix: a deliberately closed connection must leave
        # the node's routing tables immediately, not leak until
        # stop_listening.
        async def scenario():
            inbox = []
            server = TransportNode("server", inbox.append)
            host, port = await server.listen()
            client = TransportNode("client", lambda message: None)
            client.register_peer("server", host, port)
            client.send("server", Request(call_id=1, source="client",
                                          method="m", args={}))
            for _ in range(200):
                if inbox:
                    break
                await asyncio.sleep(0.005)
            assert "client" in server._connections

            client._connections["server"].close()
            assert "server" not in client._connections
            # The server side learns of the severed stream via its own
            # connection_lost callback.
            for _ in range(200):
                if "client" not in server._connections:
                    break
                await asyncio.sleep(0.005)
            assert "client" not in server._connections
            assert not server._anonymous
            await client.close()
            await server.close()

        asyncio.run(scenario())


async def _request_reply(client, server_name, call_id, method="ping"):
    """Send one request and wait for its reply on ``client``."""
    client.send(server_name, Request(call_id=call_id, source=client.name,
                                     method=method, args={}))


class TestCodecNegotiation:
    def test_connection_upgrades_to_binary(self):
        async def scenario():
            replies = []

            def serve(node):
                def on_message(message):
                    if isinstance(message, Request):
                        node.send(message.source,
                                  Reply.success(message.call_id, "pong"))
                return on_message

            server = TransportNode("server", lambda m: None)
            server.on_message = serve(server)
            host, port = await server.listen()
            client = TransportNode("client", replies.append)
            client.register_peer("server", host, port)

            await _request_reply(client, "server", 1)
            for _ in range(200):
                if replies:
                    break
                await asyncio.sleep(0.005)
            # The JSON advert upgraded both directions.
            assert client._connections["server"].peer_binary
            for _ in range(200):
                if "client" in server._connections and \
                        server._connections["client"].peer_binary:
                    break
                await asyncio.sleep(0.005)
            assert server._connections["client"].peer_binary
            await client.close()
            await server.close()

        asyncio.run(scenario())

    def test_legacy_peer_stays_on_json(self):
        # A binary=False node emulates a peer from before the binary
        # codec: it never advertises, so the fleet stays on JSON frames
        # and everything keeps working.
        async def scenario():
            replies = []
            server = TransportNode("server", lambda m: None, binary=False)

            def on_message(message):
                if isinstance(message, Request):
                    server.send(message.source,
                                Reply.success(message.call_id, "pong"))
            server.on_message = on_message
            host, port = await server.listen()
            client = TransportNode("client", replies.append)
            client.register_peer("server", host, port)

            for call_id in range(3):
                await _request_reply(client, "server", call_id)
                for _ in range(200):
                    if len(replies) > call_id:
                        break
                    await asyncio.sleep(0.005)
            assert [r.call_id for r in replies] == [0, 1, 2]
            assert not client._connections["server"].peer_binary
            assert client.batches_sent == 0
            await client.close()
            await server.close()

        asyncio.run(scenario())


class TestBatchingAndPipelining:
    def test_one_pass_fanout_shares_a_frame(self):
        # Messages queued to one destination in one loop pass ride one
        # batch frame once the connection is binary.
        async def scenario():
            inbox = []
            server = TransportNode("server", inbox.append)
            host, port = await server.listen()
            client = TransportNode("client", lambda m: None)
            client.register_peer("server", host, port)
            # Prime the connection (JSON advert exchange needs a reply
            # to flow back; send one and let the server learn us).
            client.send("server", Request(call_id=0, source="client",
                                          method="m", args={}))
            for _ in range(200):
                if inbox:
                    break
                await asyncio.sleep(0.005)
            server.send("client", Reply.success(0, "ok"))
            for _ in range(200):
                if client._connections["server"].peer_binary:
                    break
                await asyncio.sleep(0.005)

            before = client.batches_sent
            for call_id in range(1, 5):  # one loop pass, four messages
                client.send("server", Request(call_id=call_id,
                                              source="client",
                                              method="m", args={}))
            for _ in range(200):
                if len(inbox) == 5:
                    break
                await asyncio.sleep(0.005)
            assert [m.call_id for m in inbox] == [0, 1, 2, 3, 4]
            assert client.batches_sent == before + 1
            assert client.messages_batched >= 4
            assert server.batches_received >= 1
            await client.close()
            await server.close()

        asyncio.run(scenario())

    def test_slow_reply_does_not_block_later_reply(self):
        # Pipelining: two requests on one connection; the first reply
        # is deliberately delayed, the second must not wait for it.
        async def scenario():
            loop = asyncio.get_event_loop()
            replies = []
            server = TransportNode("server", lambda m: None)

            def on_message(message):
                if not isinstance(message, Request):
                    return
                reply = Reply.success(message.call_id, message.method)
                if message.method == "slow":
                    loop.call_later(0.2, server.send, message.source,
                                    reply)
                else:
                    server.send(message.source, reply)
            server.on_message = on_message
            host, port = await server.listen()
            client = TransportNode("client", replies.append)
            client.register_peer("server", host, port)

            await _request_reply(client, "server", 1, method="slow")
            await _request_reply(client, "server", 2, method="fast")
            for _ in range(400):
                if len(replies) == 2:
                    break
                await asyncio.sleep(0.005)
            # The fast reply overtook the slow one: no head-of-line
            # blocking for independent calls on a shared connection.
            assert [r.value for r in replies] == ["fast", "slow"]
            await client.close()
            await server.close()

        asyncio.run(scenario())
