"""Live transport: framing, datagram semantics, reply routing."""

import asyncio

import pytest

from repro.live.transport import (FrameError, MAX_FRAME_BYTES, TransportNode,
                                  encode_frame, jsonify, message_from_wire,
                                  message_to_wire, read_frame, unjsonify)
from repro.rpc import Reply, Request


class TestJson:
    def test_bytes_round_trip(self):
        value = {"data": b"\x00\xffbinary", "nested": [b"a", {"b": b"c"}]}
        assert unjsonify(jsonify(value)) == value

    def test_tuples_become_lists(self):
        assert jsonify((1, 2, (3,))) == [1, 2, [3]]

    def test_plain_values_untouched(self):
        for value in (None, True, 3, 2.5, "text", [1, "x"]):
            assert unjsonify(jsonify(value)) == value

    def test_request_round_trip(self):
        request = Request(call_id=7, source="client", method="txn.read",
                          args={"name": "f", "payload": b"\x01\x02"})
        assert message_from_wire(message_to_wire(request)) == request

    def test_reply_round_trip(self):
        for reply in (Reply(call_id=3, ok=True, value=(b"data", 4)),
                      Reply(call_id=4, ok=False, value=None,
                            error_type="RpcTimeout", error_detail="x")):
            decoded = message_from_wire(message_to_wire(reply))
            assert decoded.call_id == reply.call_id
            assert decoded.ok == reply.ok

    def test_unknown_kind_rejected(self):
        with pytest.raises(FrameError):
            message_from_wire({"kind": "mystery"})


def _read_frames(raw: bytes, count: int):
    """Feed ``raw`` into a fresh StreamReader and read ``count`` frames."""
    async def drain():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return [await read_frame(reader) for _ in range(count)]

    return asyncio.run(drain())


class TestFraming:
    def test_frame_round_trip(self):
        request = Request(call_id=1, source="a", method="m",
                          args={"blob": b"\x00" * 100})
        assert _read_frames(encode_frame(request), 1) == [request]

    def test_several_frames_in_sequence(self):
        messages = [Request(call_id=i, source="a", method="m", args={})
                    for i in range(3)]
        raw = b"".join(encode_frame(message) for message in messages)
        assert _read_frames(raw, 3) == messages

    def test_oversized_length_prefix_rejected(self):
        with pytest.raises(FrameError):
            _read_frames((MAX_FRAME_BYTES + 1).to_bytes(4, "big"), 1)

    def test_malformed_body_rejected(self):
        body = b"not json"
        with pytest.raises(FrameError):
            _read_frames(len(body).to_bytes(4, "big") + body, 1)


class TestTransportNode:
    def test_request_and_learned_reply_route(self):
        # The server never dials out: it learns the client's reply route
        # from the source field of the inbound request.
        async def scenario():
            server_inbox, client_inbox = [], []
            server = TransportNode("server", server_inbox.append)
            client = TransportNode("client", client_inbox.append)
            host, port = await server.listen()
            client.register_peer("server", host, port)

            client.send("server", Request(call_id=1, source="client",
                                          method="ping", args={}))
            for _ in range(200):
                if server_inbox:
                    break
                await asyncio.sleep(0.005)
            assert server_inbox and server_inbox[0].method == "ping"

            server.send("client", Reply(call_id=1, ok=True, value="pong"))
            for _ in range(200):
                if client_inbox:
                    break
                await asyncio.sleep(0.005)
            assert client_inbox and client_inbox[0].value == "pong"

            await client.close()
            await server.close()

        asyncio.run(scenario())

    def test_unknown_destination_dropped_silently(self):
        async def scenario():
            node = TransportNode("n", lambda message: None)
            node.send("nowhere", Request(call_id=1, source="n",
                                         method="m", args={}))
            assert node.frames_dropped == 1
            await node.close()

        asyncio.run(scenario())

    def test_send_to_dead_address_is_lost_not_raised(self):
        async def scenario():
            inbox = []
            server = TransportNode("server", inbox.append)
            host, port = await server.listen()
            await server.stop_listening()

            client = TransportNode("client", lambda message: None)
            client.register_peer("server", host, port)
            client.send("server", Request(call_id=1, source="client",
                                          method="m", args={}))
            await asyncio.sleep(0.05)  # dial fails in the background
            assert inbox == []
            await client.close()
            await server.close()

        asyncio.run(scenario())

    def test_listener_reopens_on_same_port(self):
        async def scenario():
            inbox = []
            server = TransportNode("server", inbox.append)
            host, port = await server.listen()
            await server.stop_listening()
            assert server.address == (host, port)
            again = await server.listen(host, port)
            assert again == (host, port)

            client = TransportNode("client", lambda message: None)
            client.register_peer("server", host, port)
            client.send("server", Request(call_id=1, source="client",
                                          method="m", args={}))
            for _ in range(200):
                if inbox:
                    break
                await asyncio.sleep(0.005)
            assert len(inbox) == 1
            await client.close()
            await server.close()

        asyncio.run(scenario())
