"""Participant handlers, 2PC votes, recovery, and the idle sweeper."""

import pytest

from repro.errors import (NoSuchFileError, TransactionAborted)
from repro.testbed import Testbed
from repro.txn import VOTE_PREPARED, VOTE_READ_ONLY
from repro.txn.log import record_file_name


@pytest.fixture
def bed():
    return Testbed(servers=["s1", "s2"], seed=3, idle_abort_after=1_000.0)


def manager_of(bed):
    return bed.clients["client"].manager


class TestDataOperations:
    def test_stage_and_commit_visible(self, bed):
        manager = manager_of(bed)

        def flow():
            txn = manager.begin()
            yield txn.call("s1", "txn.stage_write", name="f", data=b"v1",
                           version=1, create=True)
            yield from txn.commit()
            txn2 = manager.begin()
            result = yield txn2.call("s1", "txn.read", name="f")
            yield from txn2.commit()
            return result

        assert tuple(bed.run(flow())) == (b"v1", 1)

    def test_read_your_own_writes(self, bed):
        manager = manager_of(bed)

        def flow():
            txn = manager.begin()
            yield txn.call("s1", "txn.stage_write", name="f", data=b"mine",
                           version=9, create=True)
            data, version = yield txn.call("s1", "txn.read", name="f")
            stat = yield txn.call("s1", "txn.stat", name="f")
            yield from txn.abort()
            return data, version, stat["version"]

        assert tuple(bed.run(flow())) == (b"mine", 9, 9)

    def test_aborted_write_invisible(self, bed):
        manager = manager_of(bed)

        def flow():
            txn = manager.begin()
            yield txn.call("s1", "txn.stage_write", name="f", data=b"no",
                           version=1, create=True)
            yield from txn.abort()

        bed.run(flow())
        assert not bed.servers["s1"].server.fs.exists("f")

    def test_stage_delete(self, bed):
        manager = manager_of(bed)

        def flow():
            txn = manager.begin()
            yield txn.call("s1", "txn.stage_write", name="f", data=b"x",
                           version=1, create=True)
            yield from txn.commit()
            txn2 = manager.begin()
            yield txn2.call("s1", "txn.stage_delete", name="f")
            yield from txn2.commit()

        bed.run(flow())
        assert not bed.servers["s1"].server.fs.exists("f")

    def test_read_deleted_in_txn_fails(self, bed):
        manager = manager_of(bed)

        def flow():
            txn = manager.begin()
            yield txn.call("s1", "txn.stage_write", name="f", data=b"x",
                           version=1, create=True)
            yield from txn.commit()
            txn2 = manager.begin()
            yield txn2.call("s1", "txn.stage_delete", name="f")
            try:
                yield txn2.call("s1", "txn.read", name="f")
                outcome = "read ok"
            except NoSuchFileError:
                outcome = "missing"
            yield from txn2.abort()
            return outcome

        assert bed.run(flow()) == "missing"

    def test_only_if_newer_skips_stale_write(self, bed):
        manager = manager_of(bed)

        def flow():
            txn = manager.begin()
            yield txn.call("s1", "txn.stage_write", name="f", data=b"v5",
                           version=5, create=True)
            yield from txn.commit()
            txn2 = manager.begin()
            outcome = yield txn2.call(
                "s1", "txn.stage_write", name="f", data=b"v3", version=3,
                only_if_newer=True)
            yield from txn2.commit()
            return outcome

        assert bed.run(flow()) == "skipped"
        assert bed.servers["s1"].server.fs.read_file_sync("f") == (b"v5", 5)

    def test_stat_detail_returns_properties(self, bed):
        manager = manager_of(bed)

        def flow():
            txn = manager.begin()
            yield txn.call("s1", "txn.stage_write", name="f", data=b"x",
                           version=1, create=True,
                           properties={"stamp": 4, "config": {"a": 1}})
            yield from txn.commit()
            txn2 = manager.begin()
            plain = yield txn2.call("s1", "txn.stat", name="f")
            detailed = yield txn2.call("s1", "txn.stat", name="f",
                                       detail=True)
            yield from txn2.commit()
            return plain, detailed

        plain, detailed = bed.run(flow())
        assert plain == {"version": 1, "stamp": 4}
        assert detailed["properties"]["config"] == {"a": 1}


class TestVotes:
    def test_read_only_vote(self, bed):
        manager = manager_of(bed)
        participant = bed.servers["s1"].participant

        def flow():
            txn = manager.begin()
            yield txn.call("s1", "txn.stage_write", name="f", data=b"x",
                           version=1, create=True)
            yield from txn.commit()
            txn2 = manager.begin()
            yield txn2.call("s1", "txn.read", name="f")
            vote = yield txn2.call("s1", "txn.prepare")
            return vote

        assert bed.run(flow()) == VOTE_READ_ONLY

    def test_prepare_vote_and_durable_record(self, bed):
        manager = manager_of(bed)

        def flow():
            txn = manager.begin()
            yield txn.call("s1", "txn.stage_write", name="f", data=b"x",
                           version=1, create=True)
            vote = yield txn.call("s1", "txn.prepare")
            return vote, str(txn.txn_id)

        vote, txn_text = bed.run(flow())
        assert vote == VOTE_PREPARED
        fs = bed.servers["s1"].server.fs
        assert any(name.startswith("__txn__/") for name in fs.list_files())

    def test_prepare_unknown_transaction_refused(self, bed):
        manager = manager_of(bed)

        def flow():
            txn = manager.begin()
            txn.participants.add("s1")  # pretend we talked to it
            txn.staged.add("s1")
            try:
                yield from txn.commit()
                return "committed"
            except TransactionAborted:
                return "aborted"

        assert bed.run(flow()) == "aborted"


class TestRecovery:
    def test_committed_record_replayed_after_crash(self, bed):
        manager = manager_of(bed)
        server = bed.servers["s1"].server
        participant = bed.servers["s1"].participant

        def prepare_and_mark(txn_label):
            txn = manager.begin()
            yield txn.call("s1", "txn.stage_write", name="f", data=b"redo",
                           version=2, create=True)
            yield txn.call("s1", "txn.prepare")
            return txn

        txn = bed.run(prepare_and_mark("t"))
        # Manually flip the record to committed, simulating a crash right
        # after the decision became durable but before apply finished.
        from repro.txn.log import TransactionRecord, COMMITTED
        record_name = record_file_name(txn.txn_id)
        blob, _ = server.fs.read_file_sync(record_name)
        record = TransactionRecord.decode(blob)
        record.state = COMMITTED
        server.fs.write_file_sync(record_name, record.encode(), version=1)

        bed.crash("s1")
        bed.restart("s1")
        assert server.fs.read_file_sync("f") == (b"redo", 2)
        assert not server.fs.exists(record_name)
        assert participant.in_doubt() == []

    def test_prepared_record_goes_in_doubt_and_blocks(self, bed):
        manager = manager_of(bed)
        participant = bed.servers["s1"].participant

        def prepare_only():
            txn = manager.begin()
            yield txn.call("s1", "txn.stage_write", name="f", data=b"x",
                           version=1, create=True)
            yield txn.call("s1", "txn.prepare")
            return txn

        txn = bed.run(prepare_only())
        bed.crash("s1")
        bed.restart("s1")
        assert participant.in_doubt() == [txn.txn_id]
        # The in-doubt transaction holds an exclusive lock on "f".
        from repro.txn import EXCLUSIVE
        assert participant.locks.holds(txn.txn_id, "f", EXCLUSIVE)

    def test_in_doubt_resolved_by_commit(self, bed):
        manager = manager_of(bed)
        participant = bed.servers["s1"].participant

        def prepare_only():
            txn = manager.begin()
            yield txn.call("s1", "txn.stage_write", name="f", data=b"late",
                           version=3, create=True)
            yield txn.call("s1", "txn.prepare")
            return txn

        txn = bed.run(prepare_only())
        bed.crash("s1")
        bed.restart("s1")

        def resolve():
            fresh = manager.begin()  # any txn handle can carry the call
            ack = yield manager.endpoint.call(
                "s1", "txn.commit", timeout=1_000.0, txn=str(txn.txn_id))
            return ack

        assert bed.run(resolve()) == "ack"
        assert participant.in_doubt() == []
        assert bed.servers["s1"].server.fs.read_file_sync("f") == (b"late", 3)

    def test_in_doubt_resolved_by_abort(self, bed):
        manager = manager_of(bed)
        participant = bed.servers["s1"].participant

        def prepare_only():
            txn = manager.begin()
            yield txn.call("s1", "txn.stage_write", name="g", data=b"x",
                           version=1, create=True)
            yield txn.call("s1", "txn.prepare")
            return txn

        txn = bed.run(prepare_only())
        bed.crash("s1")
        bed.restart("s1")

        def resolve():
            ack = yield manager.endpoint.call(
                "s1", "txn.abort", timeout=1_000.0, txn=str(txn.txn_id))
            return ack

        assert bed.run(resolve()) == "ack"
        assert participant.in_doubt() == []
        assert not bed.servers["s1"].server.fs.exists("g")


class TestIdleSweeper:
    def test_idle_unprepared_transaction_swept(self, bed):
        manager = manager_of(bed)
        participant = bed.servers["s1"].participant

        def start_and_abandon():
            txn = manager.begin()
            yield txn.call("s1", "txn.stage_write", name="f", data=b"x",
                           version=1, create=True)
            # ... client walks away without committing.

        bed.run(start_and_abandon())
        assert len(participant._active) == 1
        bed.settle(5_000.0)  # sweeper interval is idle_abort_after/2
        assert len(participant._active) == 0
        assert participant.idle_aborts == 1

    def test_prepared_transaction_never_swept(self, bed):
        manager = manager_of(bed)
        participant = bed.servers["s1"].participant

        def prepare_and_abandon():
            txn = manager.begin()
            yield txn.call("s1", "txn.stage_write", name="f", data=b"x",
                           version=1, create=True)
            yield txn.call("s1", "txn.prepare")

        bed.run(prepare_and_abandon())
        bed.settle(10_000.0)
        assert len(participant._active) == 1
        assert participant.idle_aborts == 0
