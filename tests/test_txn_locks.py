"""Lock manager: compatibility, queueing, upgrades, deadlock, timeouts."""

import pytest

from repro.errors import DeadlockError, LockTimeoutError
from repro.txn import EXCLUSIVE, SHARED, LockManager, TransactionId, compatible


def tid(n: int) -> TransactionId:
    return TransactionId(site="t", sequence=n)


@pytest.fixture
def locks(sim):
    return LockManager(sim, name="test")


class TestCompatibility:
    def test_shared_shared(self):
        assert compatible(SHARED, SHARED)

    def test_shared_exclusive(self):
        assert not compatible(SHARED, EXCLUSIVE)
        assert not compatible(EXCLUSIVE, SHARED)
        assert not compatible(EXCLUSIVE, EXCLUSIVE)


class TestGranting:
    def test_immediate_grant_on_free_resource(self, sim, locks):
        event = locks.acquire(tid(1), "r", SHARED)
        assert event.triggered
        assert locks.holds(tid(1), "r", SHARED)

    def test_shared_coexists(self, sim, locks):
        assert locks.acquire(tid(1), "r", SHARED).triggered
        assert locks.acquire(tid(2), "r", SHARED).triggered

    def test_exclusive_blocks_second(self, sim, locks):
        assert locks.acquire(tid(1), "r", EXCLUSIVE).triggered
        assert locks.acquire(tid(2), "r", EXCLUSIVE).pending

    def test_exclusive_blocks_shared(self, sim, locks):
        locks.acquire(tid(1), "r", EXCLUSIVE)
        assert locks.acquire(tid(2), "r", SHARED).pending

    def test_reacquire_same_mode_immediate(self, sim, locks):
        locks.acquire(tid(1), "r", SHARED)
        assert locks.acquire(tid(1), "r", SHARED).triggered

    def test_exclusive_covers_shared(self, sim, locks):
        locks.acquire(tid(1), "r", EXCLUSIVE)
        assert locks.acquire(tid(1), "r", SHARED).triggered
        assert locks.holds(tid(1), "r", SHARED)

    def test_unknown_mode_rejected(self, sim, locks):
        with pytest.raises(ValueError):
            locks.acquire(tid(1), "r", "Z")

    def test_different_resources_independent(self, sim, locks):
        assert locks.acquire(tid(1), "a", EXCLUSIVE).triggered
        assert locks.acquire(tid(2), "b", EXCLUSIVE).triggered


class TestReleaseAndQueue:
    def test_release_wakes_waiter(self, sim, locks):
        locks.acquire(tid(1), "r", EXCLUSIVE)
        waiter = locks.acquire(tid(2), "r", EXCLUSIVE)
        locks.release_all(tid(1))
        sim.run()
        assert waiter.triggered
        assert locks.holds(tid(2), "r", EXCLUSIVE)

    def test_fifo_order_among_exclusives(self, sim, locks):
        locks.acquire(tid(1), "r", EXCLUSIVE)
        second = locks.acquire(tid(2), "r", EXCLUSIVE)
        third = locks.acquire(tid(3), "r", EXCLUSIVE)
        locks.release_all(tid(1))
        assert second.triggered and third.pending
        locks.release_all(tid(2))
        assert third.triggered

    def test_shared_batch_granted_together(self, sim, locks):
        locks.acquire(tid(1), "r", EXCLUSIVE)
        readers = [locks.acquire(tid(n), "r", SHARED) for n in (2, 3, 4)]
        locks.release_all(tid(1))
        assert all(event.triggered for event in readers)

    def test_fresh_shared_does_not_overtake_queued_exclusive(self, sim,
                                                             locks):
        locks.acquire(tid(1), "r", SHARED)
        writer = locks.acquire(tid(2), "r", EXCLUSIVE)
        late_reader = locks.acquire(tid(3), "r", SHARED)
        assert writer.pending and late_reader.pending
        locks.release_all(tid(1))
        assert writer.triggered
        assert late_reader.pending
        locks.release_all(tid(2))
        assert late_reader.triggered

    def test_release_all_multiple_resources(self, sim, locks):
        for resource in ("a", "b", "c"):
            locks.acquire(tid(1), resource, EXCLUSIVE)
        locks.release_all(tid(1))
        for resource in ("a", "b", "c"):
            assert locks.acquire(tid(2), resource, EXCLUSIVE).triggered

    def test_release_of_queued_request_removes_it(self, sim, locks):
        locks.acquire(tid(1), "r", EXCLUSIVE)
        locks.acquire(tid(2), "r", EXCLUSIVE)
        locks.release_all(tid(2))  # give up while queued
        third = locks.acquire(tid(3), "r", EXCLUSIVE)
        locks.release_all(tid(1))
        assert third.triggered


class TestUpgrades:
    def test_upgrade_sole_holder_immediate(self, sim, locks):
        locks.acquire(tid(1), "r", SHARED)
        assert locks.acquire(tid(1), "r", EXCLUSIVE).triggered
        assert locks.holds(tid(1), "r", EXCLUSIVE)

    def test_upgrade_waits_for_other_readers(self, sim, locks):
        locks.acquire(tid(1), "r", SHARED)
        locks.acquire(tid(2), "r", SHARED)
        upgrade = locks.acquire(tid(1), "r", EXCLUSIVE)
        assert upgrade.pending
        locks.release_all(tid(2))
        assert upgrade.triggered

    def test_upgrade_jumps_queue(self, sim, locks):
        locks.acquire(tid(1), "r", SHARED)
        locks.acquire(tid(2), "r", SHARED)
        fresh_writer = locks.acquire(tid(3), "r", EXCLUSIVE)
        upgrade = locks.acquire(tid(1), "r", EXCLUSIVE)
        locks.release_all(tid(2))
        assert upgrade.triggered
        assert fresh_writer.pending

    def test_simultaneous_upgrades_deadlock_detected(self, sim, locks):
        locks.acquire(tid(1), "r", SHARED)
        locks.acquire(tid(2), "r", SHARED)
        first = locks.acquire(tid(1), "r", EXCLUSIVE)
        second = locks.acquire(tid(2), "r", EXCLUSIVE)
        assert first.pending
        assert second.failed
        assert isinstance(second.value, DeadlockError)
        assert locks.deadlocks_detected == 1


class TestDeadlockDetection:
    def test_two_resource_cycle(self, sim, locks):
        locks.acquire(tid(1), "a", EXCLUSIVE)
        locks.acquire(tid(2), "b", EXCLUSIVE)
        locks.acquire(tid(1), "b", EXCLUSIVE)  # 1 waits for 2
        request = locks.acquire(tid(2), "a", EXCLUSIVE)  # closes cycle
        assert request.failed
        assert isinstance(request.value, DeadlockError)

    def test_three_party_cycle(self, sim, locks):
        locks.acquire(tid(1), "a", EXCLUSIVE)
        locks.acquire(tid(2), "b", EXCLUSIVE)
        locks.acquire(tid(3), "c", EXCLUSIVE)
        locks.acquire(tid(1), "b", EXCLUSIVE)
        locks.acquire(tid(2), "c", EXCLUSIVE)
        request = locks.acquire(tid(3), "a", EXCLUSIVE)
        assert request.failed

    def test_chain_without_cycle_waits(self, sim, locks):
        locks.acquire(tid(1), "a", EXCLUSIVE)
        locks.acquire(tid(2), "b", EXCLUSIVE)
        request_one = locks.acquire(tid(2), "a", EXCLUSIVE)
        request_two = locks.acquire(tid(3), "b", EXCLUSIVE)
        assert request_one.pending and request_two.pending

    def test_reader_cycle_through_writer(self, sim, locks):
        locks.acquire(tid(1), "a", SHARED)
        locks.acquire(tid(2), "b", EXCLUSIVE)
        locks.acquire(tid(2), "a", EXCLUSIVE)  # 2 waits for 1's S
        request = locks.acquire(tid(1), "b", SHARED)  # 1 waits for 2
        assert request.failed


class TestTimeouts:
    def test_timeout_fails_waiter(self, sim, locks):
        locks.acquire(tid(1), "r", EXCLUSIVE)
        waiter = locks.acquire(tid(2), "r", EXCLUSIVE, timeout=10.0)
        sim.run()
        assert waiter.failed
        assert isinstance(waiter.value, LockTimeoutError)
        assert locks.lock_timeouts == 1

    def test_grant_before_timeout_wins(self, sim, locks):
        locks.acquire(tid(1), "r", EXCLUSIVE)
        waiter = locks.acquire(tid(2), "r", EXCLUSIVE, timeout=10.0)
        sim.schedule(5.0, locks.release_all, tid(1))
        sim.run()
        assert waiter.triggered

    def test_default_timeout_applies(self, sim):
        locks = LockManager(sim, default_timeout=7.0)
        locks.acquire(tid(1), "r", EXCLUSIVE)
        waiter = locks.acquire(tid(2), "r", EXCLUSIVE)
        sim.run()
        assert waiter.failed
        assert sim.now == 7.0

    def test_timed_out_waiter_does_not_block_queue(self, sim, locks):
        locks.acquire(tid(1), "r", EXCLUSIVE)
        locks.acquire(tid(2), "r", EXCLUSIVE, timeout=5.0)
        third = locks.acquire(tid(3), "r", EXCLUSIVE, timeout=100.0)
        sim.run(until=6.0)
        locks.release_all(tid(1))
        assert third.triggered


class TestClear:
    def test_clear_drops_everything(self, sim, locks):
        locks.acquire(tid(1), "r", EXCLUSIVE)
        waiter = locks.acquire(tid(2), "r", EXCLUSIVE)
        locks.clear()
        assert waiter.failed
        assert not locks.holds(tid(1), "r")
        assert locks.acquire(tid(3), "r", EXCLUSIVE).triggered
