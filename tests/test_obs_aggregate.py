"""Fleet-wide metrics aggregation: merge rules and keyed views."""

import pytest

from repro.obs.aggregate import (FleetView, MergedHistogram,
                                 load_obs_manifest, render_fleet_view,
                                 snapshot_registry, write_obs_manifest)
from repro.obs.prom import (BUCKET_LABELS, BUCKETS, bucket_counts,
                            parse_exposition, render_registry)
from repro.sim.metrics import Histogram, MetricsRegistry


class TestBucketExposition:
    def test_bucket_counts_are_cumulative(self):
        histogram = Histogram("h")
        for value in (0.5, 3.0, 3.0, 40.0, 9_999.0):
            histogram.observe(value)
        counts = bucket_counts(histogram)
        assert len(counts) == len(BUCKETS) + 1      # ladder + +Inf
        assert counts[0] == 1                       # <= 1 ms
        assert counts[2] == 3                       # <= 5 ms
        assert counts[-1] == 5                      # +Inf sees all
        assert counts == sorted(counts)

    def test_render_round_trips_through_parser(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("suite.quorum_wait[suite=a]")
        for value in (2.0, 30.0, 700.0):
            histogram.observe(value)
        samples = parse_exposition(render_registry(registry))
        buckets = {labels["le"]: value for name, labels, value in samples
                   if name == "repro_suite_quorum_wait_bucket"}
        assert set(buckets) == set(BUCKET_LABELS)
        assert buckets["+Inf"] == 3.0
        assert buckets["2"] == 1.0
        sums = [value for name, labels, value in samples
                if name == "repro_suite_quorum_wait_sum"]
        assert sums == [pytest.approx(732.0)]


class TestMergedHistogram:
    def test_quantile_upper_bounds(self):
        merged = MergedHistogram(
            {"1": 0.0, "10": 6.0, "100": 9.0, "+Inf": 10.0},
            total=500.0, count=10.0)
        assert merged.mean == 50.0
        assert merged.quantile(0.5) == 10.0
        assert merged.quantile(0.95) == float("inf")
        assert merged.quantile(0.0) == 1.0

    def test_empty_histogram(self):
        merged = MergedHistogram({}, 0.0, 0.0)
        assert merged.mean == 0.0
        assert merged.quantile(0.99) == 0.0
        with pytest.raises(ValueError):
            merged.quantile(1.5)


def two_source_view():
    view = FleetView()
    view.add_text("n1", "\n".join([
        'repro_ops_total{suite="a"} 10',
        'repro_suite_quorum_wait_bucket{le="10"} 4',
        'repro_suite_quorum_wait_bucket{le="+Inf"} 6',
        'repro_suite_quorum_wait_sum 90',
        'repro_suite_quorum_wait_count 6',
        'repro_suite_quorum_wait{quantile="0.5"} 9',
        'repro_suite_version_lag{suite="a",rep="r2"} 1',
        'repro_health_breaker_state{server="n2"} 1.0',
    ]))
    view.add_text("n2", "\n".join([
        'repro_ops_total{suite="a"} 5',
        'repro_suite_quorum_wait_bucket{le="10"} 1',
        'repro_suite_quorum_wait_bucket{le="+Inf"} 4',
        'repro_suite_quorum_wait_sum 210',
        'repro_suite_quorum_wait_count 4',
        'repro_suite_version_lag{suite="a",rep="r2"} 3',
        'repro_health_breaker_state{server="n2"} 0.5',
        'repro_quorum_blocking_wait_ms{suite="a",rep="r2"} 80',
        'repro_quorum_blocking_closed_total{suite="a",rep="r2"} 2',
    ]))
    return view


class TestFleetView:
    def test_counters_sum_and_quantiles_are_skipped(self):
        view = two_source_view()
        merged = view.merged_counters()
        assert merged[("repro_ops_total",
                       (("suite", "a"),))] == 15.0
        assert not any(name == "repro_suite_quorum_wait"
                       for name, _labels in merged)
        assert view.counter_total("repro_ops_total") == 15.0

    def test_histograms_merge_bucketwise(self):
        merged = two_source_view().histogram("repro_suite_quorum_wait")
        assert merged.buckets == {"10": 5.0, "+Inf": 10.0}
        assert merged.count == 10.0
        assert merged.mean == 30.0
        assert merged.quantile(0.5) == 10.0

    def test_gauges_stay_per_source_and_skyline_takes_max(self):
        view = two_source_view()
        series = view.gauge_series("repro_suite_version_lag")
        key = (("rep", "r2"), ("suite", "a"))
        assert series[key] == {"n1": 1.0, "n2": 3.0}
        assert view.version_lag_skyline()[("a", "r2")] == 3.0

    def test_breaker_states_decode_per_source(self):
        view = two_source_view()
        assert view.breaker_states()[("n1", "n2")] == "open"
        assert view.breaker_states()[("n2", "n2")] == "half-open"
        assert view.open_breakers() == [("n1", "n2", "open"),
                                        ("n2", "n2", "half-open")]

    def test_quorum_blocking_report(self):
        report = two_source_view().quorum_blocking()
        assert report.rep_blocked_ms() == {"r2": 80.0}
        assert report.rep_closes() == {"r2": 2}

    def test_errors_recorded_not_raised(self):
        view = two_source_view()
        view.add_error("n3", "ConnectionRefusedError: nope")
        rendered = render_fleet_view(view)
        assert "!! n3" in rendered
        assert "top quorum blockers" in rendered
        assert "version-lag skyline" in rendered
        assert "open circuit breakers" in rendered

    def test_snapshot_registry_uses_exposition_pipeline(self):
        registry = MetricsRegistry()
        registry.counter("ops[suite=a]").increment(4)
        view = snapshot_registry("sim", registry)
        assert view.counter_total("repro_ops_total") == 4.0


class TestManifest:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "obs.json")
        addresses = {"n1": ("127.0.0.1", 9001),
                     "n2": ("127.0.0.1", 9002)}
        write_obs_manifest(addresses, path)
        assert load_obs_manifest(path) == addresses

    def test_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[]")
        with pytest.raises((ValueError, KeyError, TypeError,
                            AttributeError)):
            load_obs_manifest(str(path))
