"""Every example script runs cleanly end to end."""

import pathlib
import runpy
import sys

import pytest

EXAMPLES = sorted(
    pathlib.Path(__file__).resolve().parent.parent.joinpath("examples")
    .glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES,
                         ids=[path.stem for path in EXAMPLES])
def test_example_runs(script, capsys):
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script.name} produced no output"


def test_all_examples_discovered():
    names = {path.stem for path in EXAMPLES}
    assert "quickstart" in names
    assert len(names) >= 7
