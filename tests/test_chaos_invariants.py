"""History invariant checker: each rule trips on the histories it should."""

from repro.chaos import (OpRecord, check_history, history_from_json,
                         history_to_json)


def read(index, version, tag=None, observed=None, ok=True):
    return OpRecord(index=index, kind="read", ok=ok, started=float(index),
                    finished=float(index) + 1.0, version=version, tag=tag,
                    observed=observed or {})


def write(index, version, tag=None, observed=None, ok=True):
    return OpRecord(index=index, kind="write", ok=ok,
                    started=float(index), finished=float(index) + 1.0,
                    version=version, tag=tag, observed=observed or {})


class TestCheckHistory:
    def test_clean_history_is_ok(self):
        history = [
            read(0, 1, tag="init"),
            write(1, 2, tag="a", observed={"rep-1": 1, "rep-2": 1}),
            read(2, 2, tag="a", observed={"rep-1": 2, "rep-3": 1}),
            write(3, 3, tag="b"),
            read(4, 3, tag="b"),
        ]
        report = check_history(history, initial_version=1,
                               initial_tag="init")
        assert report.ok
        assert report.committed_writes == 2
        assert report.successful_reads == 3
        assert report.final_version == 3

    def test_stale_read_is_flagged(self):
        history = [write(0, 2, tag="a"), read(1, 1, tag="init")]
        report = check_history(history)
        assert not report.ok
        assert report.violations[0].rule == "fresh-read"

    def test_wrong_payload_at_right_version_is_flagged(self):
        history = [write(0, 2, tag="a"), read(1, 2, tag="zzz")]
        report = check_history(history)
        assert [v.rule for v in report.violations] == ["fresh-read"]

    def test_duplicate_committed_version_is_flagged(self):
        history = [write(0, 2, tag="a"), write(1, 2, tag="b")]
        report = check_history(history)
        rules = {v.rule for v in report.violations}
        assert "unique-version" in rules and "monotonic-commit" in rules

    def test_version_going_backwards_is_flagged(self):
        history = [write(0, 5, tag="a"), write(1, 3, tag="b")]
        report = check_history(history)
        assert any(v.rule == "monotonic-commit"
                   for v in report.violations)

    def test_rep_version_regression_is_flagged_even_on_failed_ops(self):
        history = [
            read(0, 1, observed={"rep-1": 4}),
            read(1, None, ok=False, observed={"rep-1": 2}),
        ]
        report = check_history(history, initial_version=1)
        violations = [v for v in report.violations
                      if v.rule == "rep-monotonic"]
        assert len(violations) == 1 and violations[0].index == 1

    def test_failed_ops_are_counted_but_not_judged(self):
        history = [
            write(0, None, tag="lost", ok=False),
            read(1, 1, tag="init"),
        ]
        report = check_history(history, initial_version=1,
                               initial_tag="init")
        assert report.ok
        assert report.failed_ops == 1

    def test_initial_version_collision_is_flagged(self):
        # install_suite leaves version 1; a "committed" write claiming
        # version 1 again must trip unique-version.
        report = check_history([write(0, 1, tag="a")], initial_version=1)
        assert any(v.rule == "unique-version"
                   for v in report.violations)

    def test_summary_mentions_violations(self):
        report = check_history([write(0, 2), write(1, 2)])
        assert "VIOLATION" in report.summary()
        assert check_history([]).summary().startswith("OK")


class TestHistorySerialisation:
    def test_round_trip(self):
        history = [
            write(0, 2, tag="a", observed={"rep-1": 1}),
            read(1, 2, tag="a"),
            OpRecord(index=2, kind="read", ok=False, started=2.0,
                     finished=3.0, error="RpcTimeout", attempts=4),
        ]
        restored = history_from_json(history_to_json(history))
        assert restored == history
