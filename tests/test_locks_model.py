"""Model-based testing of the lock manager.

Hypothesis drives random sequences of acquire/release operations and a
reference model checks the safety invariants after every step:

* never two holders of an exclusive lock, never S and X coexisting;
* a grant only happens when compatible with all current holders;
* release always wakes eligible waiters (no lost wakeups);
* every request eventually resolves once all holders release
  (no stuck grants), unless it deadlocked or timed out.
"""

from hypothesis import given, settings, strategies as st

from repro.sim import Simulator
from repro.txn import EXCLUSIVE, SHARED, LockManager, TransactionId

RESOURCES = ["r0", "r1"]
TXNS = [TransactionId("m", n) for n in range(1, 5)]

# An operation: (kind, txn index, resource index, mode)
operations = st.lists(
    st.one_of(
        st.tuples(st.just("acquire"), st.integers(0, 3),
                  st.integers(0, 1), st.sampled_from([SHARED, EXCLUSIVE])),
        st.tuples(st.just("release"), st.integers(0, 3),
                  st.just(0), st.just(SHARED)),
    ),
    min_size=1, max_size=40)


def check_safety(locks: LockManager) -> None:
    for resource in RESOURCES:
        holders = locks.holders_of(resource)
        modes = list(holders.values())
        if EXCLUSIVE in modes:
            assert len(modes) == 1, \
                f"{resource}: X must be exclusive, saw {holders}"


class TestLockManagerModel:
    @given(operations)
    @settings(max_examples=120, deadline=None)
    def test_safety_invariants_hold(self, ops):
        sim = Simulator()
        locks = LockManager(sim, name="model")
        outstanding = []  # (txn, resource, event)
        for kind, txn_index, resource_index, mode in ops:
            txn = TXNS[txn_index]
            if kind == "acquire":
                resource = RESOURCES[resource_index]
                event = locks.acquire(txn, resource, mode)
                outstanding.append((txn, resource, event))
            else:
                locks.release_all(txn)
            sim.run()
            check_safety(locks)

        # Drain: release everything; every still-pending request must
        # then resolve (granted then released, or already failed).
        for txn in TXNS:
            locks.release_all(txn)
            sim.run()
            check_safety(locks)
        for txn, resource, event in outstanding:
            assert event.settled or not locks.holders_of(resource), \
                f"request {txn}/{resource} neither settled nor blocked"

    @given(operations)
    @settings(max_examples=60, deadline=None)
    def test_holders_only_ever_requested(self, ops):
        """A transaction can only hold a lock it requested on that
        resource, in a mode it asked for (or stronger via upgrade)."""
        sim = Simulator()
        locks = LockManager(sim, name="model")
        requested = {}  # (txn, resource) -> set of modes ever requested

        for kind, txn_index, resource_index, mode in ops:
            txn = TXNS[txn_index]
            if kind == "acquire":
                resource = RESOURCES[resource_index]
                locks.acquire(txn, resource, mode)
                requested.setdefault((txn, resource), set()).add(mode)
            else:
                locks.release_all(txn)
            sim.run()
            for resource in RESOURCES:
                for holder, held in locks.holders_of(resource).items():
                    modes = requested.get((holder, resource), set())
                    assert modes, \
                        f"{holder} holds {resource} without requesting"
                    if held == SHARED:
                        assert SHARED in modes
                    else:
                        assert EXCLUSIVE in modes

    @given(st.integers(2, 4))
    @settings(max_examples=20, deadline=None)
    def test_release_wakes_full_reader_batch(self, readers):
        sim = Simulator()
        locks = LockManager(sim, name="model")
        writer = TXNS[0]
        locks.acquire(writer, "r", EXCLUSIVE)
        events = [locks.acquire(TransactionId("reader", n), "r", SHARED)
                  for n in range(readers)]
        assert all(event.pending for event in events)
        locks.release_all(writer)
        sim.run()
        assert all(event.triggered for event in events)
        assert len(locks.holders_of("r")) == readers
