"""RNG streams, distributions, metrics, tracing, failure processes."""

import math

import pytest

from repro.sim import (Constant, Exponential, Histogram, Lognormal,
                       MarkovFailureProcess, MetricsRegistry, Network,
                       RandomStreams, Simulator, Tracer, Uniform,
                       as_distribution, bernoulli_outages)
from repro.sim.failures import FailureSchedule


class TestRandomStreams:
    def test_same_name_same_stream(self):
        streams = RandomStreams(seed=1)
        assert streams.stream("x") is streams.stream("x")

    def test_streams_reproducible_across_factories(self):
        a = RandomStreams(seed=9).stream("net")
        b = RandomStreams(seed=9).stream("net")
        assert [a.random() for _ in range(5)] == \
            [b.random() for _ in range(5)]

    def test_different_names_independent(self):
        streams = RandomStreams(seed=9)
        a = streams.stream("one")
        b = streams.stream("two")
        assert [a.random() for _ in range(5)] != \
            [b.random() for _ in range(5)]

    def test_new_stream_does_not_disturb_existing(self):
        streams = RandomStreams(seed=3)
        a = streams.stream("a")
        first = a.random()
        streams2 = RandomStreams(seed=3)
        a2 = streams2.stream("a")
        streams2.stream("b").random()  # extra stream created and used
        assert a2.random() == first

    def test_fork_independent(self):
        root = RandomStreams(seed=4)
        fork = root.fork("child")
        assert root.stream("x").random() != fork.stream("x").random()


class TestDistributions:
    def test_constant(self):
        dist = Constant(5.0)
        assert dist.mean == 5.0
        assert dist.sample(RandomStreams(0).stream("r")) == 5.0

    def test_constant_rejects_negative(self):
        with pytest.raises(ValueError):
            Constant(-1.0)

    def test_uniform_bounds_and_mean(self):
        dist = Uniform(2.0, 4.0)
        rng = RandomStreams(0).stream("u")
        samples = [dist.sample(rng) for _ in range(500)]
        assert all(2.0 <= s <= 4.0 for s in samples)
        assert dist.mean == 3.0
        assert abs(sum(samples) / len(samples) - 3.0) < 0.2

    def test_uniform_rejects_bad_range(self):
        with pytest.raises(ValueError):
            Uniform(5.0, 1.0)

    def test_exponential_mean(self):
        dist = Exponential(10.0)
        rng = RandomStreams(0).stream("e")
        samples = [dist.sample(rng) for _ in range(4000)]
        assert abs(sum(samples) / len(samples) - 10.0) < 1.0

    def test_lognormal_mean(self):
        dist = Lognormal(mean=20.0, sigma=0.5)
        rng = RandomStreams(0).stream("l")
        samples = [dist.sample(rng) for _ in range(4000)]
        assert abs(sum(samples) / len(samples) - 20.0) < 2.0

    def test_as_distribution_coerces_numbers(self):
        dist = as_distribution(3)
        assert isinstance(dist, Constant)
        assert dist.mean == 3.0

    def test_as_distribution_passthrough(self):
        dist = Exponential(1.0)
        assert as_distribution(dist) is dist

    def test_as_distribution_rejects_junk(self):
        with pytest.raises(TypeError):
            as_distribution("fast")


class TestMetrics:
    def test_counter(self):
        registry = MetricsRegistry()
        counter = registry.counter("ops")
        counter.increment()
        counter.increment(4)
        assert registry.counter("ops").value == 5

    def test_counter_rejects_negative(self):
        counter = MetricsRegistry().counter("c")
        with pytest.raises(ValueError):
            counter.increment(-1)

    def test_gauge_tracks_maximum(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(3.0)
        gauge.set(1.0)
        gauge.add(0.5)
        assert gauge.value == 1.5
        assert gauge.maximum == 3.0

    def test_gauge_maximum_of_negative_values(self):
        # Regression: a gauge that only ever holds negative values must
        # report the largest *observed* value, not a phantom 0.0 from
        # initialisation.
        gauge = MetricsRegistry().gauge("drift")
        assert gauge.maximum is None  # unset until the first set()
        gauge.set(-5.0)
        assert gauge.maximum == -5.0
        gauge.set(-2.0)
        assert gauge.maximum == -2.0
        gauge.set(-9.0)
        assert gauge.maximum == -2.0

    def test_histogram_statistics(self):
        histogram = Histogram("lat")
        for value in (1.0, 2.0, 3.0, 4.0):
            histogram.observe(value)
        assert histogram.mean == 2.5
        assert histogram.median == 2.5
        assert histogram.minimum == 1.0
        assert histogram.maximum == 4.0
        assert histogram.percentile(0) == 1.0
        assert histogram.percentile(100) == 4.0

    def test_histogram_percentile_interpolates(self):
        histogram = Histogram("lat")
        histogram.observe(0.0)
        histogram.observe(10.0)
        assert histogram.percentile(50) == 5.0

    def test_histogram_empty_safe(self):
        histogram = Histogram("lat")
        assert histogram.mean == 0.0
        assert histogram.percentile(99) == 0.0
        assert histogram.stddev == 0.0

    def test_histogram_invalid_percentile(self):
        with pytest.raises(ValueError):
            Histogram("x").percentile(150)
        Histogram("x").observe(1.0)

    def test_stddev(self):
        histogram = Histogram("x")
        for value in (2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0):
            histogram.observe(value)
        assert histogram.stddev == pytest.approx(math.sqrt(32 / 7))

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("a").increment()
        registry.histogram("h").observe(1.0)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"a": 1}
        assert snapshot["histograms"]["h"]["count"] == 1.0


class TestTracer:
    def test_disabled_records_nothing(self, sim):
        tracer = Tracer(sim, enabled=False)
        tracer.record("suite", "read", version=1)
        assert tracer.records == []

    def test_enabled_records_with_time(self, sim):
        tracer = Tracer(sim, enabled=True)
        sim.schedule(4.0, tracer.record, "suite", "read")
        sim.run()
        record = tracer.records[0]
        assert record.time == 4.0
        assert record.component == "suite"

    def test_filtering_and_count(self, sim):
        tracer = Tracer(sim, enabled=True)
        tracer.record("a", "x")
        tracer.record("a", "y")
        tracer.record("b", "x")
        assert tracer.count(component="a") == 2
        assert tracer.count(event="x") == 2
        assert tracer.count(component="b", event="x") == 1

    def test_capacity_cap(self, sim):
        tracer = Tracer(sim, enabled=True, capacity=2)
        for i in range(5):
            tracer.record("c", "e", i=i)
        assert len(tracer.records) == 2


class TestFailureProcesses:
    def test_schedule_outage(self):
        sim = Simulator()
        network = Network(sim, RandomStreams(0))
        host = network.add_host("h")
        schedule = FailureSchedule(sim)
        schedule.outage(host, start=5.0, end=10.0)
        sim.run(until=6.0)
        assert not host.up
        sim.run(until=11.0)
        assert host.up
        assert [entry[2] for entry in schedule.log] == ["crash", "restart"]

    def test_outage_validation(self):
        sim = Simulator()
        network = Network(sim, RandomStreams(0))
        host = network.add_host("h")
        with pytest.raises(ValueError):
            FailureSchedule(sim).outage(host, 5.0, 5.0)

    def test_markov_availability_configuration(self):
        sim = Simulator()
        network = Network(sim, RandomStreams(0))
        host = network.add_host("h")
        process = MarkovFailureProcess.with_availability(
            sim, host, availability=0.9, mttr=10.0,
            streams=RandomStreams(0))
        assert process.availability == pytest.approx(0.9)
        process.stop()

    def test_markov_generates_outages(self):
        sim = Simulator()
        network = Network(sim, RandomStreams(0))
        host = network.add_host("h")
        process = MarkovFailureProcess(sim, host, mtbf=50.0, mttr=5.0,
                                       streams=RandomStreams(2),
                                       horizon=5_000.0)
        sim.run(until=5_100.0)
        assert process.outages > 10
        # empirical availability near mtbf/(mtbf+mttr) ≈ 0.909
        measured = 1.0 - process.total_downtime / 5_000.0
        assert 0.8 < measured < 0.98

    def test_bernoulli_outages_rate(self):
        sim = Simulator()
        network = Network(sim, RandomStreams(0))
        host = network.add_host("h")
        schedule = bernoulli_outages(
            sim, [host], availability=0.8, trial_interval=10.0,
            trials=500, streams=RandomStreams(11))
        sim.run()
        outages = sum(1 for entry in schedule.log if entry[2] == "crash")
        assert 60 < outages < 140  # ~100 expected
