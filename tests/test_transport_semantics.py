"""At-most-once RPC with retransmission, and late-message hygiene.

These are the transport-level properties the transaction layer depends
on over an unreliable datagram network:

* retransmissions reuse the call id, so the server never re-executes;
* a retransmitted request that arrives after its transaction finished
  is refused by the participant's tombstone, so it cannot resurrect
  scratch state or strand locks;
* the post-decision messages of a transaction (read-only releases,
  commit stragglers, aborts) are transmitted synchronously with the
  decision, then retried in the background.
"""

import pytest

from tests.helpers import triple_config
from repro.errors import RpcTimeout, TransactionAborted
from repro.rpc import Request, RpcEndpoint
from repro.sim import Network, RandomStreams, Simulator
from repro.testbed import Testbed


def make_pair(loss=0.0, seed=9):
    sim = Simulator()
    network = Network(sim, RandomStreams(seed), default_latency=1.0,
                      loss_probability=loss)
    client = RpcEndpoint(sim, network.add_host("client"))
    server = RpcEndpoint(sim, network.add_host("server"))
    return sim, network, client, server


class TestRetransmission:
    def test_lost_request_recovered_by_retransmit(self):
        sim, network, client, server = make_pair()
        executions = []
        server.register("op", lambda: executions.append(1) or "done")
        # Force-drop the first transmission only.
        network.loss_probability = 0.999999

        def flow():
            event = client.call("server", "op", timeout=50.0, attempts=3)
            yield sim.timeout(10.0)
            network.loss_probability = 0.0  # link heals
            result = yield event
            return result

        assert sim.run_process(flow()) == "done"
        sim.run()
        assert executions == [1]
        assert client.retransmissions >= 1

    def test_retransmit_does_not_reexecute(self):
        """Slow server + impatient client: the retransmission arrives
        while the original is still executing and must be suppressed."""
        sim, _network, client, server = make_pair()
        executions = []

        def slow():
            executions.append(sim.now)
            yield sim.timeout(80.0)
            return "slow-done"

        server.register("op", slow)

        def flow():
            result = yield client.call("server", "op", timeout=30.0,
                                       attempts=5)
            return result

        assert sim.run_process(flow()) == "slow-done"
        sim.run()
        assert len(executions) == 1
        assert server.duplicates_suppressed >= 1

    def test_all_attempts_lost_raises(self):
        sim, network, client, server = make_pair()
        server.register("op", lambda: "never")
        network.loss_probability = 0.999999

        def flow():
            try:
                yield client.call("server", "op", timeout=20.0,
                                  attempts=3)
            except RpcTimeout:
                return sim.now

        # 3 transmissions, 20 each.
        assert sim.run_process(flow()) == 60.0

    def test_attempts_validated(self):
        _sim, _network, client, _server = make_pair()
        with pytest.raises(ValueError):
            client.call("server", "op", timeout=10.0, attempts=0)


class TestTombstones:
    def test_late_stage_cannot_resurrect_aborted_txn(self, bed):
        """Replay a stage_write after its transaction aborted: the
        participant must refuse, leaving no scratch state or locks."""
        manager = bed.clients["client"].manager
        participant = bed.servers["s1"].participant

        def flow():
            txn = manager.begin()
            yield txn.call("s1", "txn.stage_write", name="f", data=b"x",
                           version=1, create=True)
            yield from txn.abort()
            # Simulate a late retransmission of the same staging call.
            event = bed.clients["client"].endpoint.call(
                "s1", "txn.stage_write", timeout=1_000.0,
                txn=str(txn.txn_id), name="f", data=b"x", version=1,
                create=True)
            try:
                yield event
                return "resurrected"
            except TransactionAborted:
                return "refused"

        assert bed.run(flow()) == "refused"
        assert len(participant._active) == 0
        assert not participant.locks.holders_of("f")

    def test_late_commit_after_commit_still_acks(self, bed):
        manager = bed.clients["client"].manager

        def flow():
            txn = manager.begin()
            yield txn.call("s1", "txn.stage_write", name="f", data=b"x",
                           version=1, create=True)
            yield from txn.commit()
            ack = yield bed.clients["client"].endpoint.call(
                "s1", "txn.commit", timeout=1_000.0, txn=str(txn.txn_id))
            return ack

        assert bed.run(flow()) == "ack"

    def test_late_abort_after_commit_is_harmless(self, bed):
        """An abort retransmission landing after commit must not undo
        anything (the commit already erased the record)."""
        manager = bed.clients["client"].manager

        def flow():
            txn = manager.begin()
            yield txn.call("s1", "txn.stage_write", name="f", data=b"kept",
                           version=1, create=True)
            yield from txn.commit()
            yield bed.clients["client"].endpoint.call(
                "s1", "txn.abort", timeout=1_000.0, txn=str(txn.txn_id))
            data, version = yield txn.manager.endpoint.call(
                "s1", "txn.read", timeout=1_000.0,
                txn=str(manager.begin().txn_id), name="f")
            return data

        assert bed.run(flow()) == b"kept"


class TestDecisionMessagesSentSynchronously:
    def test_partition_right_after_read_does_not_strand_locks(self):
        """The scenario from the partition example: a remote reader's
        lock-release prepares must already be on the wire when the
        partition activates one event later."""
        bed = Testbed(servers=["s1", "s2", "s3"],
                      clients=["local", "remote"], seed=77)
        config = triple_config()
        local_suite = bed.install(config, b"data", client="local")
        remote_suite = bed.suite(config, client="remote")

        bed.run(remote_suite.read())
        bed.partition([["local", "s1", "s2", "s3"], ["remote"]])
        # The remote reader's shared locks were released by prepares
        # sent before the cut, so a local write proceeds immediately.
        start = bed.sim.now
        result = bed.run(local_suite.write(b"updated"))
        assert result.version == 2
        assert bed.sim.now - start < 100.0
