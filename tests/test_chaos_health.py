"""Circuit breakers, health-aware quorum assembly, fail-fast reads."""

import pytest

from repro.chaos import (CLOSED, HALF_OPEN, OPEN, CircuitBreaker,
                        HealthTracker)
from repro.core import make_configuration
from repro.errors import QuorumUnattainableError, QuorumUnavailableError
from repro.sim.metrics import MetricsRegistry
from repro.testbed import Testbed


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestCircuitBreaker:
    def test_opens_after_consecutive_failures(self):
        clock = FakeClock()
        breaker = CircuitBreaker(clock, failure_threshold=3,
                                 cooldown=100.0)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED and breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()
        assert breaker.opens == 1

    def test_success_resets_the_failure_count(self):
        clock = FakeClock()
        breaker = CircuitBreaker(clock, failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_half_open_grants_exactly_one_probe(self):
        clock = FakeClock()
        breaker = CircuitBreaker(clock, failure_threshold=1,
                                 cooldown=100.0)
        breaker.record_failure()
        assert not breaker.allow()
        clock.now = 100.0
        assert breaker.allow()               # the probe
        assert breaker.state == HALF_OPEN
        assert not breaker.allow()           # probe in flight: refused
        breaker.record_success()
        assert breaker.state == CLOSED and breaker.allow()

    def test_failed_probe_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(clock, failure_threshold=1,
                                 cooldown=100.0)
        breaker.record_failure()
        clock.now = 100.0
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()
        assert breaker.opens == 2

    def test_lost_probe_releases_the_slot_after_a_cooldown(self):
        clock = FakeClock()
        breaker = CircuitBreaker(clock, failure_threshold=1,
                                 cooldown=100.0)
        breaker.record_failure()
        clock.now = 100.0
        assert breaker.allow()               # probe never reports back
        clock.now = 150.0
        assert not breaker.allow()
        clock.now = 200.0
        assert breaker.allow()               # slot re-opened


class TestHealthTracker:
    def test_unknown_servers_start_healthy(self):
        tracker = HealthTracker(FakeClock())
        assert tracker.allow("s1")
        assert tracker.state("s1") == CLOSED

    def test_metrics_mirroring(self):
        metrics = MetricsRegistry()
        tracker = HealthTracker(FakeClock(), failure_threshold=2,
                                metrics=metrics)
        tracker.record_failure("s1")
        tracker.record_failure("s1")
        assert metrics.gauge(
            "health.breaker_state[server=s1]").value == 1.0
        assert metrics.counter("health.breaker_opens").value == 1
        tracker.record_success("s1")
        assert metrics.gauge(
            "health.breaker_state[server=s1]").value == 0.0

    def test_snapshot_is_json_safe(self):
        clock = FakeClock()
        clock.now = 42.0
        tracker = HealthTracker(clock, failure_threshold=1)
        tracker.record_failure("s2")
        snap = tracker.snapshot()
        assert snap == {"s2": {"state": OPEN,
                               "consecutive_failures": 1, "opens": 1,
                               "closes": 0, "last_transition": 42.0}}

    def test_transition_history_counts_opens_and_closes(self):
        """Two full open -> close cycles leave opens == closes == 2 and
        the last-transition stamp at the final close."""
        clock = FakeClock()
        tracker = HealthTracker(clock, failure_threshold=1,
                                cooldown=100.0)
        for cycle in range(2):
            clock.now = 1000.0 * cycle
            tracker.record_failure("s3")
            breaker = tracker.breaker("s3")
            assert breaker.opens == cycle + 1
            assert breaker.last_transition == clock.now
            clock.now += 500.0
            tracker.record_success("s3")
            assert breaker.closes == cycle + 1
            assert breaker.last_transition == clock.now
        snap = tracker.snapshot()["s3"]
        assert snap["opens"] == 2 and snap["closes"] == 2
        assert snap["last_transition"] == 1500.0

    def test_success_while_closed_is_not_a_transition(self):
        clock = FakeClock()
        tracker = HealthTracker(clock, failure_threshold=3)
        tracker.record_failure("s1")      # below the threshold
        tracker.record_success("s1")
        breaker = tracker.breaker("s1")
        assert breaker.opens == 0 and breaker.closes == 0
        assert breaker.last_transition is None

    def test_transition_gauges_are_mirrored(self):
        metrics = MetricsRegistry()
        clock = FakeClock()
        tracker = HealthTracker(clock, failure_threshold=1,
                                metrics=metrics)
        clock.now = 7.0
        tracker.record_failure("s1")
        assert metrics.gauge(
            "health.breaker_opens[server=s1]").value == 1.0
        assert metrics.gauge(
            "health.breaker_last_transition_ms[server=s1]").value == 7.0
        clock.now = 9.0
        tracker.record_success("s1")
        assert metrics.gauge(
            "health.breaker_closes[server=s1]").value == 1.0
        assert metrics.gauge(
            "health.breaker_last_transition_ms[server=s1]").value == 9.0
        assert metrics.counter("health.breaker_closes").value == 1


def five_rep_bed(call_timeout=400.0, cooldown=10**9):
    """A 5-rep majority suite with a breaker-aware client."""
    servers = [f"s{i}" for i in range(1, 6)]
    bed = Testbed(servers=servers, seed=13, call_timeout=call_timeout)
    health = HealthTracker(clock=lambda: bed.sim.now, cooldown=cooldown,
                           metrics=bed.metrics)
    bed.clients["client"].endpoint.health = health
    config = make_configuration(
        "hdb", [(server, 1) for server in servers], 3, 3,
        latency_hints={server: 10.0 * i
                       for i, server in enumerate(servers, start=1)})
    suite = bed.install(config, b"v1", health=health, retry_backoff=25.0)
    return bed, suite, health


def force_open(health, *servers):
    for server in servers:
        for _ in range(health.failure_threshold):
            health.record_failure(server)
        assert health.state(server) == OPEN


class TestHealthAwareQuorum:
    def test_operations_succeed_around_open_breakers(self):
        """Two breakers open, three healthy reps hold r = w = 3: reads
        and writes keep working and never touch the vetoed servers."""
        bed, suite, health = five_rep_bed()
        force_open(health, "s4", "s5")
        write = bed.run(suite.write(b"degraded"))
        assert set(write.quorum) == {"rep-s1", "rep-s2", "rep-s3"}
        read = bed.run(suite.read())
        assert read.data == b"degraded"
        assert set(read.quorum) == {"rep-s1", "rep-s2", "rep-s3"}

    def test_unattainable_quorum_fails_faster_than_a_timeout(self):
        """Three breakers open leave 2 < 3 attainable votes: the read
        must raise the typed error without paying an RPC timeout."""
        bed, suite, health = five_rep_bed(call_timeout=400.0)
        force_open(health, "s3", "s4", "s5")
        sent_before = bed.network.messages_sent
        started = bed.sim.now
        with pytest.raises(QuorumUnattainableError) as info:
            bed.run(suite.read())
        elapsed = bed.sim.now - started
        # Faster than ONE full RPC timeout, despite the suite's own
        # retry ladder running in between.
        assert elapsed < 400.0
        # No inquiry was ever put on the wire.
        assert bed.network.messages_sent == sent_before
        assert info.value.needed == 3
        assert info.value.attainable == 2
        assert bed.metrics.counter("suite.unattainable").value > 0

    def test_unattainable_is_retryable_and_subclasses_unavailable(self):
        assert issubclass(QuorumUnattainableError,
                          QuorumUnavailableError)

    def test_probe_after_cooldown_heals_the_cluster_view(self):
        """With a finite cooldown, the next operation probes the open
        breaker; the healthy server answers, the breaker closes, and
        the representative rejoins quorum assembly."""
        bed, suite, health = five_rep_bed(cooldown=50.0)
        force_open(health, "s1")
        bed.run(suite.read())                # quorum from s2..s5
        bed.settle(grace=100.0)              # past the cooldown
        read = bed.run(suite.read())         # probe goes to s1
        assert health.state("s1") == CLOSED
        assert read.data == b"v1"

    def test_writes_fail_fast_too(self):
        bed, suite, health = five_rep_bed()
        force_open(health, "s1", "s2", "s3")
        with pytest.raises(QuorumUnattainableError) as info:
            bed.run(suite.write(b"nope"))
        assert info.value.kind == "write"
