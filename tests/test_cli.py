"""The command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestTable1:
    def test_prints_paper_values(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "example 1" in out
        assert "65" in out and "750" in out

class TestSimulate:
    def test_reports_both_operations(self, capsys):
        assert main(["simulate", "--example", "1"]) == 0
        out = capsys.readouterr().out
        assert "read" in out and "write" in out
        assert "served by" in out

    def test_rejects_bad_example(self):
        with pytest.raises(SystemExit):
            main(["simulate", "--example", "9"])


class TestSweep:
    def test_monotone_output(self, capsys):
        assert main(["sweep", "--example", "3"]) == 0
        out = capsys.readouterr().out
        assert "0.999" in out
        assert "read block" in out


class TestTune:
    def test_default_servers(self, capsys):
        assert main(["tune", "--read-fraction", "0.9"]) == 0
        out = capsys.readouterr().out
        assert "best configuration" in out
        assert "r = " in out and "w = " in out

    def test_custom_servers(self, capsys):
        assert main(["tune", "--read-fraction", "0.5",
                     "--server", "a:10:0.99",
                     "--server", "b:20:0.99"]) == 0
        out = capsys.readouterr().out
        assert "a" in out and "b" in out

    def test_infeasible_constraints_exit_code(self, capsys):
        code = main(["tune", "--read-fraction", "0.5",
                     "--server", "only:10:0.9",
                     "--min-write-availability", "0.99999"])
        assert code == 1
        assert "no feasible" in capsys.readouterr().err

    def test_malformed_server_spec(self):
        with pytest.raises(SystemExit):
            main(["tune", "--server", "oops"])


class TestDemo:
    def test_runs_full_scenario(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "hello, 1979" in out
        assert "with s1 crashed" in out
        assert "versions: [2, 2, 2]" in out


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestStatus:
    def test_shows_degraded_suite(self, capsys):
        assert main(["status"]) == 0
        out = capsys.readouterr().out
        assert "rep-s3" in out
        assert "unreachable: ['rep-s3']" in out
        assert "invariants: OK" in out


class TestScaling:
    def test_prints_growth_table(self, capsys):
        assert main(["scaling", "--availability", "0.9"]) == 0
        out = capsys.readouterr().out
        assert "11" in out
        assert "write msgs" in out


class TestCluster:
    def test_sim_demo_with_join(self, capsys):
        assert main(["cluster", "--runtime", "sim", "--servers", "4",
                     "--suites", "12", "--clients", "20"]) == 0
        out = capsys.readouterr().out
        assert "simulated cluster: 4 servers, 12 suites" in out
        assert "directory shard sizes" in out
        assert "read p99" in out
        assert "per-server quorum load" in out
        assert "join + rebalance" in out
        assert "placement after join" in out

    def test_sim_demo_without_join(self, capsys):
        assert main(["cluster", "--runtime", "sim", "--no-join",
                     "--clients", "10", "--suites", "4",
                     "--shards", "1"]) == 0
        out = capsys.readouterr().out
        assert "join + rebalance" not in out

    def test_live_demo_boots_daemons(self, capsys):
        assert main(["cluster", "--servers", "3", "--suites", "16",
                     "--shards", "2", "--clients", "10",
                     "--arrivals", "1", "--interarrival", "2.0"]) == 0
        out = capsys.readouterr().out
        assert "live cluster: 3 storage daemons" in out
        assert "booted n1 on 127.0.0.1:" in out
        assert "16 suites bound behind 2 directory shards" in out
        assert "booted n4 on 127.0.0.1:" in out
        assert "join + rebalance" in out
