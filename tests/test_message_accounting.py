"""Message-count accounting: the protocol costs what the paper says.

The paper's efficiency argument is about *what moves*: inquiries are
small and parallel, data moves once, commit is a constant number of
small rounds.  These tests pin the message counts of each operation so
an accidental extra round trip (or an accidental broadcast of data)
shows up as a test failure, not a silent 2× latency regression.
"""

import pytest

from tests.helpers import triple_config
from repro.core.analysis import message_cost
from repro.sim.network import estimate_size
from repro.testbed import Testbed


@pytest.fixture
def quiet_bed():
    """A bed whose refresher is off, so counts are purely foreground."""
    bed = Testbed(servers=["s1", "s2", "s3"], seed=7,
                  refresh_enabled=False)
    return bed


def message_delta(bed, operation):
    before = bed.network.messages_sent
    result = bed.run(operation)
    bed.settle(5_000.0)  # let lock-release prepares etc. drain
    return bed.network.messages_sent - before, result


class TestReadCosts:
    def test_read_message_budget(self, quiet_bed):
        bed = quiet_bed
        suite = bed.install(triple_config(), b"x" * 1000)
        delta, _ = message_delta(bed, suite.read())
        # 3 stat requests + 3 replies (the data rides the cheapest
        # rep's reply: the fast path), 3 release-prepares + 3 acks = 12.
        assert delta == message_cost(suite.config)["read"] == 12

    def test_legacy_read_message_budget(self, quiet_bed):
        """With the fast path off, the dedicated data trip reappears."""
        bed = quiet_bed
        suite = bed.install(triple_config(), b"x" * 1000,
                            read_fastpath=False)
        delta, _ = message_delta(bed, suite.read())
        # 3 stat requests + 3 replies, 1 read + 1 reply,
        # 3 release-prepares + 3 acks = 14.
        assert delta == message_cost(suite.config)["read_fallback"] == 14

    def test_only_one_data_transfer_per_read(self, quiet_bed):
        """However large the file, exactly one message carries it."""
        bed = quiet_bed
        data = b"z" * 20_000
        suite = bed.install(triple_config(), data)
        before = bed.network.messages_delivered
        bed.run(suite.read())
        bed.settle(5_000.0)
        # Count delivered messages big enough to contain the data.
        # (The network exposes counts, not contents; estimate by size
        # bookkeeping on a fresh read.)
        # Simply: total bytes moved must be ~ one payload, not three.
        # Re-measure precisely with a byte counter:
        moved = []
        original_send = bed.network.send

        def counting_send(source, destination, payload):
            moved.append(estimate_size(payload))
            original_send(source, destination, payload)

        bed.network.send = counting_send
        bed.run(suite.read())
        bed.settle(5_000.0)
        bulk_messages = [size for size in moved if size >= len(data)]
        assert len(bulk_messages) == 1

    def test_weak_hit_moves_no_bulk_data(self):
        from repro.core import CachingSuiteClient

        bed = Testbed(servers=["s1", "s2", "s3"], seed=7,
                      refresh_enabled=False)
        data = b"y" * 20_000
        config = triple_config()
        bed.install(config, data)
        client = CachingSuiteClient(bed.clients["client"].manager,
                                    config, metrics=bed.metrics)
        bed.run(client.read())  # populate
        moved = []
        original_send = bed.network.send

        def counting_send(source, destination, payload):
            moved.append(estimate_size(payload))
            original_send(source, destination, payload)

        bed.network.send = counting_send
        result = bed.run(client.read())  # cache hit
        bed.settle(5_000.0)
        assert result.served_by == "client-cache"
        assert all(size < 1_000 for size in moved), \
            "a cache hit must move only inquiry-sized messages"


class TestWriteCosts:
    def test_write_message_budget(self, quiet_bed):
        bed = quiet_bed
        suite = bed.install(triple_config(), b"x" * 1000)
        delta, result = message_delta(bed, suite.write(b"y" * 1000))
        assert len(result.quorum) == 2
        # 3 stats + 3 replies, 2 stages + 2 replies, prepare/commit
        # rounds to 3 participants (one read-only): phase 1 = 3+3,
        # phase 2 to the 2 writers = 2+2 → total 20.
        assert delta == message_cost(suite.config)["write"] == 20

    def test_data_moves_only_to_the_write_quorum(self, quiet_bed):
        bed = quiet_bed
        data = b"w" * 20_000
        suite = bed.install(triple_config(), b"small")
        moved = []
        original_send = bed.network.send

        def counting_send(source, destination, payload):
            moved.append((destination, estimate_size(payload)))
            original_send(source, destination, payload)

        bed.network.send = counting_send
        result = bed.run(suite.write(data))
        bed.settle(5_000.0)
        bulk_targets = {destination for destination, size in moved
                        if size >= len(data)}
        quorum_servers = {
            suite.config.representative(rep_id).server
            for rep_id in result.quorum}
        assert bulk_targets == quorum_servers
