"""Flight recorder + replay: format, durability, determinism, audits.

The postmortem plane's contract has three layers, each pinned here:

* **Format/durability** — CRC-framed records in fsync-rotated
  segments; a torn or corrupt *trailing* record of the *final* segment
  is dropped and counted, damage anywhere else raises.
* **Determinism** — two sim soaks from one config produce
  byte-identical journals, and ``re_execute`` reproduces a recorded
  sim incident byte-for-byte (divergence keyed by version stamp when
  the evidence was tampered with).
* **Audit** — ``verify_journal`` reruns the invariant checker over
  the rebuilt history (including a live run's), re-derives quorum
  blocking attribution and demands it match the run's own counters,
  and the ``repro doctor`` exit-code matrix (0 healthy / 1 findings /
  2 expectation miss) extends to ``--flight``.
"""

import asyncio
import json
import os
import zlib

import pytest

from repro.chaos.soak import SoakConfig, run_live_soak, run_sim_soak
from repro.cli import main as cli_main
from repro.cluster.soak import ClusterSoakConfig, run_cluster_sim_soak
from repro.obs.flight import (FlightHistory, FlightJournalError,
                              FlightRecorder, load_flight_journal,
                              read_journal_bytes)
from repro.replay import re_execute, verify_journal

SOAK = SoakConfig(ops=60, seed=3)


def _fixed_clock():
    state = {"now": 0.0}

    def clock():
        state["now"] += 1.0
        return state["now"]

    return clock


def _reframe(payload: bytes) -> bytes:
    """A correctly CRC-framed journal line for ``payload``."""
    return b"%08x %s\n" % (zlib.crc32(payload) & 0xFFFFFFFF, payload)


class TestRecorderFormat:
    def test_round_trip(self, tmp_path):
        directory = str(tmp_path / "j")
        with FlightRecorder(directory, clock=_fixed_clock()) as rec:
            rec.emit("quorum", suite="db", votes=3)
            rec.emit("txn", txn="client:1", outcome="commit")
        records, stats = load_flight_journal(directory)
        assert stats.records == 2
        assert stats.dropped_bytes == 0
        assert [r["kind"] for r in records] == ["quorum", "txn"]
        assert records[0]["data"] == {"suite": "db", "votes": 3}
        assert records[0]["at"] == 1.0
        assert [r["seq"] for r in records] == [0, 1]

    def test_payload_may_shadow_kind(self, tmp_path):
        directory = str(tmp_path / "j")
        with FlightRecorder(directory, clock=_fixed_clock()) as rec:
            rec.emit("op", kind="read", ok=True, index=0)
        records, _stats = load_flight_journal(directory)
        assert records[0]["kind"] == "op"
        assert records[0]["data"]["kind"] == "read"

    def test_segment_rotation(self, tmp_path):
        directory = str(tmp_path / "j")
        with FlightRecorder(directory, clock=_fixed_clock(),
                            max_segment_bytes=1024) as rec:
            for index in range(64):
                rec.emit("chaos", what="drop", index=index,
                         pad="x" * 64)
            assert rec.segments > 1
        names = sorted(os.listdir(directory))
        assert names[0] == "flight-000001.jrnl"
        assert len(names) == rec.segments
        for name in names[:-1]:
            assert (tmp_path / "j" / name).stat().st_size <= 1024
        records, stats = load_flight_journal(directory)
        assert stats.segments == rec.segments
        assert [r["seq"] for r in records] == list(range(64))

    def test_recorder_owns_the_directory(self, tmp_path):
        directory = str(tmp_path / "j")
        with FlightRecorder(directory, clock=_fixed_clock()) as rec:
            rec.emit("meta", runtime="sim")
        # A second run must not mix with the first run's segments.
        with FlightRecorder(directory, clock=_fixed_clock()) as rec:
            rec.emit("meta", runtime="sim")
        records, stats = load_flight_journal(directory)
        assert stats.records == 1

    def test_closed_recorder_rejects_emit(self, tmp_path):
        rec = FlightRecorder(str(tmp_path / "j"), clock=_fixed_clock())
        rec.close()
        rec.close()                      # idempotent
        assert rec.closed
        with pytest.raises(ValueError):
            rec.emit("quorum")

    def test_tiny_segment_cap_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            FlightRecorder(str(tmp_path / "j"), clock=_fixed_clock(),
                           max_segment_bytes=16)


class TestTornRecords:
    def _journal(self, tmp_path, records=4):
        directory = str(tmp_path / "j")
        with FlightRecorder(directory, clock=_fixed_clock()) as rec:
            for index in range(records):
                rec.emit("chaos", what="drop", index=index)
        return directory

    def test_torn_trailing_record_dropped(self, tmp_path):
        directory = self._journal(tmp_path)
        path = os.path.join(directory, "flight-000001.jrnl")
        raw = open(path, "rb").read()
        open(path, "wb").write(raw[:-7])   # crash mid-record
        records, stats = load_flight_journal(directory)
        assert stats.records == 3
        assert stats.dropped_bytes > 0

    def test_corrupt_trailing_record_dropped(self, tmp_path):
        directory = self._journal(tmp_path)
        path = os.path.join(directory, "flight-000001.jrnl")
        lines = open(path, "rb").read().splitlines(keepends=True)
        lines[-1] = lines[-1][:9] + b"X" + lines[-1][10:]
        open(path, "wb").write(b"".join(lines))
        records, stats = load_flight_journal(directory)
        assert stats.records == 3
        assert stats.dropped_bytes == len(lines[-1])

    def test_corruption_mid_journal_raises(self, tmp_path):
        directory = self._journal(tmp_path)
        path = os.path.join(directory, "flight-000001.jrnl")
        lines = open(path, "rb").read().splitlines(keepends=True)
        lines[1] = lines[1][:9] + b"X" + lines[1][10:]
        open(path, "wb").write(b"".join(lines))
        with pytest.raises(FlightJournalError, match="mid-journal"):
            load_flight_journal(directory)

    def test_sequence_gap_raises(self, tmp_path):
        directory = self._journal(tmp_path)
        path = os.path.join(directory, "flight-000001.jrnl")
        lines = open(path, "rb").read().splitlines(keepends=True)
        # Drop a middle record but keep both framing and a valid tail
        # record after it: the CRCs verify, the seq chain does not.
        del lines[1]
        open(path, "wb").write(b"".join(lines))
        with pytest.raises(FlightJournalError, match="sequence gap"):
            load_flight_journal(directory)

    def test_empty_directory_raises(self, tmp_path):
        with pytest.raises(FlightJournalError, match="no flight"):
            load_flight_journal(str(tmp_path))


class TestFlightHistory:
    class _Record:
        def __init__(self, index):
            self.index = index

        def to_json(self):
            return {"index": self.index, "kind": "read", "ok": True}

    def test_append_and_iadd_journal_ops(self, tmp_path):
        directory = str(tmp_path / "j")
        rec = FlightRecorder(directory, clock=_fixed_clock())
        history = FlightHistory(rec, suite="db-001")
        history.append(self._Record(0))
        history += [self._Record(1), self._Record(2)]
        rec.close()
        assert isinstance(history, FlightHistory)
        assert [item.index for item in history] == [0, 1, 2]
        records, _stats = load_flight_journal(directory)
        assert [r["data"]["index"] for r in records] == [0, 1, 2]
        assert all(r["data"]["suite"] == "db-001" for r in records)

    def test_plain_list_without_recorder(self):
        history = FlightHistory()
        history.append(self._Record(0))
        assert len(history) == 1


class TestSimJournalDeterminism:
    def test_byte_identical_reruns(self, tmp_path):
        one, two = str(tmp_path / "one"), str(tmp_path / "two")
        run_sim_soak(SOAK, flight_dir=one)
        run_sim_soak(SOAK, flight_dir=two)
        first = read_journal_bytes(one)
        assert first == read_journal_bytes(two)
        assert first                      # not vacuous

    def test_journal_covers_every_decision_kind(self, tmp_path):
        directory = str(tmp_path / "j")
        config = SoakConfig(ops=100, seed=5, autopilot=True,
                            degrade_server="s4", nemesis_kind="none")
        run_sim_soak(config, flight_dir=directory)
        records, _stats = load_flight_journal(directory)
        kinds = {record["kind"] for record in records}
        assert {"meta", "op", "quorum", "txn", "chaos", "breaker",
                "autopilot", "reconfig", "metrics"} <= kinds
        assert records[0]["kind"] == "meta"
        assert records[-1]["kind"] == "metrics"


class TestVerify:
    def test_sim_journal_verifies_clean(self, tmp_path):
        directory = str(tmp_path / "j")
        report = run_sim_soak(SOAK, flight_dir=directory)
        verdict = verify_journal(directory)
        assert verdict.ok, verdict.findings()
        assert verdict.plane_checked
        assert verdict.runtime == "sim"
        # The journal's history is the soak's history.
        (history,) = verdict.histories.values()
        assert len(history) == len(report.history)
        (rebuilt,) = verdict.reports.values()
        assert rebuilt.ok
        assert rebuilt.committed_writes == report.report.committed_writes
        assert verdict.slos               # re-derived, informational

    def test_live_journal_verifies_clean(self, tmp_path):
        directory = str(tmp_path / "j")
        asyncio.run(run_live_soak(SoakConfig(ops=40, seed=2),
                                  flight_dir=directory))
        verdict = verify_journal(directory)
        assert verdict.ok, verdict.findings()
        assert verdict.plane_checked
        assert verdict.runtime == "live"

    def test_cluster_journal_verifies_clean(self, tmp_path):
        directory = str(tmp_path / "j")
        run_cluster_sim_soak(ClusterSoakConfig(ops=50, seed=11),
                             flight_dir=directory)
        verdict = verify_journal(directory)
        assert verdict.ok, verdict.findings()
        assert len(verdict.reports) == 6  # one per data suite

    def test_tampered_attribution_is_a_plane_mismatch(self, tmp_path):
        directory = str(tmp_path / "j")
        run_sim_soak(SOAK, flight_dir=directory)
        _tamper_first(directory, "quorum", lambda data: data["order"]
                      .__setitem__(0, [data["order"][0][0],
                                       data["order"][0][1] + 50.0,
                                       data["order"][0][2]]))
        verdict = verify_journal(directory)
        assert not verdict.ok
        assert verdict.plane_mismatches

    def test_tampered_history_breaks_invariants(self, tmp_path):
        directory = str(tmp_path / "j")
        run_sim_soak(SOAK, flight_dir=directory)

        def dent(data):
            if data["kind"] == "write" and data["ok"]:
                data["version"] = 1      # duplicate committed version

        _tamper_first(directory, "op", dent,
                      want=lambda data: data["kind"] == "write"
                      and data["ok"])
        verdict = verify_journal(directory)
        assert not verdict.ok
        (report,) = verdict.reports.values()
        assert not report.ok

    def test_journal_without_meta_is_an_error(self, tmp_path):
        directory = str(tmp_path / "j")
        with FlightRecorder(directory, clock=_fixed_clock()) as rec:
            rec.emit("chaos", what="drop")
        verdict = verify_journal(directory)
        assert not verdict.ok
        assert "no meta record" in verdict.errors[0]


class TestReexecute:
    def test_sim_incident_reproduces_byte_identically(self, tmp_path):
        original = str(tmp_path / "orig")
        run_sim_soak(SOAK, flight_dir=original)
        report = re_execute(original, str(tmp_path / "replay"))
        assert report.ok
        assert report.byte_compared and report.identical
        assert (read_journal_bytes(original)
                == read_journal_bytes(str(tmp_path / "replay")))

    def test_divergence_keyed_by_version_stamp(self, tmp_path):
        original = str(tmp_path / "orig")
        run_sim_soak(SOAK, flight_dir=original)

        def dent(data):
            if data["kind"] == "write" and data["ok"]:
                data["version"] += 7

        _tamper_first(original, "op", dent,
                      want=lambda data: data["kind"] == "write"
                      and data["ok"])
        report = re_execute(original, str(tmp_path / "replay"))
        assert not report.ok
        assert not report.identical
        assert "version stamp" in report.divergence

    def test_cluster_incident_reproduces(self, tmp_path):
        original = str(tmp_path / "orig")
        run_cluster_sim_soak(ClusterSoakConfig(ops=50, seed=11),
                             flight_dir=original)
        report = re_execute(original, str(tmp_path / "replay"))
        assert report.ok and report.identical

    def test_unknown_runtime_rejected(self, tmp_path):
        directory = str(tmp_path / "j")
        with FlightRecorder(directory, clock=_fixed_clock()) as rec:
            rec.emit("meta", runtime="martian", config={})
        with pytest.raises(ValueError, match="martian"):
            re_execute(directory, str(tmp_path / "replay"))


def _tamper_first(directory, kind, mutate, want=None):
    """Rewrite the first matching record in place, CRC kept valid.

    Tampering is the test's stand-in for a buggy emitter: the framing
    still verifies, so only the *semantic* audits can catch it.
    """
    names = sorted(name for name in os.listdir(directory)
                   if name.endswith(".jrnl"))
    done = False
    for name in names:
        path = os.path.join(directory, name)
        out = []
        for line in open(path, "rb").read().splitlines(keepends=True):
            record = json.loads(line[9:])
            if not done and record["kind"] == kind \
                    and (want is None or want(record["data"])):
                mutate(record["data"])
                payload = json.dumps(record, sort_keys=True,
                                     separators=(",", ":")).encode()
                line = _reframe(payload)
                done = True
            out.append(line)
        open(path, "wb").write(b"".join(out))
    assert done, f"no {kind} record matched"


class TestDoctorExitMatrix:
    """Pinned exit contract for offline doctor, --flight included:
    healthy -> 0, findings -> 1, --expect-* miss -> 2."""

    def _healthy_history(self, tmp_path):
        path = tmp_path / "history.json"
        path.write_text(json.dumps({
            "verdict": "OK",
            "breakers": {"rep-1": {"state": "closed", "opens": 2}}}))
        return str(path)

    def _violating_history(self, tmp_path):
        path = tmp_path / "bad-history.json"
        path.write_text(json.dumps({
            "verdict": "VIOLATIONS:unique-version", "breakers": {}}))
        return str(path)

    def test_healthy_artifacts_exit_0(self, tmp_path, capsys):
        rc = cli_main(["doctor", "--history",
                       self._healthy_history(tmp_path)])
        assert rc == 0
        assert "verdict OK" in capsys.readouterr().out

    def test_history_violations_exit_1(self, tmp_path, capsys):
        rc = cli_main(["doctor", "--history",
                       self._violating_history(tmp_path)])
        assert rc == 1
        assert "findings: 1" in capsys.readouterr().out

    def test_expectation_miss_exits_2(self, tmp_path, capsys):
        rc = cli_main(["doctor", "--history",
                       self._healthy_history(tmp_path),
                       "--expect-dead", "rep-9"])
        assert rc == 2
        assert "MISSED" in capsys.readouterr().out

    def test_healthy_flight_exits_0(self, tmp_path, capsys):
        directory = str(tmp_path / "j")
        run_sim_soak(SOAK, flight_dir=directory)
        rc = cli_main(["doctor", "--flight", directory])
        assert rc == 0
        assert "planes agree" in capsys.readouterr().out

    def test_tampered_flight_exits_1(self, tmp_path, capsys):
        directory = str(tmp_path / "j")
        run_sim_soak(SOAK, flight_dir=directory)

        def dent(data):
            if data["kind"] == "write" and data["ok"]:
                data["version"] = 1

        _tamper_first(directory, "op", dent,
                      want=lambda data: data["kind"] == "write"
                      and data["ok"])
        rc = cli_main(["doctor", "--flight", directory])
        assert rc == 1

    def test_missing_flight_exits_1(self, tmp_path, capsys):
        rc = cli_main(["doctor", "--flight", str(tmp_path / "absent")])
        assert rc == 1
        assert "cannot verify" in capsys.readouterr().err


class TestReplayCli:
    def test_verify_and_reexecute(self, tmp_path, capsys):
        directory = str(tmp_path / "j")
        run_sim_soak(SOAK, flight_dir=directory)
        rc = cli_main(["replay", "--verify", directory, "--slo"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "planes agree" in out and "slo " in out
        rc = cli_main(["replay", "--re-execute", directory,
                       "--out-dir", str(tmp_path / "replay")])
        assert rc == 0
        assert "byte-identical" in capsys.readouterr().out

    def test_no_mode_is_usage_error(self, capsys):
        rc = cli_main(["replay"])
        assert rc == 2

    def test_missing_journal_fails(self, tmp_path, capsys):
        rc = cli_main(["replay", "--verify", str(tmp_path / "absent")])
        assert rc == 1


class TestSoakCliFlight:
    def test_chaos_cli_writes_and_verifies_journal(self, tmp_path,
                                                   capsys):
        flight = str(tmp_path / "flight")
        rc = cli_main(["chaos", "--seed", "3", "--ops", "60",
                       "--runtime", "sim", "--nemesis", "random",
                       "--flight-dir", flight])
        assert rc == 0
        journal = os.path.join(flight, "seed3-sim")
        assert "flight journal" in capsys.readouterr().out
        verdict = verify_journal(journal)
        assert verdict.ok, verdict.findings()
