"""The shared broadcast medium (the paper's experimental Ethernet)."""

import pytest

from tests.helpers import triple_config
from repro.sim import Network, RandomStreams, SharedMedium, Simulator
from repro.testbed import Testbed


def receive_times(sim, host, count):
    times = []

    def receiver():
        for _ in range(count):
            yield host.receive()
            times.append(sim.now)

    process = sim.spawn(receiver())
    return times, process


class TestSharedMedium:
    def test_transfers_serialize(self):
        sim = Simulator()
        network = Network(sim, RandomStreams(0), default_latency=1.0)
        network.medium = SharedMedium(sim, byte_time=0.01)
        a = network.add_host("a")
        b = network.add_host("b")
        times, process = receive_times(sim, b, 2)
        # Two 1000-byte frames sent at once: the second must wait for
        # the first to clear the wire (10ms each).
        a.send("b", b"x" * 1000)
        a.send("b", b"y" * 1000)
        sim.run_until(process)
        assert times[0] == pytest.approx(10.0 + 1.0)
        assert times[1] == pytest.approx(20.0 + 1.0)

    def test_cross_pair_contention(self):
        """Transfers between *different* host pairs share the wire."""
        sim = Simulator()
        network = Network(sim, RandomStreams(0), default_latency=0.0)
        network.medium = SharedMedium(sim, byte_time=0.01)
        hosts = [network.add_host(name) for name in "abcd"]
        times_b, process_b = receive_times(sim, hosts[1], 1)
        times_d, process_d = receive_times(sim, hosts[3], 1)
        hosts[0].send("b", b"x" * 1000)
        hosts[2].send("d", b"y" * 1000)
        sim.run_until(process_b)
        sim.run_until(process_d)
        deliveries = sorted(times_b + times_d)
        assert deliveries == [pytest.approx(10.0), pytest.approx(20.0)]

    def test_loopback_bypasses_medium(self):
        sim = Simulator()
        network = Network(sim, RandomStreams(0), default_latency=0.0)
        network.medium = SharedMedium(sim, byte_time=1.0)
        a = network.add_host("a")
        times, process = receive_times(sim, a, 1)
        a.send("a", b"local" * 100)
        sim.run_until(process)
        assert times[0] == 0.0
        assert network.medium.transmissions == 0

    def test_utilization_accounting(self):
        sim = Simulator()
        network = Network(sim, RandomStreams(0), default_latency=0.0)
        medium = SharedMedium(sim, byte_time=0.5)
        network.medium = medium
        a = network.add_host("a")
        network.add_host("b")
        a.send("b", b"12345678")  # 8 bytes → 4ms on the wire
        sim.run()
        assert medium.transmissions == 1
        assert medium.busy_time == pytest.approx(4.0)

    def test_byte_time_validated(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            SharedMedium(sim, byte_time=0.0)

    def test_suite_protocol_works_on_shared_medium(self):
        """The whole stack still behaves correctly when every message
        contends for one wire — just slower."""
        bed = Testbed(servers=["s1", "s2", "s3"], seed=81)
        bed.network.medium = SharedMedium(bed.sim, byte_time=0.001)
        suite = bed.install(triple_config(), b"x" * 4000)
        result = bed.run(suite.write(b"y" * 4000))
        assert result.version == 2
        read = bed.run(suite.read())
        assert read.data == b"y" * 4000
        assert bed.network.medium.transmissions > 10
