"""Sharded namespace routing over K directory shard suites."""

import pytest

from repro.cluster import (PlacementRing, ShardedNamespace, is_shard_name,
                           shard_configurations, shard_of, shard_suite_name)
from repro.core import install_suite
from repro.directory import (DirectoryError, SuiteDirectory,
                             empty_directory_data)
from repro.testbed import Testbed

NAMES = [f"svc-{i:02d}" for i in range(24)]


class TestShardOf:
    def test_stable_and_in_range(self):
        for name in NAMES:
            index = shard_of(name, 4)
            assert 0 <= index < 4
            assert shard_of(name, 4) == index

    def test_seed_keys_the_hash(self):
        spread = {shard_of(name, 4, seed=0) != shard_of(name, 4, seed=9)
                  for name in NAMES}
        assert True in spread

    def test_all_shards_used(self):
        assert {shard_of(name, 2) for name in NAMES} == {0, 1}

    def test_validation(self):
        with pytest.raises(ValueError):
            shard_of("x", 0)


class TestShardNames:
    def test_reserved_prefix(self):
        assert shard_suite_name(0) == "__dir-0__"
        assert is_shard_name(shard_suite_name(3))
        assert not is_shard_name("app-003")

    def test_shard_configurations_default_read_any_write_all(self):
        ring = PlacementRing(["n1", "n2", "n3", "n4"], replication=3)
        configs = shard_configurations(ring, 2)
        assert [c.suite_name for c in configs] == ["__dir-0__",
                                                  "__dir-1__"]
        for config in configs:
            assert config.read_quorum == 1
            assert config.write_quorum == 3

    def test_shard_configurations_explicit_quorums(self):
        ring = PlacementRing(["n1", "n2", "n3"], replication=3)
        config, = shard_configurations(ring, 1, read_quorum=2,
                                       write_quorum=2)
        assert (config.read_quorum, config.write_quorum) == (2, 2)


@pytest.fixture
def cluster_bed():
    return Testbed(servers=["n1", "n2", "n3", "n4"], seed=5)


@pytest.fixture
def namespace(cluster_bed):
    ring = PlacementRing(["n1", "n2", "n3", "n4"], replication=3, seed=5)
    shards = []
    for config in shard_configurations(ring, 2):
        suite = cluster_bed.install(config, empty_directory_data())
        shards.append(SuiteDirectory(suite))
    return ShardedNamespace(shards, seed=5)


class TestRouting:
    def test_needs_a_shard(self):
        with pytest.raises(ValueError):
            ShardedNamespace([])

    def test_bind_lands_on_exactly_one_shard(self, cluster_bed, namespace):
        ring = PlacementRing(["n1", "n2", "n3", "n4"], seed=5)
        config = ring.configuration_for("svc-00")
        expected = namespace.shard_index("svc-00")

        def flow():
            yield from namespace.bind(config)
            sizes = yield from namespace.shard_sizes()
            return sizes

        sizes = cluster_bed.run(flow())
        assert sizes[expected] == 1
        assert sum(sizes.values()) == 1

    def test_lookup_routes_to_binding_shard(self, cluster_bed, namespace):
        ring = PlacementRing(["n1", "n2", "n3", "n4"], seed=5)

        def flow():
            for name in ("svc-00", "svc-01", "svc-02"):
                yield from namespace.bind(ring.configuration_for(name))
            return (yield from namespace.lookup("svc-01"))

        assert cluster_bed.run(flow()).suite_name == "svc-01"

    def test_list_suites_merges_all_shards(self, cluster_bed, namespace):
        ring = PlacementRing(["n1", "n2", "n3", "n4"], seed=5)
        names = ["svc-03", "svc-00", "svc-07", "svc-05"]
        # The sample must actually straddle both shards.
        assert len({namespace.shard_index(n) for n in names}) == 2

        def flow():
            for name in names:
                yield from namespace.bind(ring.configuration_for(name))
            return (yield from namespace.list_suites())

        assert cluster_bed.run(flow()) == sorted(names)

    def test_unbind_routes(self, cluster_bed, namespace):
        ring = PlacementRing(["n1", "n2", "n3", "n4"], seed=5)

        def flow():
            yield from namespace.bind(ring.configuration_for("svc-00"))
            yield from namespace.unbind("svc-00")
            return (yield from namespace.list_suites())

        assert cluster_bed.run(flow()) == []

    def test_open_suite_returns_working_handle(self, cluster_bed,
                                               namespace):
        ring = PlacementRing(["n1", "n2", "n3", "n4"], seed=5)
        config = ring.configuration_for("svc-09")
        cluster_bed.install(config, b"routed")

        def flow():
            yield from namespace.bind(config)
            handle = yield from namespace.open_suite("svc-09")
            result = yield from handle.read()
            return result.data

        assert cluster_bed.run(flow()) == b"routed"

    def test_reserved_names_rejected(self, namespace):
        with pytest.raises(DirectoryError):
            namespace.shard("__dir-0__")
