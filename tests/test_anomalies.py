"""Negative demonstrations: break a protocol rule, observe the anomaly.

Each test disables one of the correctness ingredients and shows the
concrete failure it is there to prevent — executable documentation of
the paper's safety argument:

* version inquiries must gather a full read quorum (not any one
  representative), or reads can return stale committed data;
* ``r + w > N``, or a read quorum can miss the latest write entirely;
* ``2w > N``, or two writes can commit against disjoint quorums and
  collide on the same version number.
"""

import pytest

from tests.helpers import triple_config
from repro.core import Representative, SuiteConfiguration
from repro.core.suite import FileSuiteClient
from repro.errors import QuorumUnavailableError
from repro.testbed import Testbed
from repro.txn.locks import SHARED


def force_quorums(config: SuiteConfiguration, read_quorum: int,
                  write_quorum: int) -> SuiteConfiguration:
    """Bypass validation to build a deliberately illegal configuration."""
    object.__setattr__(config, "read_quorum", read_quorum)
    object.__setattr__(config, "write_quorum", write_quorum)
    return config


class SingleRepInquiryClient(FileSuiteClient):
    """BROKEN ON PURPOSE: accepts the first inquiry response as truth."""

    def _inquire(self, txn, threshold, mode, include_weak, **kwargs):
        return super()._inquire(txn, threshold=1, mode=mode,
                                include_weak=include_weak, **kwargs)


class TestSingleRepInquiry:
    def test_stale_read_anomaly(self):
        """A one-representative 'quorum' returns data that a correct
        client would never serve: version 1 after version 2 committed."""
        bed = Testbed(servers=["s1", "s2", "s3"], seed=41,
                      refresh_enabled=False)
        config = triple_config()
        good = bed.install(config, b"v1-data")
        bed.run(good.write(b"v2-data"))          # quorum {s1, s2}

        node = bed.clients["client"]
        broken = SingleRepInquiryClient(node.manager, config,
                                        metrics=bed.metrics,
                                        max_attempts=1,
                                        inquiry_timeout=100.0)
        # Only the stale representative is reachable.
        bed.crash("s1")
        bed.crash("s2")
        result = bed.run(broken.read())
        assert result.data == b"v1-data"         # the anomaly
        assert result.version == 1

    def test_correct_client_blocks_instead(self):
        bed = Testbed(servers=["s1", "s2", "s3"], seed=41,
                      refresh_enabled=False)
        config = triple_config()
        good = bed.install(config, b"v1-data")
        bed.run(good.write(b"v2-data"))
        good.max_attempts = 1
        good.inquiry_timeout = 100.0
        bed.crash("s1")
        bed.crash("s2")
        # Unavailability, never staleness: the paper's trade.
        with pytest.raises(QuorumUnavailableError):
            bed.run(good.read())


class TestReadWriteQuorumOverlap:
    def test_r_plus_w_leq_n_misses_the_latest_write(self):
        """With r + w = N, a read quorum disjoint from the last write
        quorum serves old data as if it were current."""
        bed = Testbed(servers=["s1", "s2", "s3"], seed=42,
                      refresh_enabled=False)
        config = triple_config()          # starts valid: r=2, w=2
        suite = bed.install(config, b"old")
        bed.run(suite.write(b"new"))      # quorum {s1, s2}

        force_quorums(suite.config, read_quorum=1, write_quorum=2)
        suite.max_attempts = 1
        suite.inquiry_timeout = 100.0
        bed.crash("s1")
        bed.crash("s2")
        result = bed.run(suite.read())    # "quorum" = {s3} alone
        assert result.data == b"old"      # the anomaly
        assert result.version == 1


class TestWriteWriteQuorumOverlap:
    def test_2w_leq_n_collides_version_numbers(self):
        """With 2w = N, two concurrent writers commit against disjoint
        quorums: both claim the same version number for different data,
        and the replicas permanently disagree."""
        servers = ["s1", "s2", "s3", "s4"]
        bed = Testbed(servers=servers, clients=["a", "b"], seed=43,
                      refresh_enabled=False)
        reps = tuple(
            Representative(rep_id=f"rep-{s}", server=s, votes=1,
                           latency_hint=float(i))
            for i, s in enumerate(servers))
        config = SuiteConfiguration(suite_name="db",
                                    representatives=reps,
                                    read_quorum=3, write_quorum=3)
        suite_a = bed.install(config, b"base", client="a")
        suite_b = bed.suite(config, client="b")
        force_quorums(suite_a.config, read_quorum=3, write_quorum=2)
        force_quorums(suite_b.config, read_quorum=3, write_quorum=2)

        # Drive the writers onto disjoint quorums via partitions that
        # each still hold w = 2 votes.
        bed.partition([["a", "s1", "s2"], ["b", "s3", "s4"]])
        write_a = bed.run(suite_a.write(b"from-a"))
        write_b = bed.run(suite_b.write(b"from-b"))
        bed.heal()

        assert write_a.version == write_b.version == 2   # collision!
        stored = {name: node.server.fs.read_file_sync("suite:db")[0]
                  for name, node in bed.servers.items()}
        assert stored["s1"] == b"from-a" and stored["s3"] == b"from-b"
        # Same version number, different contents: currency is now
        # undecidable — exactly what 2w > N forbids.
        versions = {node.server.fs.stat("suite:db").version
                    for node in bed.servers.values()}
        assert versions == {2}

    def test_valid_configuration_prevents_the_collision(self):
        """Same scenario under the legal w = 3: the minority-side
        writer blocks instead of colliding."""
        servers = ["s1", "s2", "s3", "s4"]
        bed = Testbed(servers=servers, clients=["a", "b"], seed=43,
                      refresh_enabled=False)
        reps = tuple(
            Representative(rep_id=f"rep-{s}", server=s, votes=1,
                           latency_hint=float(i))
            for i, s in enumerate(servers))
        config = SuiteConfiguration(suite_name="db",
                                    representatives=reps,
                                    read_quorum=2, write_quorum=3)
        suite_a = bed.install(config, b"base", client="a")
        suite_b = bed.suite(config, client="b")
        suite_a.max_attempts = 1
        suite_b.max_attempts = 1
        suite_a.inquiry_timeout = 100.0
        suite_b.inquiry_timeout = 100.0

        bed.partition([["a", "s1", "s2", "s3"], ["b", "s4"]])
        assert bed.run(suite_a.write(b"from-a")).version == 2
        with pytest.raises(QuorumUnavailableError):
            bed.run(suite_b.write(b"from-b"))
