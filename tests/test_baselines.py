"""Baseline replica-control schemes and their availability shapes."""

import pytest

from repro.baselines import (MajorityConsensusClient, PrimaryCopyClient,
                             ReadOneWriteAllClient, majority_configuration,
                             majority_quorum)
from repro.core import install_suite
from repro.errors import ReproError
from repro.testbed import Testbed


SERVERS = ["s1", "s2", "s3"]


@pytest.fixture
def bed():
    return Testbed(servers=SERVERS, seed=11)


def manager(bed):
    return bed.clients["client"].manager


class TestRowa:
    def build(self, bed, **kwargs):
        client = ReadOneWriteAllClient(
            manager(bed), "obj", SERVERS, metrics=bed.metrics,
            latency_hints={"s1": 1.0, "s2": 2.0, "s3": 3.0}, **kwargs)
        bed.run(client.install(b"v1"))
        return client

    def test_round_trip(self, bed):
        client = self.build(bed)
        bed.run(client.write(b"v2"))
        result = bed.run(client.read())
        assert result.data == b"v2"
        assert result.version == 2

    def test_write_updates_every_replica(self, bed):
        client = self.build(bed)
        bed.run(client.write(b"v2"))
        for server in SERVERS:
            fs = bed.servers[server].server.fs
            assert fs.read_file_sync("rowa:obj") == (b"v2", 2)

    def test_read_touches_single_cheapest(self, bed):
        client = self.build(bed)
        result = bed.run(client.read())
        assert result.replicas == ["s1"]

    def test_read_fails_over_to_next_replica(self, bed):
        client = self.build(bed)
        bed.crash("s1")
        result = bed.run(client.read())
        assert result.replicas == ["s2"]

    def test_read_survives_n_minus_1_failures(self, bed):
        client = self.build(bed)
        bed.crash("s1")
        bed.crash("s2")
        assert bed.run(client.read()).data == b"v1"

    def test_write_blocked_by_single_failure(self, bed):
        client = self.build(bed, max_attempts=1)
        bed.crash("s3")
        with pytest.raises(ReproError):
            bed.run(client.write(b"v2"))


class TestPrimaryCopy:
    def build(self, bed, **kwargs):
        client = PrimaryCopyClient(manager(bed), "obj", SERVERS,
                                   metrics=bed.metrics, **kwargs)
        bed.run(client.install(b"v1"))
        return client

    def test_round_trip(self, bed):
        client = self.build(bed)
        bed.run(client.write(b"v2"))
        assert bed.run(client.read()).data == b"v2"

    def test_write_commits_at_primary_only(self, bed):
        client = self.build(bed)
        result = bed.run(client.write(b"v2"))
        assert result.replicas == ["s1"]

    def test_secondaries_catch_up_asynchronously(self, bed):
        client = self.build(bed)
        bed.run(client.write(b"v2"))
        bed.settle()
        for server in ("s2", "s3"):
            fs = bed.servers[server].server.fs
            assert fs.read_file_sync("primary:obj") == (b"v2", 2)
        assert bed.metrics.counter("primary.propagations").value == 2

    def test_primary_down_blocks_writes(self, bed):
        client = self.build(bed, max_attempts=1)
        bed.crash("s1")
        with pytest.raises(ReproError):
            bed.run(client.write(b"v2"))

    def test_primary_down_blocks_strict_reads(self, bed):
        client = self.build(bed, max_attempts=1)
        bed.crash("s1")
        with pytest.raises(ReproError):
            bed.run(client.read())

    def test_stale_reads_from_secondary(self, bed):
        client = self.build(bed, allow_stale_reads=True)
        bed.run(client.write(b"v2"))
        bed.crash("s1")  # before propagation completes
        result = bed.run(client.read())
        assert result.version in (1, 2)  # staleness is permitted
        assert bed.metrics.counter("primary.stale_reads").value == 1


class TestMajority:
    def test_quorum_sizes(self):
        assert majority_quorum(1) == 1
        assert majority_quorum(3) == 2
        assert majority_quorum(4) == 3
        assert majority_quorum(5) == 3
        with pytest.raises(ValueError):
            majority_quorum(0)

    def test_configuration_is_uniform(self):
        config = majority_configuration("obj", SERVERS)
        assert all(rep.votes == 1 for rep in config.representatives)
        assert config.read_quorum == config.write_quorum == 2
        config.validate()

    def test_operates_with_minority_down(self, bed):
        client = MajorityConsensusClient.build(
            manager(bed), "obj", SERVERS, metrics=bed.metrics)
        bed.run(install_suite(manager(bed), client.config, b"v1"))
        bed.crash("s3")
        assert bed.run(client.write(b"v2")).version == 2
        assert bed.run(client.read()).data == b"v2"

    def test_blocks_with_majority_down(self, bed):
        client = MajorityConsensusClient.build(
            manager(bed), "obj", SERVERS, metrics=bed.metrics,
            max_attempts=1)
        bed.run(install_suite(manager(bed), client.config, b"v1"))
        bed.crash("s2")
        bed.crash("s3")
        with pytest.raises(ReproError):
            bed.run(client.read())


class TestComparativeShape:
    """The qualitative comparison the paper draws (experiment T2's
    invariants): voting trades a little read availability for much
    better write availability than ROWA; primary copy is bounded by
    one machine."""

    def test_one_crash_rowa_vs_voting(self, bed):
        rowa = ReadOneWriteAllClient(manager(bed), "r", SERVERS,
                                     max_attempts=1)
        voting = MajorityConsensusClient.build(
            manager(bed), "v", SERVERS, max_attempts=1)
        bed.run(rowa.install(b"x"))
        bed.run(install_suite(manager(bed), voting.config, b"x"))
        bed.crash("s2")
        # ROWA: reads fine, writes dead.  Voting: both fine.
        assert bed.run(rowa.read()).data == b"x"
        with pytest.raises(ReproError):
            bed.run(rowa.write(b"y"))
        assert bed.run(voting.write(b"y")).version == 2
        assert bed.run(voting.read()).data == b"y"
