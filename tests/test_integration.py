"""End-to-end scenarios across the whole stack."""

import pytest

from tests.helpers import triple_config
from repro.core import install_suite, make_configuration
from repro.errors import ReproError
from repro.testbed import Testbed, example_data, example_testbed
from repro.workload import ClosedLoopDriver, OperationMix, PayloadShape


class TestExampleTestbeds:
    """Simulated latencies of the paper's examples track the analytic
    model: exact per-representative costs plus bounded protocol
    overhead (message round trips and commit rounds)."""

    @pytest.mark.parametrize("example,paper_read,paper_write", [
        (1, 65.0, 75.0), (2, 75.0, 100.0), (3, 75.0, 750.0)])
    def test_latency_shape(self, example, paper_read, paper_write):
        bed, config = example_testbed(example)
        suite = bed.install(config, example_data())

        def timed(operation):
            start = bed.sim.now
            yield from operation
            return bed.sim.now - start

        read_latency = bed.run(timed(suite.read()))
        write_latency = bed.run(timed(suite.write(example_data(b"w"))))
        assert paper_read <= read_latency <= paper_read * 1.15
        assert paper_write <= write_latency <= paper_write * 1.45

    def test_relative_ordering_matches_paper(self):
        measured = {}
        for example in (1, 2, 3):
            bed, config = example_testbed(example)
            suite = bed.install(config, example_data())

            def timed(operation):
                start = bed.sim.now
                yield from operation
                return bed.sim.now - start

            read = bed.run(timed(suite.read()))
            write = bed.run(timed(suite.write(example_data(b"w"))))
            measured[example] = (read, write)
        # Example 1 reads fastest (weak rep); example 3 writes slowest.
        assert measured[1][0] < measured[2][0]
        assert measured[3][1] > measured[2][1] > measured[1][1]


class TestCrashDuringTraffic:
    def test_workload_survives_rolling_crashes(self):
        bed = Testbed(servers=["s1", "s2", "s3"], seed=21)
        suite = bed.install(triple_config(), b"x" * 500)
        suite.retry_backoff = 100.0
        driver = ClosedLoopDriver(
            bed.sim, suite, OperationMix(read_fraction=0.7),
            payload=PayloadShape(size=500), think_time=20.0,
            streams=bed.streams)

        def roll():
            for server in ("s1", "s2", "s3"):
                yield bed.sim.timeout(150.0)
                bed.crash(server)
                yield bed.sim.timeout(150.0)
                bed.restart(server)

        bed.sim.spawn(roll(), name="roller")
        stats = bed.run(driver.run(60))
        # One server down at a time never removes the 2-of-3 quorum.
        assert stats.operations == 60
        assert stats.blocked == 0

    def test_state_consistent_after_chaos(self):
        bed = Testbed(servers=["s1", "s2", "s3"], seed=22)
        suite = bed.install(triple_config(), b"v0")

        def chaos():
            for i in range(6):
                yield bed.sim.timeout(97.0)
                server = f"s{(i % 3) + 1}"
                bed.crash(server)
                yield bed.sim.timeout(53.0)
                bed.restart(server)

        def writes():
            for i in range(12):
                yield from suite.write(f"v{i + 1}".encode())
                yield bed.sim.timeout(60.0)

        chaos_process = bed.sim.spawn(chaos(), name="chaos")
        bed.run(writes())
        bed.settle(30_000.0)
        result = bed.run(suite.read())
        assert result.data == b"v12"
        assert result.version == 13
        # After quiescence every representative converged.
        versions = {node.server.fs.stat("suite:db").version
                    for node in bed.servers.values()}
        assert versions == {13}

    def test_crash_mid_write_is_atomic_at_suite_level(self):
        bed = Testbed(servers=["s1", "s2", "s3"], seed=23)
        suite = bed.install(triple_config(), b"before")

        def crash_soon():
            yield bed.sim.timeout(3.0)  # inside the write window
            bed.crash("s1")
            yield bed.sim.timeout(500.0)
            bed.restart("s1")

        bed.sim.spawn(crash_soon(), name="crasher")
        try:
            bed.run(suite.write(b"after"))
            wrote = True
        except ReproError:
            wrote = False
        bed.settle(30_000.0)
        result = bed.run(suite.read())
        if wrote:
            assert result.data == b"after"
        else:
            assert result.data in (b"before", b"after")
        # No torn mixture: every server stores one of the two values.
        for node in bed.servers.values():
            data, _ = node.server.fs.read_file_sync("suite:db")
            assert data in (b"before", b"after")


class TestMultiSuite:
    def test_independent_suites_do_not_interfere(self):
        bed = Testbed(servers=["s1", "s2", "s3"], seed=24)
        cfg_a = make_configuration(
            "alpha", [("s1", 1), ("s2", 1), ("s3", 1)], 2, 2)
        cfg_b = make_configuration(
            "beta", [("s1", 2), ("s2", 1), ("s3", 1)], 2, 3)
        suite_a = bed.install(cfg_a, b"A")
        suite_b = bed.install(cfg_b, b"B")
        bed.run(suite_a.write(b"A2"))
        assert bed.run(suite_a.read()).data == b"A2"
        assert bed.run(suite_b.read()).data == b"B"

    def test_cross_suite_transaction_atomic(self):
        """A transaction spanning two suites commits both writes or
        neither — the property Violet relies on."""
        bed = Testbed(servers=["s1", "s2", "s3"], seed=25)
        cfg_a = make_configuration(
            "alpha", [("s1", 1), ("s2", 1), ("s3", 1)], 2, 2)
        cfg_b = make_configuration(
            "beta", [("s1", 1), ("s2", 1), ("s3", 1)], 2, 2)
        suite_a = bed.install(cfg_a, b"A")
        suite_b = bed.install(cfg_b, b"B")
        manager = bed.clients["client"].manager

        def both():
            txn = manager.begin()
            yield from suite_a.write_in(txn, b"A2")
            yield from suite_b.write_in(txn, b"B2")
            yield from txn.commit()

        bed.run(both())
        assert bed.run(suite_a.read()).data == b"A2"
        assert bed.run(suite_b.read()).data == b"B2"


class TestManyServers:
    def test_five_rep_weighted_suite(self):
        servers = [f"s{i}" for i in range(1, 6)]
        bed = Testbed(servers=servers, seed=26)
        config = make_configuration(
            "wide", [("s1", 3), ("s2", 2), ("s3", 2), ("s4", 1),
                     ("s5", 1)],
            read_quorum=4, write_quorum=6,
            latency_hints={s: float(i) for i, s in enumerate(servers)})
        suite = bed.install(config, b"wide-data")
        assert bed.run(suite.read()).data == b"wide-data"
        # Two crashes leave 3+2+1=6 votes in the best case.
        bed.crash("s4")
        bed.crash("s5")
        result = bed.run(suite.write(b"still-writable"))
        assert result.version == 2
        bed.restart("s4")
        bed.restart("s5")
        bed.settle(30_000.0)
        versions = {node.server.fs.stat("suite:wide").version
                    for node in bed.servers.values()}
        assert versions == {2}
