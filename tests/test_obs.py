"""Observability: causal spans, sinks, exposition, CLI and wiring.

Covers the obs package's primitives (spans, collector, Prometheus
rendering, timelines), the per-layer instrumentation (RPC endpoint,
2PC coordinator, suite client, participant version-lag gauges), and the
two acceptance scenarios: a quorum write on the deterministic testbed
and on the live loopback cluster must each produce one stitched trace —
one trace id spanning coordinator and participants, with parent links
and both two-phase-commit phases — and a live daemon must expose
Prometheus text on ``/metrics``.
"""

import asyncio
import io
import json

import pytest

from repro.cli import main as cli_main
from repro.core import change_configuration, make_configuration
from repro.core.examples import example_configuration
from repro.live import LoopbackCluster
from repro.obs import (NOOP_SPAN, JsonlSink, RingBufferSink,
                       TraceCollector, TraceContext, breakdown,
                       dump_jsonl, dumps_jsonl, fetch, group_traces,
                       load_jsonl, parse_exposition, render_registry,
                       render_trace, split_labels, summarize)
from repro.sim.metrics import Histogram, MetricsRegistry
from repro.sim.simulator import Simulator
from repro.sim.trace import Tracer
from repro.testbed import Testbed


def make_config(name="obs", servers=("s1", "s2", "s3"), r=2, w=2):
    return make_configuration(
        name, [(server, 1) for server in servers], r, w,
        latency_hints={server: 10.0 * (index + 1)
                       for index, server in enumerate(servers)})


# ---------------------------------------------------------------------------
# Primitives
# ---------------------------------------------------------------------------

class TestCollector:
    def test_trace_and_child_spans(self):
        clock = iter(range(100))
        collector = TraceCollector(clock=lambda: float(next(clock)),
                                   origin="p1")
        root = collector.start_trace("op", kind="client", suite="f")
        child = collector.start_span("phase", parent=root)
        child.event("tick", n=1)
        child.end()
        root.end()
        spans = collector.spans()
        assert [span.name for span in spans] == ["phase", "op"]
        assert child.trace_id == root.trace_id == "p1-t1"
        assert child.parent_id == root.span_id
        assert root.parent_id is None
        assert child.events[0].name == "tick"
        assert root.attrs == {"suite": "f"}

    def test_disabled_collector_is_noop(self):
        collector = TraceCollector(clock=lambda: 0.0, enabled=False)
        span = collector.start_trace("op")
        assert span is NOOP_SPAN
        assert not span
        assert span.context is None
        span.event("ignored")
        span.end(error="ignored")
        assert collector.spans() == []
        assert collector.start_span("child", parent=span) is NOOP_SPAN

    def test_remote_context_parents_server_span(self):
        collector = TraceCollector(clock=lambda: 0.0, origin="server")
        context = TraceContext.from_wire(
            {"trace_id": "client-t9", "span_id": "client-s4"})
        span = collector.start_span("rpc.read", parent=context,
                                    kind="server")
        span.end()
        assert span.trace_id == "client-t9"
        assert span.parent_id == "client-s4"
        assert span.origin == "server"

    def test_error_end_records_status(self):
        collector = TraceCollector(clock=lambda: 0.0)
        span = collector.start_trace("op")
        span.end(error="boom")
        span.end(error="again")  # idempotent
        (finished,) = collector.spans()
        assert finished.status == "error"
        assert finished.error == "boom"

    def test_ring_buffer_counts_drops(self):
        sink = RingBufferSink(capacity=2)
        collector = TraceCollector(clock=lambda: 0.0, sinks=None,
                                   capacity=2)
        for index in range(5):
            collector.start_trace(f"op{index}").end()
        assert len(collector.spans()) == 2
        assert collector.dropped == 3
        assert [span.name for span in collector.spans()] == ["op3", "op4"]
        sink.emit(collector.spans()[0])
        assert sink.dropped == 0

    def test_jsonl_sink_owned_file_flushes_on_close(self, tmp_path):
        # Regression: the sink opens (and therefore owns) the file when
        # given a path; closing must flush buffered spans to disk and
        # actually close the handle, and must be safe to call twice.
        path = tmp_path / "spans.jsonl"
        collector = TraceCollector(clock=lambda: 0.0, origin="p")
        sink = JsonlSink(str(path))
        collector.sinks.append(sink)
        collector.start_trace("op").end()
        sink.close()
        assert sink.closed
        sink.close()  # idempotent
        sink.flush()  # no-op after close, never raises
        loaded = load_jsonl(str(path))
        assert [span.name for span in loaded] == ["op"]
        with pytest.raises(ValueError):
            sink.emit(collector.spans()[0])

    def test_jsonl_sink_context_manager(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        collector = TraceCollector(clock=lambda: 0.0, origin="p")
        with JsonlSink(str(path)) as sink:
            collector.sinks.append(sink)
            collector.start_trace("a").end()
            collector.start_trace("b").end()
        assert sink.closed
        assert [span.name for span in load_jsonl(str(path))] == ["a", "b"]

    def test_jsonl_sink_leaves_caller_handle_open(self):
        handle = io.StringIO()
        collector = TraceCollector(clock=lambda: 0.0)
        with JsonlSink(handle) as sink:
            collector.sinks.append(sink)
            collector.start_trace("op").end()
        assert not handle.closed  # caller owns its handle's lifetime
        assert len(load_jsonl(io.StringIO(handle.getvalue()))) == 1

    def test_jsonl_roundtrip(self):
        collector = TraceCollector(clock=lambda: 1.5, origin="x")
        root = collector.start_trace("op", kind="client", k="v")
        child = collector.start_span("inner", parent=root)
        child.event("e", a=1)
        child.end()
        root.end(error="late")
        text = dumps_jsonl(collector.spans())
        loaded = load_jsonl(io.StringIO(text))
        assert len(loaded) == 2
        by_name = {span.name: span for span in loaded}
        assert by_name["inner"].parent_id == root.span_id
        assert by_name["inner"].events[0].attrs == {"a": 1}
        assert by_name["op"].status == "error"
        assert by_name["op"].attrs == {"k": "v"}


class TestProm:
    def test_labelled_names_render_as_series(self):
        registry = MetricsRegistry()
        registry.counter("rpc.calls_sent").increment(3)
        registry.gauge("rep.version_lag[file=suite:f,server=s1]").set(2.0)
        registry.histogram("suite.quorum_wait").observe(4.0)
        text = render_registry(registry)
        assert "# TYPE repro_rpc_calls_sent_total counter" in text
        assert "repro_rpc_calls_sent_total 3" in text
        assert ('repro_rep_version_lag{file="suite:f",server="s1"} 2'
                in text)
        assert ('repro_rep_version_lag_max{file="suite:f",server="s1"} 2'
                in text)
        assert 'repro_suite_quorum_wait{quantile="0.5"} 4' in text
        assert "repro_suite_quorum_wait_count 1" in text

    def test_parse_inverts_render(self):
        registry = MetricsRegistry()
        registry.counter("a.b").increment()
        registry.gauge("g[x=1]").set(-2.5)
        samples = parse_exposition(render_registry(
            registry, extra={"ring.dropped": 7.0}))
        as_map = {(name, tuple(sorted(labels.items()))): value
                  for name, labels, value in samples}
        assert as_map[("repro_a_b_total", ())] == 1.0
        assert as_map[("repro_g", (("x", "1"),))] == -2.5
        assert as_map[("repro_ring_dropped", ())] == 7.0

    def test_split_labels(self):
        assert split_labels("plain") == ("plain", {})
        assert split_labels("f[a=1,b=x y]") == ("f", {"a": "1",
                                                     "b": "x y"})


class TestSatellites:
    def test_tracer_counts_capacity_drops(self, ):
        sim = Simulator()
        tracer = Tracer(sim, enabled=True, capacity=2)
        for index in range(5):
            tracer.record("c", "e", i=index)
        assert len(tracer.records) == 2
        assert tracer.dropped == 3
        assert tracer.stats() == {"records": 2, "dropped": 3,
                                  "capacity": 2}
        assert "3 record(s) dropped" in tracer.dump()
        tracer.clear()
        assert tracer.dropped == 0

    def test_snapshot_includes_gauge_maximum(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("inflight")
        gauge.set(4.0)
        gauge.set(1.0)
        snapshot = registry.snapshot()
        assert snapshot["gauges"]["inflight"] == {"value": 1.0,
                                                 "max": 4.0}

    def test_histogram_sort_cache_tracks_observations(self):
        histogram = Histogram("lat")
        for value in (3.0, 1.0, 2.0):
            histogram.observe(value)
        assert histogram.percentile(50) == 2.0
        assert histogram._sorted == [1.0, 2.0, 3.0]  # cached
        histogram.observe(0.0)  # invalidates
        assert histogram._sorted is None
        assert histogram.percentile(0) == 0.0
        summary = histogram.summary()
        assert summary["p50"] == 1.5
        histogram.samples = [5.0]  # wholesale assignment invalidates
        assert histogram.percentile(100) == 5.0


class TestLabelEscaping:
    """Round-trip of label values through the exposition format.

    A chained-``replace`` unescape pairs the wrong backslash with the
    quote in mixed sequences, so the decoder scans left to right; these
    values are the ones that told the two apart."""

    HOSTILE = ['plain', 'quo"te', 'back\\slash', 'both\\"mixed',
               '\\\\"', 'trailing\\', 'new\nline', '\\"\\"\\"']

    def test_values_survive_render_and_parse(self):
        registry = MetricsRegistry()
        for index, value in enumerate(self.HOSTILE):
            registry.gauge(f"g{index}[v={value}]").set(float(index))
        samples = parse_exposition(render_registry(registry))
        decoded = {name: labels["v"] for name, labels, _value in samples
                   if "v" in labels and not name.endswith("_max")}
        for index, value in enumerate(self.HOSTILE):
            assert decoded[f"repro_g{index}"] == value


class TestTornJsonl:
    def _spans(self, count=4):
        clock = iter(range(100))
        collector = TraceCollector(clock=lambda: float(next(clock)),
                                   origin="p1")
        for index in range(count):
            collector.start_trace(f"op{index}").end()
        return collector.spans()

    def test_truncated_final_line_is_dropped(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        with open(path, "w", encoding="utf-8") as handle:
            dump_jsonl(self._spans(), handle)
        raw = path.read_text()
        path.write_text(raw[:-20])           # crash mid-final-record
        log = load_jsonl(str(path))
        assert len(log) == 3
        assert log.dropped_bytes > 0
        assert [span.name for span in log] == ["op0", "op1", "op2"]

    def test_intact_file_reports_no_drops(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        with open(path, "w", encoding="utf-8") as handle:
            dump_jsonl(self._spans(), handle)
        log = load_jsonl(str(path))
        assert len(log) == 4
        assert log.dropped_bytes == 0

    def test_corruption_before_real_records_still_raises(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        with open(path, "w", encoding="utf-8") as handle:
            dump_jsonl(self._spans(), handle)
        lines = path.read_text().splitlines()
        lines[1] = lines[1][:10]             # a hole, not a torn tail
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError):
            load_jsonl(str(path))


class TestJsonlSinkRotation:
    def _span(self):
        clock = iter(range(100))
        collector = TraceCollector(clock=lambda: float(next(clock)),
                                   origin="p1")
        collector.start_trace("op", pad="x" * 128).end()
        return collector.spans()[0]

    def test_rotation_bounds_retained_bytes(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        sink = JsonlSink(path, max_bytes=1024, keep=3)
        for _index in range(64):
            sink.emit(self._span())
        sink.close()
        assert sink.rotations > 2
        names = sorted(p.name for p in tmp_path.iterdir())
        assert names == ["trace.jsonl", "trace.jsonl.1",
                         "trace.jsonl.2"]
        for name in names[1:]:
            assert (tmp_path / name).stat().st_size <= 1024
        # The retained window reads back oldest-first, torn-free.
        retained = []
        for name in ["trace.jsonl.2", "trace.jsonl.1", "trace.jsonl"]:
            retained.extend(load_jsonl(str(tmp_path / name)))
        assert len(retained) >= 6            # keep * (cap / span size)

    def test_rotation_requires_a_path(self):
        with pytest.raises(ValueError):
            JsonlSink(io.StringIO(), max_bytes=4096)

    def test_tiny_cap_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            JsonlSink(str(tmp_path / "t.jsonl"), max_bytes=10)


# ---------------------------------------------------------------------------
# Stitched traces: deterministic testbed
# ---------------------------------------------------------------------------

class TestTestbedTracing:
    def test_quorum_write_produces_one_stitched_trace(self):
        bed = Testbed(servers=["s1", "s2", "s3"], obs=True)
        config = make_config()
        suite = bed.install(config, b"v1")
        bed.collector.ring.clear()

        write = bed.run(suite.write(b"v2"))
        spans = bed.collector.spans()
        roots = [span for span in spans
                 if span.parent_id is None and span.name == "suite.write"]
        assert len(roots) == 1
        root = roots[0]
        members = [span for span in spans
                   if span.trace_id == root.trace_id]
        names = {span.name for span in members}
        assert {"suite.write", "quorum.assemble", "2pc.prepare",
                "2pc.commit"} <= names

        # Parent links: every non-root member resolves inside the trace.
        ids = {span.span_id for span in members}
        for span in members:
            if span is not root:
                assert span.parent_id in ids

        # Server-side spans cover every quorum participant, each hanging
        # off the coordinator's matching client-side RPC span.
        server_spans = [span for span in members if span.kind == "server"]
        by_id = {span.span_id: span for span in members}
        for span in server_spans:
            assert by_id[span.parent_id].kind == "client"
        quorum_servers = {rep.server for rep in config.representatives
                          if rep.rep_id in write.quorum}
        stage_servers = {span.attrs.get("destination")
                         for span in members
                         if span.kind == "client"
                         and span.name == "rpc.txn.stage_write"}
        assert quorum_servers <= stage_servers

        # The quorum-assembly span carries its version-collect events.
        (qspan,) = [span for span in members
                    if span.name == "quorum.assemble"]
        assert any(event.name == "version.collect"
                   for event in qspan.events)
        assert any(event.name == "quorum.satisfied"
                   for event in qspan.events)

    def test_obs_disabled_by_default_and_costless(self):
        bed = Testbed(servers=["s1", "s2", "s3"])
        suite = bed.install(make_config(), b"v1")
        bed.run(suite.write(b"v2"))
        assert bed.collector.spans() == []

    def test_quorum_metrics_and_version_lag(self):
        bed = Testbed(servers=["s1", "s2", "s3"], obs=True)
        suite = bed.install(make_config(), b"v1")

        bed.crash("s3")
        bed.run(suite.write(b"v2"))   # s3 left stale at version 1
        bed.restart("s3")
        bed.settle()                  # background refresh repairs s3

        # While the refresher's stage landed, s3 was one version behind
        # the suite; once the repair committed, its copy is current.
        lag = bed.metrics.gauge(
            f"rep.version_lag[file={suite.config.file_name},server=s3]")
        assert lag.maximum >= 1.0     # observed while catching up
        assert lag.value == 0.0       # reset when the commit applied

        counters = bed.metrics.counters()
        assert counters["rpc.calls_sent"] > 0
        assert counters["rpc.requests_served"] > 0
        assert bed.metrics.histogram("suite.quorum_wait").count >= 2
        sizes = bed.metrics.histogram("suite.quorum_size").samples
        assert sizes and all(size >= 2 for size in sizes)

    def test_config_adoption_counted_in_attempts(self):
        """Regression: a ``StaleConfigurationError`` restart used to
        leave ``result.attempts`` at 1 and the trace silent — the
        result claimed a one-shot read that actually ran two
        transactions.  Both the result and the root span must count
        the adoption round."""
        bed = Testbed(servers=["s1", "s2", "s3"], obs=True)
        suite = bed.install(make_config(), b"data")
        bed.run(change_configuration(suite, make_config(r=1, w=3)))
        bed.settle()
        stale = bed.suite(make_config())
        bed.collector.ring.clear()

        result = bed.run(stale.read())
        assert result.data == b"data"
        assert stale.config.config_version == 2
        assert result.attempts == 2
        assert result.config_refreshes == 1

        roots = [span for span in bed.collector.spans()
                 if span.parent_id is None and span.name == "suite.read"]
        assert len(roots) == 1
        root = roots[0]
        assert root.attrs["attempts"] == 2
        assert root.attrs["config_refreshes"] == 1
        assert any(event.name == "config.adopted"
                   for event in root.events)

    def test_rpc_timeout_counters(self):
        bed = Testbed(servers=["s1", "s2", "s3"], call_timeout=100.0)
        suite = bed.install(make_config(), b"v1")
        suite.refresher.enabled = False
        suite.max_attempts = 1
        suite.inquiry_timeout = 150.0
        bed.crash("s2")
        bed.crash("s3")
        with pytest.raises(Exception):
            bed.run(suite.read())
        bed.settle(grace=2_000.0)
        counters = bed.metrics.counters()
        assert counters.get("rpc.timeouts", 0) > 0
        assert counters.get("rpc.retransmissions", 0) > 0
        assert counters.get("suite.quorum_failures", 0) >= 1


# ---------------------------------------------------------------------------
# Stitched traces: live loopback cluster
# ---------------------------------------------------------------------------

class TestLiveTracing:
    def test_loopback_write_stitches_one_trace(self):
        config = make_config("obs-live")

        async def scenario():
            async with LoopbackCluster(["s1", "s2", "s3"]) as cluster:
                suite = await cluster.install(config, b"v1")
                cluster.client.collector.ring.clear()
                write = await cluster.write(suite, b"v2")
                return write, cluster.merged_spans()

        write, spans = asyncio.run(scenario())
        roots = [span for span in spans
                 if span.parent_id is None and span.name == "suite.write"]
        assert len(roots) == 1
        root = roots[0]
        members = [span for span in spans
                   if span.trace_id == root.trace_id]

        # One trace id covering the coordinator and every quorum
        # participant's server-side spans.
        assert root.origin == "client"
        server_origins = {span.origin for span in members
                          if span.kind == "server"}
        quorum_servers = {rep.server for rep in config.representatives
                          if rep.rep_id in write.quorum}
        assert quorum_servers <= server_origins

        # Both 2PC phases, with resolvable parent links throughout.
        names = {span.name for span in members}
        assert {"quorum.assemble", "2pc.prepare", "2pc.commit"} <= names
        ids = {span.span_id for span in members}
        for span in members:
            if span is not root:
                assert span.parent_id in ids

        # The merged trace exports as JSONL and reloads intact.
        text = dumps_jsonl(members)
        assert len(load_jsonl(io.StringIO(text))) == len(members)

    def test_metrics_endpoint_serves_prometheus_text(self):
        config = make_config("obs-scrape")

        async def scenario():
            async with LoopbackCluster(["s1", "s2", "s3"]) as cluster:
                suite = await cluster.install(config, b"v1")
                await cluster.write(suite, b"v2")
                results = {}
                for name, (host, port) in cluster.obs_addresses().items():
                    status, body = await fetch(host, port, "/metrics")
                    health_status, health = await fetch(host, port,
                                                        "/healthz")
                    trace_status, trace = await fetch(host, port,
                                                      "/trace")
                    results[name] = (status, body, health_status,
                                     json.loads(health), trace_status,
                                     trace)
                return results

        results = asyncio.run(scenario())
        assert set(results) == {"s1", "s2", "s3"}
        staged = 0
        for name, (status, body, health_status, health, trace_status,
                   trace) in results.items():
            assert status == 200
            assert "# TYPE repro_rpc_requests_served_total counter" \
                in body
            assert health_status == 200
            assert health["status"] == "ok"
            assert health["server"] == name
            assert health["commits"] >= 1
            assert trace_status == 200
            if "repro_rep_version_lag" in body:
                staged += 1
                samples = {sample_name
                           for sample_name, _, _ in
                           parse_exposition(body)}
                assert "repro_rep_version_lag" in samples
                spans = load_jsonl(io.StringIO(trace))
                assert any(span.kind == "server" for span in spans)
        # The write staged on at least a write quorum of servers.
        assert staged >= 2

    def test_obs_false_disables_tracing_and_endpoint(self):
        config = make_config("obs-off")

        async def scenario():
            async with LoopbackCluster(["s1", "s2", "s3"],
                                       obs=False) as cluster:
                suite = await cluster.install(config, b"v1")
                await cluster.write(suite, b"v2")
                return cluster.obs_addresses(), cluster.merged_spans()

        addresses, spans = asyncio.run(scenario())
        assert addresses == {}
        assert spans == []


# ---------------------------------------------------------------------------
# Timelines and CLI
# ---------------------------------------------------------------------------

class TestTimelineAndCli:
    def _traced_bed(self):
        bed = Testbed(servers=["s1", "s2", "s3"], obs=True)
        suite = bed.install(make_config(), b"v1")
        bed.collector.ring.clear()
        bed.run(suite.read())
        bed.run(suite.write(b"v2"))
        return bed

    def test_render_and_summarize(self):
        bed = self._traced_bed()
        spans = bed.collector.spans()
        summaries = summarize(spans)
        names = [summary.root_name for summary in summaries]
        assert "suite.read" in names and "suite.write" in names
        traces = group_traces(spans)
        write_id = next(summary.trace_id for summary in summaries
                        if summary.root_name == "suite.write")
        text = render_trace(traces[write_id])
        assert "suite.write" in text
        assert "2pc.prepare" in text
        assert "quorum.satisfied" in text

    def test_breakdown_feeds_bench_rows(self):
        bed = self._traced_bed()
        rows = breakdown(bed.collector.spans())
        assert rows["2pc.prepare"][0] == 1
        assert rows["quorum.assemble"][0] == 2  # one read, one write
        for _name, (count, mean) in rows.items():
            assert count >= 1 and mean >= 0.0

    def test_trace_cli_lists_and_renders(self, tmp_path, capsys):
        bed = self._traced_bed()
        export = tmp_path / "spans.jsonl"
        assert bed.collector.export_jsonl(str(export)) > 0

        assert cli_main(["trace", str(export), "--list"]) == 0
        listing = capsys.readouterr().out
        assert "suite.write" in listing

        assert cli_main(["trace", str(export),
                         "--operation", "suite.write"]) == 0
        rendered = capsys.readouterr().out
        assert "2pc.commit" in rendered
        assert "suite.read" not in rendered

        assert cli_main(["trace", str(export), "--trace-id",
                         "nope"]) == 1

    def test_metrics_cli_reports_unreachable(self, capsys):
        # Port 1 on loopback: nothing listens there.
        assert cli_main(["metrics", "--port", "1",
                         "--timeout", "0.5"]) == 1
        assert "cannot scrape" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# Timeline edge cases
# ---------------------------------------------------------------------------

class TestTimelineEdges:
    def _collector(self, origin=""):
        clock = iter(range(1000))
        return TraceCollector(clock=lambda: float(next(clock)),
                              origin=origin)

    def test_render_empty_span_set(self):
        assert render_trace([]) == "(no spans)"
        assert summarize([]) == []
        assert breakdown([]) == {}

    def test_orphan_spans_are_marked_not_dropped(self):
        # A child whose parent's process was not merged into the export:
        # it must still render, flagged, under the orphan marker.
        collector = self._collector(origin="server")
        remote = TraceContext(trace_id="client-t1", span_id="client-s1")
        orphan = collector.start_span("rpc.serve", parent=remote,
                                      kind="server")
        orphan.end()
        text = render_trace(collector.spans())
        assert "(parent span not in this export:)" in text
        assert "rpc.serve" in text
        # The summary still reports the trace, with unknown root facts.
        (summary,) = summarize(collector.spans())
        assert summary.trace_id == "client-t1"
        assert summary.root_name == "?"
        assert summary.span_count == 1

    def test_multi_origin_merge_via_load_jsonl(self, tmp_path):
        # Client and server each export their own JSONL file; merging
        # the two reassembles one stitched trace with resolvable links.
        client = self._collector(origin="client")
        root = client.start_trace("suite.write", kind="client")
        rpc = client.start_span("rpc.stage", parent=root, kind="client")

        server = self._collector(origin="server")
        serve = server.start_span("rpc.serve", parent=rpc.context,
                                  kind="server")
        serve.end()
        rpc.end()
        root.end()

        client_path = tmp_path / "client.jsonl"
        server_path = tmp_path / "server.jsonl"
        client.export_jsonl(str(client_path))
        server.export_jsonl(str(server_path))

        merged = load_jsonl(str(client_path)) + load_jsonl(
            str(server_path))
        traces = group_traces(merged)
        assert set(traces) == {root.trace_id}
        members = traces[root.trace_id]
        assert len(members) == 3
        ids = {span.span_id for span in members}
        assert all(span.parent_id in ids for span in members
                   if span.parent_id is not None)
        text = render_trace(members)
        # Fully stitched: no orphan marker, server span nested under the
        # client RPC at depth 2.
        assert "(parent span not in this export:)" not in text
        assert "@server" in text and "@client" in text
        (summary,) = summarize(members)
        assert summary.root_name == "suite.write"
        assert summary.span_count == 3
