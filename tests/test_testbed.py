"""The deployment builder."""

import pytest

from tests.helpers import triple_config
from repro.testbed import (EXAMPLE_BASE_LATENCY, EXAMPLE_DATA_SIZE,
                           Testbed, example_data, example_testbed)


class TestConstruction:
    def test_builds_servers_and_clients(self):
        bed = Testbed(servers=["a", "b"], clients=["c1", "c2"])
        assert set(bed.servers) == {"a", "b"}
        assert set(bed.clients) == {"c1", "c2"}
        for node in bed.servers.values():
            assert node.server.up
            assert node.participant is not None

    def test_install_returns_working_handle(self, bed):
        suite = bed.install(triple_config(), b"hello")
        assert bed.run(suite.read()).data == b"hello"

    def test_suite_handles_share_metrics(self, bed):
        suite_one = bed.install(triple_config(name="one"), b"1")
        suite_two = bed.install(triple_config(name="two"), b"2")
        bed.run(suite_one.read())
        bed.run(suite_two.read())
        assert bed.metrics.counter("suite.reads").value == 2

    def test_add_server_after_construction(self, bed):
        bed.add_server("s4")
        assert bed.servers["s4"].server.up

    def test_crash_restart_helpers(self, bed):
        bed.crash("s1")
        assert not bed.servers["s1"].server.up
        bed.restart("s1")
        assert bed.servers["s1"].server.up

    def test_settle_advances_time(self, bed):
        before = bed.sim.now
        bed.settle(500.0)
        assert bed.sim.now == before + 500.0


class TestExampleTestbed:
    def test_builds_all_examples(self):
        for number in (1, 2, 3):
            bed, config = example_testbed(number)
            assert set(bed.servers) == {rep.server
                                        for rep in config.representatives}

    def test_link_budget_matches_example_latency(self):
        bed, config = example_testbed(2)
        # Transferring the example payload over the rep-3 link costs
        # its 750ms latency minus the base round trip.
        byte_time = bed.network.byte_time_between("client", "server-3")
        assert byte_time * EXAMPLE_DATA_SIZE == pytest.approx(
            750.0 - 2 * EXAMPLE_BASE_LATENCY)

    def test_example_data_size(self):
        assert len(example_data()) == EXAMPLE_DATA_SIZE
