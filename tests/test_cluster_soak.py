"""The invariant-checked cluster soak with a mid-run server join."""

import pytest

from repro.cluster.soak import (ClusterSoakConfig, ClusterSoakReport,
                                run_cluster_sim_soak)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterSoakConfig(ops=1)
        with pytest.raises(ValueError):
            ClusterSoakConfig(join_at=0.0)
        with pytest.raises(ValueError):
            ClusterSoakConfig(join_at=1.0)

    def test_spec_derivation(self):
        spec = ClusterSoakConfig(servers=4, suites=3, seed=9).spec()
        assert spec.servers == 4
        assert spec.suites == 3
        assert spec.seed == 9


class TestClusterSoak:
    def test_soak_with_join_passes_invariants(self):
        config = ClusterSoakConfig(seed=11)
        report = run_cluster_sim_soak(config)
        assert report.ok, report.summary()
        # The chaos policy actually interfered...
        assert report.chaos_stats["dropped"] > 0
        assert report.chaos_stats["delayed"] > 0
        # ...and the join actually rebalanced mid-run.
        assert report.plan is not None
        assert report.plan.moved_suites > 0
        assert "OK" in report.summary()
        assert "move" in report.summary()

    def test_every_suite_served_and_converged(self):
        config = ClusterSoakConfig(seed=11)
        report = run_cluster_sim_soak(config)
        assert set(report.reports) == set(config.spec().suite_names)
        for name, suite_report in report.reports.items():
            # Convergence reads ran on every suite after healing.
            assert suite_report.successful_reads >= config.final_reads
        # Moved suites carry the synthetic reconfiguration commit.
        moved = sorted(report.plan.moves)[0]
        kinds = [op.kind for op in report.histories[moved] if op.ok]
        assert "write" in kinds

    def test_deterministic_per_seed(self):
        one = run_cluster_sim_soak(ClusterSoakConfig(seed=7))
        two = run_cluster_sim_soak(ClusterSoakConfig(seed=7))
        assert one.ok and two.ok
        assert one.chaos_stats == two.chaos_stats
        assert one.elapsed_ms == two.elapsed_ms
        assert {n: r.summary() for n, r in one.reports.items()} == \
            {n: r.summary() for n, r in two.reports.items()}

    def test_soak_attributes_quorum_blocking(self):
        report = run_cluster_sim_soak(ClusterSoakConfig(seed=11))
        assert report.critical_path is not None
        assert report.critical_path.paths
        top = report.critical_path.top_blockers(1)
        assert top and top[0][1] > 0.0
        assert "top blocker" in report.summary()

    def test_checker_catches_seeded_corruption(self):
        """The invariant checker is live, not decorative: corrupt one
        recorded read and the verdict flips."""
        report = run_cluster_sim_soak(ClusterSoakConfig(seed=2))
        assert report.ok
        name = sorted(report.histories)[0]
        reads = [op for op in report.histories[name]
                 if op.kind == "read" and op.ok]
        reads[-1].version = 999
        from repro.chaos.invariants import check_history
        damaged = check_history(
            report.histories[name],
            initial_tag=f"{name}:v1")
        assert not damaged.ok
