"""The vote-assignment tuner."""

import pytest

from repro.core.tuning import (Candidate, ServerProfile, best_configuration,
                               enumerate_configurations, pareto_front,
                               score, tune)
from repro.errors import InvalidConfigurationError

FAST = ServerProfile("fast", latency=10.0, availability=0.99)
MID = ServerProfile("mid", latency=50.0, availability=0.99)
SLOW = ServerProfile("slow", latency=200.0, availability=0.99)


class TestProfiles:
    def test_validation(self):
        with pytest.raises(ValueError):
            ServerProfile("x", latency=-1.0, availability=0.9)
        with pytest.raises(ValueError):
            ServerProfile("x", latency=1.0, availability=0.0)
        with pytest.raises(ValueError):
            ServerProfile("x", latency=1.0, availability=1.5)


class TestEnumeration:
    def test_all_yielded_configurations_valid(self):
        for config in enumerate_configurations([FAST, MID],
                                               max_votes_per_rep=2):
            config.validate()

    def test_empty_server_list_yields_nothing(self):
        assert list(enumerate_configurations([])) == []

    def test_allow_weak_controls_zero_votes(self):
        with_weak = list(enumerate_configurations([FAST, MID],
                                                  max_votes_per_rep=1,
                                                  allow_weak=True))
        without = list(enumerate_configurations([FAST, MID],
                                                max_votes_per_rep=1,
                                                allow_weak=False))
        assert any(any(rep.weak for rep in config.representatives)
                   for config in with_weak)
        assert not any(any(rep.weak for rep in config.representatives)
                       for config in without)
        assert len(with_weak) > len(without)

    def test_space_size_single_server(self):
        configs = list(enumerate_configurations([FAST],
                                                max_votes_per_rep=2))
        # votes=1: (r,w)=(1,1); votes=2: w=2 r∈{1,2} → 3 total.
        assert len(configs) == 3


class TestScoring:
    def test_candidate_fields_consistent(self):
        config = next(enumerate_configurations([FAST, MID, SLOW]))
        candidate = score(config, [FAST, MID, SLOW], read_fraction=0.5)
        assert candidate.mean_latency == pytest.approx(
            0.5 * candidate.read_latency + 0.5 * candidate.write_latency)

    def test_dominance(self):
        config = next(enumerate_configurations([FAST]))
        better = Candidate(config, 1.0, 1.0, 0.99, 0.99, 1.0)
        worse = Candidate(config, 2.0, 2.0, 0.9, 0.9, 2.0)
        assert better.dominates(worse)
        assert not worse.dominates(better)
        assert not better.dominates(better)


class TestParetoFront:
    def test_front_has_no_dominated_members(self):
        front = tune([FAST, MID, SLOW], read_fraction=0.8)
        for candidate in front:
            assert not any(other.dominates(candidate)
                           for other in front)

    def test_front_sorted_by_mean_latency(self):
        front = tune([FAST, MID], read_fraction=0.5)
        latencies = [candidate.mean_latency for candidate in front]
        assert latencies == sorted(latencies)


class TestBestConfiguration:
    def test_read_heavy_concentrates_votes_near_reader(self):
        """With reads dominant and no availability floor, the optimum
        is a single vote on the fastest server plus weak reps —
        the shape of the paper's Example 1."""
        best = best_configuration([FAST, MID, SLOW], read_fraction=0.95)
        by_server = {rep.server: rep.votes
                     for rep in best.config.representatives}
        assert by_server["fast"] >= 1
        assert by_server["mid"] == by_server["slow"] == 0
        assert best.quorums == (1, 1)
        assert best.read_latency == 10.0

    def test_availability_floor_forces_replication(self):
        best = best_configuration(
            [FAST, MID, SLOW], read_fraction=0.95,
            min_read_availability=0.999,
            min_write_availability=0.999)
        voting = [rep for rep in best.config.representatives
                  if rep.votes > 0]
        assert len(voting) >= 2
        assert best.read_availability >= 0.999
        assert best.write_availability >= 0.999

    def test_impossible_constraints_rejected(self):
        with pytest.raises(InvalidConfigurationError):
            best_configuration([FAST], read_fraction=0.5,
                               min_write_availability=0.999999)

    def test_paper_example2_shape_emerges(self):
        """Example 2's setting: a fast local server, a medium and a
        slow remote one, mostly-read workload, availability floors
        that one server cannot meet.  The optimum weights the local
        server so reads complete there alone — the paper's <2,1,1>
        r=2 idea."""
        local = ServerProfile("local", latency=75.0, availability=0.99)
        near = ServerProfile("near", latency=100.0, availability=0.99)
        far = ServerProfile("far", latency=750.0, availability=0.99)
        best = best_configuration(
            [local, near, far], read_fraction=0.9,
            min_read_availability=0.999,
            min_write_availability=0.98)
        by_server = {rep.server: rep.votes
                     for rep in best.config.representatives}
        # Reads must be satisfiable by the local server alone...
        assert by_server["local"] >= best.config.read_quorum
        # ...and its latency is therefore the local transfer time.
        assert best.read_latency == 75.0
        assert best.read_availability >= 0.999

    def test_write_heavy_avoids_write_all(self):
        best = best_configuration(
            [FAST, MID, SLOW], read_fraction=0.1,
            min_read_availability=0.99, min_write_availability=0.99)
        # Write-all over three servers would cost 200 ms and ~0.97
        # availability; the optimum must do better on both.
        assert best.write_latency < 200.0
        assert best.write_availability >= 0.99

    def test_deterministic_tie_break(self):
        first = best_configuration([FAST, MID], read_fraction=0.5)
        second = best_configuration([FAST, MID], read_fraction=0.5)
        assert first.votes == second.votes
        assert first.quorums == second.quorums
