"""The stack under lossy and duplicating networks.

Datagram networks drop and duplicate packets.  The RPC layer's
at-most-once execution (duplicate suppression + cached replies) and the
transaction layer's retries must together keep the suite protocol
correct — these tests run real workloads over misbehaving networks and
check the same invariants as the clean-network tests.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from tests.helpers import triple_config
from repro.sim import Network, RandomStreams, Simulator
from repro.rpc import RpcEndpoint
from repro.testbed import Testbed


class TestDuplicateDelivery:
    def test_network_duplicates_messages(self):
        sim = Simulator()
        network = Network(sim, RandomStreams(5), default_latency=1.0,
                          duplicate_probability=0.5)
        a = network.add_host("a")
        network.add_host("b")
        for _ in range(100):
            a.send("b", "m")
        sim.run()
        assert 20 < network.messages_duplicated < 80
        assert network.messages_delivered == \
            100 + network.messages_duplicated

    def test_invalid_probability_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Network(sim, RandomStreams(0), duplicate_probability=1.0)

    def test_rpc_suppresses_duplicate_requests(self):
        sim = Simulator()
        network = Network(sim, RandomStreams(6), default_latency=1.0,
                          duplicate_probability=0.9)
        client = RpcEndpoint(sim, network.add_host("client"))
        server = RpcEndpoint(sim, network.add_host("server"))
        executions = []

        def count(tag):
            executions.append(tag)
            return tag

        server.register("count", count)

        def flow():
            for i in range(20):
                result = yield client.call("server", "count", tag=i)
                assert result == i

        sim.run_process(flow())
        sim.run()
        # Every call executed exactly once despite heavy duplication.
        assert executions == list(range(20))
        assert server.duplicates_suppressed > 0

    def test_cached_reply_resent_for_late_duplicate(self):
        sim = Simulator()
        network = Network(sim, RandomStreams(7), default_latency=1.0)
        client = RpcEndpoint(sim, network.add_host("client"))
        server = RpcEndpoint(sim, network.add_host("server"))
        calls = []
        server.register("once", lambda: calls.append(1) or "done")

        def flow():
            yield client.call("server", "once")
            # Manually replay the identical request (a late duplicate).
            from repro.rpc import Request
            client.host.send("server", Request(call_id=0, source="client",
                                               method="once", args={}))
            yield sim.timeout(10.0)

        sim.run_process(flow())
        sim.run()
        assert len(calls) == 1
        assert server.duplicates_suppressed == 1


class TestSuiteOverBadNetworks:
    def make_bed(self, loss=0.0, duplicates=0.0, seed=0):
        bed = Testbed(servers=["s1", "s2", "s3"], seed=seed,
                      call_timeout=500.0)
        bed.network.loss_probability = loss
        bed.network.duplicate_probability = duplicates
        return bed

    def test_workload_correct_under_duplication(self):
        bed = self.make_bed(duplicates=0.3, seed=61)
        suite = bed.install(triple_config(), b"w0")

        def scenario():
            for i in range(10):
                yield from suite.write(f"w{i + 1}".encode())
                result = yield from suite.read()
                assert result.data == f"w{i + 1}".encode()
            return result.version

        assert bed.run(scenario()) == 11
        bed.settle(30_000.0)
        versions = {node.server.fs.stat("suite:db").version
                    for node in bed.servers.values()}
        assert versions == {11}

    def test_workload_correct_under_loss(self):
        bed = self.make_bed(loss=0.05, seed=62)
        suite = bed.install(triple_config(), b"w0")
        suite.max_attempts = 8
        suite.retry_backoff = 100.0
        suite.inquiry_timeout = 300.0

        def scenario():
            for i in range(8):
                yield from suite.write(f"w{i + 1}".encode())
                result = yield from suite.read()
                assert result.data == f"w{i + 1}".encode()
            return result.version

        assert bed.run(scenario()) == 9

    @given(st.floats(min_value=0.0, max_value=0.08),
           st.floats(min_value=0.0, max_value=0.4),
           st.integers(min_value=0, max_value=2 ** 16))
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_invariants_hold_for_random_fault_rates(self, loss,
                                                    duplicates, seed):
        bed = self.make_bed(loss=loss, duplicates=duplicates, seed=seed)
        suite = bed.install(triple_config(), b"base")
        suite.max_attempts = 10
        suite.retry_backoff = 150.0
        suite.inquiry_timeout = 300.0

        def scenario():
            versions = []
            for i in range(5):
                result = yield from suite.write(f"p{i}".encode())
                versions.append(result.version)
            read = yield from suite.read()
            return versions, read

        versions, read = bed.run(scenario())
        # Versions strictly increase; the read sees the last write.
        assert versions == sorted(set(versions))
        assert read.version == versions[-1]
        assert read.data == b"p4"
