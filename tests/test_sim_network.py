"""Network behaviour: latency, bandwidth, loss, crashes, partitions."""

import pytest

from repro.sim import Constant, Network, RandomStreams, Simulator
from repro.sim.network import estimate_size


def echo_once(host):
    message = yield host.receive()
    return (host.sim.now, message)


class TestDelivery:
    def test_default_latency_applies(self, sim, network):
        a = network.add_host("a")
        b = network.add_host("b")
        process = sim.spawn(echo_once(b))
        a.send("b", "hello")
        assert sim.run_until(process) == (1.0, "hello")

    def test_per_link_latency_override(self, sim, network):
        a = network.add_host("a")
        b = network.add_host("b")
        network.set_latency("a", "b", 7.5)
        process = sim.spawn(echo_once(b))
        a.send("b", "hi")
        assert sim.run_until(process)[0] == 7.5

    def test_loopback_is_free_by_default(self, sim, network):
        a = network.add_host("a")
        process = sim.spawn(echo_once(a))
        a.send("a", "self")
        assert sim.run_until(process)[0] == 0.0

    def test_unknown_destination_rejected(self, sim, network):
        a = network.add_host("a")
        with pytest.raises(KeyError):
            a.send("ghost", "boo")

    def test_duplicate_host_rejected(self, network):
        network.add_host("a")
        with pytest.raises(ValueError):
            network.add_host("a")

    def test_message_counters(self, sim, network):
        a = network.add_host("a")
        b = network.add_host("b")
        sim.spawn(echo_once(b))
        a.send("b", 1)
        sim.run()
        assert network.messages_sent == 1
        assert network.messages_delivered == 1
        assert network.messages_dropped == 0


class TestBandwidth:
    def test_byte_time_scales_with_payload(self, sim, network):
        a = network.add_host("a")
        b = network.add_host("b")
        network.set_byte_time("a", "b", 0.01)
        process = sim.spawn(echo_once(b))
        a.send("b", b"x" * 1000)
        time, _ = sim.run_until(process)
        assert time == pytest.approx(1.0 + 10.0)

    def test_small_message_nearly_free(self, sim, network):
        a = network.add_host("a")
        b = network.add_host("b")
        network.set_byte_time("a", "b", 0.01)
        process = sim.spawn(echo_once(b))
        a.send("b", 42)
        time, _ = sim.run_until(process)
        assert time < 1.2

    def test_estimate_size_bytes(self):
        assert estimate_size(b"x" * 100) == 100

    def test_estimate_size_nested(self):
        size = estimate_size({"data": b"y" * 50, "version": 3})
        assert 50 < size < 100

    def test_estimate_size_handles_objects(self):
        class Thing:
            def __init__(self):
                self.blob = b"z" * 30

        assert estimate_size(Thing()) >= 30


class TestLoss:
    def test_lossy_link_drops_messages(self):
        sim = Simulator()
        network = Network(sim, RandomStreams(1), default_latency=1.0,
                          loss_probability=0.5)
        a = network.add_host("a")
        network.add_host("b")
        for _ in range(200):
            a.send("b", "m")
        sim.run()
        assert 40 < network.messages_dropped < 160

    def test_invalid_loss_probability(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Network(sim, RandomStreams(1), loss_probability=1.0)


class TestCrash:
    def test_messages_to_down_host_dropped(self, sim, network):
        a = network.add_host("a")
        b = network.add_host("b")
        b.crash()
        a.send("b", "lost")
        sim.run()
        assert network.messages_dropped == 1

    def test_crash_mid_flight_drops(self, sim, network):
        a = network.add_host("a")
        b = network.add_host("b")
        a.send("b", "in-flight")
        b.crash()  # before the 1.0 delivery time
        sim.run()
        assert network.messages_dropped == 1

    def test_restart_receives_again(self, sim, network):
        a = network.add_host("a")
        b = network.add_host("b")
        b.crash()
        b.restart()
        process = sim.spawn(echo_once(b))
        a.send("b", "back")
        assert sim.run_until(process)[1] == "back"

    def test_crash_listeners_fire_once(self, sim, network):
        a = network.add_host("a")
        crashes, restarts = [], []
        a.on_crash(lambda: crashes.append(sim.now))
        a.on_restart(lambda: restarts.append(sim.now))
        a.crash()
        a.crash()  # idempotent
        a.restart()
        a.restart()
        assert crashes == [0.0]
        assert restarts == [0.0]

    def test_down_host_cannot_send(self, sim, network):
        a = network.add_host("a")
        b = network.add_host("b")
        a.crash()
        a.send("b", "nope")
        sim.run()
        assert network.messages_dropped == 1


class TestPartition:
    def make(self, sim, network):
        return [network.add_host(name) for name in ("a", "b", "c")]

    def test_partition_blocks_cross_group(self, sim, network):
        a, b, c = self.make(sim, network)
        network.partition([["a", "b"], ["c"]])
        assert network.can_communicate("a", "b")
        assert not network.can_communicate("a", "c")
        assert not network.can_communicate("c", "b")

    def test_partition_drops_messages(self, sim, network):
        a, b, c = self.make(sim, network)
        network.partition([["a"], ["b", "c"]])
        a.send("b", "blocked")
        sim.run()
        assert network.messages_dropped == 1

    def test_heal_restores(self, sim, network):
        a, b, c = self.make(sim, network)
        network.partition([["a"], ["b", "c"]])
        network.heal()
        process = sim.spawn(echo_once(b))
        a.send("b", "healed")
        assert sim.run_until(process)[1] == "healed"

    def test_unknown_host_in_partition_rejected(self, sim, network):
        self.make(sim, network)
        with pytest.raises(KeyError):
            network.partition([["a", "ghost"]])

    def test_link_down_and_up(self, sim, network):
        a, b, c = self.make(sim, network)
        network.set_link_down("a", "b")
        assert not network.can_communicate("a", "b")
        assert not network.can_communicate("b", "a")
        assert network.can_communicate("a", "c")
        network.set_link_up("a", "b")
        assert network.can_communicate("a", "b")
