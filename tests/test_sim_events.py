"""Events, timeouts and composite conditions."""

import pytest

from repro.errors import SimulationError
from repro.sim import AllOf, AnyOf, Simulator


class TestEvent:
    def test_starts_pending(self, sim):
        event = sim.event()
        assert event.pending
        assert not event.settled

    def test_trigger_sets_value(self, sim):
        event = sim.event()
        event.trigger(42)
        assert event.triggered
        assert event.value == 42

    def test_fail_stores_exception(self, sim):
        event = sim.event()
        error = ValueError("boom")
        event.fail(error)
        assert event.failed
        assert event.value is error

    def test_double_trigger_rejected(self, sim):
        event = sim.event()
        event.trigger(1)
        with pytest.raises(RuntimeError):
            event.trigger(2)

    def test_trigger_after_fail_rejected(self, sim):
        event = sim.event()
        event.fail(ValueError())
        with pytest.raises(RuntimeError):
            event.trigger(1)

    def test_fail_requires_exception(self, sim):
        event = sim.event()
        with pytest.raises(TypeError):
            event.fail("not an exception")

    def test_callback_runs_via_event_loop(self, sim):
        event = sim.event()
        seen = []
        event.add_callback(lambda e: seen.append(e.value))
        event.trigger("x")
        assert seen == []  # not synchronous
        sim.run()
        assert seen == ["x"]

    def test_callback_on_settled_event_still_fires(self, sim):
        event = sim.event()
        event.trigger(7)
        seen = []
        event.add_callback(lambda e: seen.append(e.value))
        sim.run()
        assert seen == [7]


class TestTimeout:
    def test_fires_at_deadline(self, sim):
        timeout = sim.timeout(5.0, value="done")
        sim.run()
        assert sim.now == 5.0
        assert timeout.value == "done"

    def test_zero_delay(self, sim):
        timeout = sim.timeout(0.0)
        sim.run()
        assert timeout.triggered
        assert sim.now == 0.0

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.timeout(-1.0)

    def test_timeouts_fire_in_order(self, sim):
        order = []
        for delay in (3.0, 1.0, 2.0):
            sim.timeout(delay).add_callback(
                lambda e, d=delay: order.append(d))
        sim.run()
        assert order == [1.0, 2.0, 3.0]

    def test_equal_deadlines_fire_in_creation_order(self, sim):
        order = []
        for tag in "abc":
            sim.timeout(1.0).add_callback(lambda e, t=tag: order.append(t))
        sim.run()
        assert order == ["a", "b", "c"]


class TestAnyOf:
    def test_first_settles_wins(self, sim):
        fast = sim.timeout(1.0, "fast")
        slow = sim.timeout(5.0, "slow")
        condition = sim.any_of([slow, fast])
        sim.run_until(condition)
        event, value = condition.value
        assert event is fast
        assert value == "fast"
        assert sim.now == 1.0

    def test_empty_triggers_immediately(self, sim):
        condition = sim.any_of([])
        assert condition.triggered
        assert condition.value == (None, None)

    def test_failure_propagates(self, sim):
        bad = sim.event()
        condition = sim.any_of([bad, sim.timeout(10.0)])
        bad.fail(RuntimeError("x"))
        with pytest.raises(RuntimeError, match="x"):
            sim.run_until(condition)

    def test_already_settled_child(self, sim):
        done = sim.event()
        done.trigger("early")
        condition = sim.any_of([done, sim.timeout(9.0)])
        value = sim.run_until(condition)
        assert value == (done, "early")
        assert sim.now == 0.0


class TestAllOf:
    def test_waits_for_all(self, sim):
        events = [sim.timeout(d, d) for d in (1.0, 3.0, 2.0)]
        condition = sim.all_of(events)
        values = sim.run_until(condition)
        assert values == [1.0, 3.0, 2.0]  # construction order
        assert sim.now == 3.0

    def test_empty_triggers_immediately(self, sim):
        condition = sim.all_of([])
        assert condition.triggered
        assert condition.value == []

    def test_single_failure_fails_all(self, sim):
        ok = sim.timeout(1.0)
        bad = sim.event()
        condition = sim.all_of([ok, bad])
        sim.schedule(2.0, lambda: bad.fail(KeyError("nope")))
        with pytest.raises(KeyError):
            sim.run_until(condition)

    def test_nested_conditions(self, sim):
        inner = sim.any_of([sim.timeout(2.0, "i")])
        outer = sim.all_of([inner, sim.timeout(1.0, "o")])
        values = sim.run_until(outer)
        assert values[1] == "o"
        assert sim.now == 2.0
