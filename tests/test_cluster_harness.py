"""One-call cluster deployments, simulated and live, plus server join."""

import asyncio

import pytest

from repro.cluster import ClusterSpec, LiveCluster, SimCluster


class TestClusterSpec:
    def test_derived_names(self):
        spec = ClusterSpec(servers=3, suites=4, directory_shards=2)
        assert spec.server_names == ["n1", "n2", "n3"]
        assert spec.suite_names == ["app-000", "app-001", "app-002",
                                    "app-003"]
        assert spec.initial_data("app-000") == b"app-000:v1"

    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterSpec(servers=2, replication=3)
        with pytest.raises(ValueError):
            ClusterSpec(directory_shards=0)
        with pytest.raises(ValueError):
            ClusterSpec(suites=0)


@pytest.fixture
def cluster():
    spec = ClusterSpec(servers=4, suites=16, directory_shards=2, seed=3)
    return SimCluster(spec).start()


class TestSimCluster:
    def test_bootstrap_binds_everything(self, cluster):
        names = cluster.bed.run(cluster.namespace.list_suites())
        assert names == cluster.spec.suite_names
        sizes = cluster.bed.run(cluster.namespace.shard_sizes())
        assert len(sizes) == 2
        assert sum(sizes.values()) == 16

    def test_warm_handles_serve_reads_and_writes(self, cluster):
        handle = cluster.handles["app-005"]
        assert cluster.bed.run(handle.read()).data == b"app-005:v1"
        cluster.bed.run(handle.write(b"app-005:v2"))
        assert cluster.bed.run(handle.read()).data == b"app-005:v2"

    def test_cold_open_through_directory(self, cluster):
        handle = cluster.open("app-011")
        assert handle is not cluster.handles["app-011"]
        assert cluster.bed.run(handle.read()).data == b"app-011:v1"

    def test_placement_table_covers_fleet(self, cluster):
        table = cluster.placement_table()
        assert [server for server, _count in table] == \
            ["n1", "n2", "n3", "n4"]
        assert sum(count for _server, count in table) == 16 * 3

    def test_suites_live_where_the_ring_says(self, cluster):
        for name, handle in cluster.handles.items():
            assert [rep.server for rep in
                    handle.config.representatives] == \
                cluster.ring.place(name)


class TestServerJoin:
    def test_join_rebalances_moved_suites(self, cluster):
        before = dict(cluster.state.placement)
        plan = cluster.join_server("n5")
        assert 0 < plan.moved_suites < 16
        for name, (was, now) in plan.moves.items():
            assert "n5" in now and "n5" not in was
        # Untouched suites keep their placement and configuration.
        for name in cluster.spec.suite_names:
            if name not in plan.moves:
                assert cluster.state.placement[name] == before[name]
                assert cluster.handles[name].config.config_version == 1

    def test_moved_suites_keep_serving(self, cluster):
        plan = cluster.join_server("n5")
        moved = sorted(plan.moves)[0]
        handle = cluster.handles[moved]
        assert handle.config.config_version == 2
        assert "n5" in {rep.server
                        for rep in handle.config.representatives}
        assert cluster.bed.run(handle.read()).data == f"{moved}:v1".encode()
        cluster.bed.run(handle.write(b"post-join"))
        assert cluster.bed.run(handle.read()).data == b"post-join"

    def test_cold_open_after_join_sees_new_configuration(self, cluster):
        plan = cluster.join_server("n5")
        moved = sorted(plan.moves)[0]
        # The directory was re-bound: a brand-new client bootstraps
        # straight to the installed configuration, no stamp repair.
        handle = cluster.open(moved)
        assert handle.config.config_version == 2

    def test_stale_warm_handle_adopts_via_stamp_check(self, cluster):
        # A client that opened its handle before the join keeps
        # working: the stamp check on first contact repairs it.
        # (app-004 is one of the suites this seed's join moves.)
        stale = cluster.open("app-004")  # pre-join private handle
        plan = cluster.join_server("n5")
        assert "app-004" in plan.moves
        assert stale.config.config_version == 1
        assert cluster.bed.run(stale.read()).data == b"app-004:v1"
        assert stale.config.config_version == 2


def test_sim_cluster_deterministic_layout():
    spec = ClusterSpec(servers=5, suites=12, directory_shards=2, seed=8)
    one = SimCluster(spec).start()
    two = SimCluster(spec).start()
    assert one.state.placement == two.state.placement
    assert one.ring.checksum(spec.suite_names) == \
        two.ring.checksum(spec.suite_names)


class TestLiveCluster:
    def test_bootstrap_serve_and_join(self, tmp_path):
        spec = ClusterSpec(servers=3, suites=6, directory_shards=2,
                           seed=2)

        async def scenario():
            async with LiveCluster(
                    spec, data_root=str(tmp_path), obs=False) as cluster:
                assert len(cluster.loopback.servers) == 3
                names = await cluster.loopback.run(
                    cluster.namespace.list_suites())
                assert names == spec.suite_names

                handle = cluster.handles["app-002"]
                result = await cluster.loopback.run(handle.read())
                assert result.data == b"app-002:v1"
                await cluster.loopback.run(handle.write(b"live-write"))

                plan = await cluster.join_server("n4")
                assert len(cluster.loopback.servers) == 4
                assert plan.moved_suites > 0
                moved = sorted(plan.moves)[0]
                moved_handle = cluster.handles[moved]
                assert moved_handle.config.config_version == 2
                result = await cluster.loopback.run(moved_handle.read())
                assert result.version >= 1

                cold = await cluster.open(moved)
                assert cold.config.config_version == 2

        asyncio.run(scenario())
