"""Chaos policy and retry policy: determinism, partitions, backoff."""

import pytest

from repro.chaos import ChaosPolicy, RetryPolicy
from repro.errors import RpcTimeout
from repro.sim.rng import RandomStreams
from repro.testbed import Testbed


class TestRetryPolicy:
    def test_exponential_growth_without_jitter(self):
        policy = RetryPolicy(base=10.0, multiplier=2.0, cap=1_000.0,
                             jitter=0.0)
        rng = RandomStreams(seed=3).stream("x")
        assert [policy.delay(i, rng) for i in range(5)] == \
            [10.0, 20.0, 40.0, 80.0, 160.0]

    def test_cap_bounds_the_ladder(self):
        policy = RetryPolicy(base=10.0, multiplier=2.0, cap=50.0,
                             jitter=0.0)
        rng = RandomStreams(seed=3).stream("x")
        assert policy.delay(10, rng) == 50.0

    def test_jitter_spreads_around_the_nominal_delay(self):
        policy = RetryPolicy(base=100.0, multiplier=1.0, cap=1_000.0,
                             jitter=0.5)
        rng = RandomStreams(seed=5).stream("x")
        delays = [policy.delay(0, rng) for _ in range(200)]
        assert all(50.0 <= delay <= 150.0 for delay in delays)
        assert len(set(delays)) > 100  # actually random, not constant

    def test_same_seed_same_delays(self):
        policy = RetryPolicy(base=25.0)
        one = [policy.delay(i, RandomStreams(seed=9).stream("r"))
               for i in range(1)]
        two = [policy.delay(i, RandomStreams(seed=9).stream("r"))
               for i in range(1)]
        assert one == two

    def test_zero_base_means_no_delay_and_no_draw(self):
        policy = RetryPolicy(base=0.0)
        rng = RandomStreams(seed=1).stream("x")
        before = rng.random()
        assert policy.delay(3, rng) == 0.0
        rng2 = RandomStreams(seed=1).stream("x")
        assert rng2.random() == before  # the delay drew nothing

    def test_constant_policy(self):
        policy = RetryPolicy(base=75.0).constant()
        rng = RandomStreams(seed=2).stream("x")
        assert [policy.delay(i, rng) for i in range(3)] == [75.0] * 3

    def test_with_base_rescales(self):
        policy = RetryPolicy(base=25.0, multiplier=2.0, jitter=0.0,
                             cap=10_000.0)
        assert policy.with_base(100.0).delay(
            1, RandomStreams(seed=0).stream("x")) == 200.0


class TestChaosPolicy:
    def test_disabled_policy_passes_everything(self):
        policy = ChaosPolicy(seed=1, drop_probability=0.99)
        policy.enabled = False
        verdict = policy.filter("a", "b")
        assert not verdict.drop and verdict.delay == 0.0
        assert policy.stats() == {"dropped": 0, "delayed": 0,
                                  "duplicated": 0, "slowed": 0,
                                  "partition_drops": 0}

    def test_same_seed_same_verdicts_per_link(self):
        def sample():
            policy = ChaosPolicy(seed=7, drop_probability=0.3,
                                 delay_probability=0.4, delay_min=1.0,
                                 delay_max=9.0,
                                 duplicate_probability=0.2)
            return [policy.filter("client", "s1") for _ in range(50)]

        assert sample() == sample()

    def test_links_are_independent_streams(self):
        policy = ChaosPolicy(seed=7, delay_probability=0.9,
                             delay_min=0.0, delay_max=100.0)
        forward = [policy.filter("a", "b").delay for _ in range(20)]
        # Traffic on another link must not perturb a link's stream.
        policy2 = ChaosPolicy(seed=7, delay_probability=0.9,
                              delay_min=0.0, delay_max=100.0)
        for _ in range(20):
            policy2.filter("c", "d")
        forward2 = [policy2.filter("a", "b").delay for _ in range(20)]
        assert forward == forward2

    def test_loopback_is_never_faulted(self):
        policy = ChaosPolicy(seed=1, drop_probability=0.99)
        for _ in range(20):
            assert not policy.filter("s1", "s1").drop

    def test_partition_is_symmetric_and_groupwise(self):
        policy = ChaosPolicy(seed=0)
        policy.partition([(), ("s2", "s3")])
        assert policy.partitioned("client", "s2")
        assert policy.partitioned("s2", "client")
        assert not policy.partitioned("s2", "s3")       # same minority
        assert not policy.partitioned("client", "s1")   # both implicit 0
        assert policy.filter("client", "s2").drop
        assert policy.partition_drops == 1
        policy.heal()
        assert not policy.partitioned("client", "s2")

    def test_duplicate_arrives_after_the_original(self):
        policy = ChaosPolicy(seed=3, duplicate_probability=0.9,
                             delay_probability=0.9, delay_min=1.0,
                             delay_max=5.0)
        for _ in range(100):
            verdict = policy.filter("a", "b")
            if verdict.duplicate:
                assert verdict.duplicate_delay >= verdict.delay
                break
        else:
            pytest.fail("no duplicate sampled at p=0.9 in 100 draws")

    def test_invalid_probabilities_rejected(self):
        with pytest.raises(ValueError):
            ChaosPolicy(drop_probability=1.0)
        with pytest.raises(ValueError):
            ChaosPolicy(delay_min=5.0, delay_max=1.0)


class TestChaosOnSimNetwork:
    """The policy interposed on the simulated network."""

    def test_partition_blocks_rpc_until_healed(self):
        bed = Testbed(servers=["s1"], seed=4, call_timeout=200.0)
        policy = ChaosPolicy(seed=4)
        bed.network.chaos = policy
        client = bed.clients["client"]
        endpoint = client.endpoint
        policy.partition([(), ("s1",)])

        def call():
            txn = str(client.manager.begin().txn_id)
            try:
                yield endpoint.call("s1", "txn.abort", timeout=200.0,
                                    txn=txn)
                return "ok"
            except RpcTimeout:
                return "timeout"

        assert bed.run(call()) == "timeout"
        assert policy.partition_drops > 0
        policy.heal()
        assert bed.run(call()) == "ok"

    def test_total_loss_drops_messages_and_counts(self):
        bed = Testbed(servers=["s1"], seed=4, call_timeout=100.0)
        policy = ChaosPolicy(seed=4, drop_probability=0.99)
        bed.network.chaos = policy
        client = bed.clients["client"]
        endpoint = client.endpoint
        before = bed.network.messages_dropped

        def call():
            txn = str(client.manager.begin().txn_id)
            try:
                yield endpoint.call("s1", "txn.abort", timeout=100.0,
                                    txn=txn)
                return "ok"
            except RpcTimeout:
                return "timeout"

        assert bed.run(call()) == "timeout"
        assert policy.dropped > 0
        assert bed.network.messages_dropped > before

    def test_duplicates_are_absorbed_by_at_most_once(self):
        """Heavy duplication must not corrupt request handling: the
        server's dedup layer answers retransmissions from its reply
        cache, so a suite write still commits exactly once."""
        from tests.helpers import triple_config

        bed = Testbed(servers=["s1", "s2", "s3"], seed=11,
                      call_timeout=500.0)
        policy = ChaosPolicy(seed=11, duplicate_probability=0.5,
                             delay_probability=0.5, delay_min=0.5,
                             delay_max=4.0)
        suite = bed.install(triple_config())
        bed.network.chaos = policy
        write = bed.run(suite.write(b"dup-proof"))
        read = bed.run(suite.read())
        assert read.version == write.version
        assert read.data == b"dup-proof"
        assert policy.duplicated > 0
