"""The single-round-trip read fast path.

The cheapest representative's version inquiry carries the file
contents (``txn.stat`` with ``read_data=True``), so a default read
completes in one data-bearing round trip.  These tests pin the
acceptance criteria: exactly one round trip when a current
representative answers the inquiry, byte-identical results versus the
legacy two-trip path on the same seed, and a graceful fallback when
the piggyback target is stale, truncated, down, or the read is
``for_update`` — on the simulated and the live runtime alike.
"""

import asyncio

import pytest

from tests.helpers import triple_config
from repro.chaos.soak import SoakConfig, run_live_soak, run_sim_soak
from repro.core import make_configuration
from repro.live import LoopbackCluster
from repro.rpc.messages import Request
from repro.testbed import Testbed


def record_methods(bed):
    """Wrap the sim network's send to log each request's method name."""
    methods = []
    original_send = bed.network.send

    def counting_send(source, destination, payload):
        if isinstance(payload, Request):
            methods.append(payload.method)
        original_send(source, destination, payload)

    bed.network.send = counting_send
    return methods


def fresh_bed(**kwargs):
    return Testbed(servers=["s1", "s2", "s3"], seed=7,
                   refresh_enabled=False, **kwargs)


class TestFastPath:
    def test_default_read_is_single_round_trip(self):
        """Acceptance: one data-bearing trip — no txn.read at all."""
        bed = fresh_bed(profile=True)
        suite = bed.install(triple_config(), b"payload")
        methods = record_methods(bed)
        result = bed.run(suite.read())
        bed.settle(5_000.0)
        assert result.data == b"payload"
        assert methods.count("txn.stat") == 3
        assert methods.count("txn.read") == 0
        assert bed.metrics.counter("suite.read_fastpath").value == 1
        assert bed.metrics.counter("suite.read_fallback").value == 0
        phases = bed.profiler.stats()
        assert phases["read.fastpath"].count == 1
        assert "read.fallback" not in phases

    def test_data_served_by_cheapest_current_rep(self):
        bed = fresh_bed()
        suite = bed.install(triple_config(), b"payload")
        result = bed.run(suite.read())
        # Same choice the legacy path makes: rep-1 has the lowest
        # latency hint, and everyone is current after install.
        assert result.served_by == "rep-1"
        assert result.version == 1
        assert sorted(result.quorum) == ["rep-1", "rep-2", "rep-3"]
        assert result.observed == {"rep-1": 1, "rep-2": 1, "rep-3": 1}

    def test_fastpath_matches_legacy_byte_for_byte(self):
        data = b"x" * 4_096
        results = []
        for fastpath in (True, False):
            bed = fresh_bed()
            suite = bed.install(triple_config(), data,
                                read_fastpath=fastpath)
            bed.run(suite.write(data + b"-v2"))
            results.append(bed.run(suite.read()))
        fast, legacy = results
        assert fast.data == legacy.data == data + b"-v2"
        assert fast.version == legacy.version
        assert fast.served_by == legacy.served_by
        # The fast path waits for the (bulkier, hence later)
        # data-bearing reply, so it may gather *more* responders than
        # the legacy read — never fewer, and never a different answer.
        assert set(legacy.quorum) <= set(fast.quorum)
        for rep_id, version in legacy.observed.items():
            assert fast.observed[rep_id] == version

    def test_oversized_file_truncates_and_falls_back(self):
        bed = fresh_bed(profile=True)
        data = b"z" * 1_000
        suite = bed.install(triple_config(), data, read_max_bytes=100)
        methods = record_methods(bed)
        result = bed.run(suite.read())
        assert result.data == data
        assert methods.count("txn.read") == 1
        assert bed.metrics.counter("suite.read_truncated").value == 1
        assert bed.metrics.counter("suite.read_fallback").value == 1
        assert bed.metrics.counter("suite.read_fastpath").value == 0
        phases = bed.profiler.stats()
        assert phases["read.fallback"].count == 1
        assert "read.fastpath" not in phases

    def test_stale_piggyback_target_falls_back(self):
        bed = fresh_bed()
        suite = bed.install(triple_config(), b"v1")
        # Strand rep-1 (the piggyback target: cheapest hint) at v1.
        bed.crash("s1")
        writer = bed.suite(triple_config())
        bed.run(writer.write(b"v2"))
        bed.restart("s1")
        result = bed.run(suite.read())
        # rep-1's reply carried v1 data — not current, so the read
        # fell back and fetched from the cheapest *current* rep.
        assert result.data == b"v2"
        assert result.served_by == "rep-2"
        assert "rep-1" in result.stale
        assert bed.metrics.counter("suite.read_fallback").value == 1

    def test_down_piggyback_target_falls_back(self):
        bed = fresh_bed()
        suite = bed.install(triple_config(), b"v1")
        suite.inquiry_timeout = 100.0
        bed.crash("s1")
        result = bed.run(suite.read())
        assert result.data == b"v1"
        assert result.served_by == "rep-2"
        assert bed.metrics.counter("suite.read_fallback").value == 1

    def test_for_update_read_keeps_two_trips(self):
        bed = fresh_bed()
        suite = bed.install(triple_config(), b"v1")
        methods = record_methods(bed)

        def bump(txn):
            current = yield from suite.read_in(txn, for_update=True)
            return (yield from suite.write_in(
                txn, current.data + b"+"))

        result = bed.run(suite.transact(bump))
        assert result.version == 2
        # The exclusive inquiry must not drag data along: staging
        # happens next, and the separate read keeps it untangled.
        assert methods.count("txn.read") == 1
        assert bed.metrics.counter("suite.read_fastpath").value == 0

    def test_fastpath_off_restores_legacy_messages(self):
        bed = fresh_bed()
        suite = bed.install(triple_config(), b"payload",
                            read_fastpath=False)
        methods = record_methods(bed)
        result = bed.run(suite.read())
        assert result.data == b"payload"
        assert methods.count("txn.read") == 1
        assert bed.metrics.counter("suite.read_fastpath").value == 0
        assert bed.metrics.counter("suite.read_fallback").value == 1


class TestFastPathChaos:
    def test_soak_with_fastpath_holds_invariants(self):
        report = run_sim_soak(SoakConfig(ops=40, seed=3))
        assert report.ok, report.report.violations
        assert report.report.successful_reads > 0

    def test_soak_with_truncated_piggybacks_holds_invariants(self):
        # Payloads are soak-<i> tags (6+ bytes): a 4-byte ceiling makes
        # every piggyback truncate, so the fallback path runs under
        # message loss, delays, duplicates and crashes.
        report = run_sim_soak(SoakConfig(ops=40, seed=3,
                                         read_max_bytes=4))
        assert report.ok, report.report.violations
        assert report.report.successful_reads > 0

    def test_same_seed_fastpath_and_legacy_serve_same_bytes(self):
        fast = run_sim_soak(SoakConfig(ops=30, seed=5))
        legacy = run_sim_soak(SoakConfig(ops=30, seed=5,
                                         read_fastpath=False))
        assert fast.ok and legacy.ok
        # Chaos consumes random streams differently once message sizes
        # change, so histories need not be identical — but both ended
        # healed, and the final reads must agree byte-for-byte on the
        # converged state each run committed.
        for report in (fast, legacy):
            tail = report.history[-report.config.final_reads:]
            assert all(op.kind == "read" and op.ok for op in tail)
            assert {op.version for op in tail} == \
                {report.report.final_version}


class TestLiveFastPath:
    def test_live_read_is_single_round_trip_and_matches_legacy(self):
        config = make_configuration(
            "live-fast", [("s1", 1), ("s2", 1), ("s3", 1)], 2, 2,
            latency_hints={"s1": 10.0, "s2": 20.0, "s3": 30.0})
        data = b"live payload " * 100

        async def scenario():
            async with LoopbackCluster(["s1", "s2", "s3"]) as cluster:
                fast = await cluster.install(config, data)
                legacy = cluster.suite(config, read_fastpath=False)
                sent = cluster.client.endpoint.calls_sent
                fast_result = await cluster.read(fast)
                fast_calls = cluster.client.endpoint.calls_sent - sent
                sent = cluster.client.endpoint.calls_sent
                legacy_result = await cluster.read(legacy)
                legacy_calls = cluster.client.endpoint.calls_sent - sent
                return fast_result, fast_calls, legacy_result, \
                    legacy_calls

        fast_result, fast_calls, legacy_result, legacy_calls = \
            asyncio.run(scenario())
        assert fast_result.data == legacy_result.data == data
        assert fast_result.version == legacy_result.version
        assert fast_result.served_by == legacy_result.served_by
        # 3 stats + 3 release-prepares, versus the same plus txn.read.
        assert fast_calls == 6
        assert legacy_calls == 7

    def test_live_soak_with_fastpath_holds_invariants(self):
        report = asyncio.run(run_live_soak(
            SoakConfig(ops=25, seed=4, read_max_bytes=4)))
        assert report.ok, report.report.violations
        assert report.runtime == "live"
