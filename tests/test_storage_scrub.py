"""The stable-storage scavenger."""

import pytest

from repro.errors import PageCorruptError
from repro.sim import Network, RandomStreams, Simulator
from repro.storage import StorageServer


def build(sim, scrub_interval=None, page_io_time=0.0):
    network = Network(sim, RandomStreams(0), default_latency=1.0)
    host = network.add_host("s1")
    return StorageServer(sim, host, num_pages=64,
                         page_io_time=page_io_time,
                         scrub_interval=scrub_interval)


class TestManualScrub:
    def test_repairs_decayed_primary(self, sim):
        server = build(sim)
        server.fs.write_file_sync("f", b"keep" * 50, version=1,
                                  create=True)
        server.stable.primary.pages.decay(2)
        repaired = sim.run_process(server.scrub())
        assert repaired == 1
        assert server.pages_scrubbed == 1
        assert server.fs.read_file_sync("f") == (b"keep" * 50, 1)
        # The primary copy itself is whole again.
        assert server.stable.primary.is_good(2)

    def test_clean_store_scrubs_nothing(self, sim):
        server = build(sim)
        server.fs.write_file_sync("f", b"x", version=1, create=True)
        assert sim.run_process(server.scrub()) == 0

    def test_scrub_charges_disk_time(self, sim):
        server = build(sim, page_io_time=0.5)

        def flow():
            start = sim.now
            yield from server.scrub()
            return sim.now - start

        assert sim.run_process(flow()) == pytest.approx(0.5 * 64)


class TestScrubLoop:
    def test_periodic_scrubbing_prevents_double_faults(self, sim):
        """Decay one copy of a pair per window; the scrubber repairs
        each before the other copy can decay too."""
        server = build(sim, scrub_interval=100.0)
        server.fs.write_file_sync("f", b"data" * 100, version=1,
                                  create=True)
        page = server.fs.stat("f").head  # the file's data page

        def decayer():
            # Alternate decay between the two copies of the data page,
            # slower than the scrub interval: each fault is repaired
            # before its twin can decay too.
            for round_number in range(6):
                if round_number % 2 == 0:
                    server.stable.primary.pages.decay(page)
                else:
                    server.stable.shadow.pages.decay(page)
                yield sim.timeout(250.0)

        sim.spawn(decayer(), name="decayer")
        sim.run(until=2_000.0)
        assert server.pages_scrubbed >= 6
        assert server.double_faults == 0
        assert server.fs.read_file_sync("f") == (b"data" * 100, 1)

    def test_without_scrubbing_double_fault_kills_the_pair(self, sim):
        server = build(sim)  # no scrubber
        server.fs.write_file_sync("f", b"data" * 100, version=1,
                                  create=True)
        page = server.fs.stat("f").head
        server.stable.primary.pages.decay(page)
        server.stable.shadow.pages.decay(page)
        with pytest.raises(PageCorruptError):
            sim.run_process(server.read_file("f"))

    def test_double_fault_counted_not_fatal_to_loop(self, sim):
        server = build(sim, scrub_interval=50.0)
        server.fs.write_file_sync("f", b"data" * 100, version=1,
                                  create=True)
        page = server.fs.stat("f").head
        server.stable.primary.pages.decay(page)
        server.stable.shadow.pages.decay(page)
        sim.run(until=200.0)
        assert server.double_faults >= 1

    def test_scrubber_skips_while_down(self, sim):
        server = build(sim, scrub_interval=50.0)
        server.host.crash()
        sim.run(until=500.0)
        assert server.pages_scrubbed == 0
        server.host.restart()
        server.fs.write_file_sync("g", b"x" * 400, version=1,
                                  create=True)
        server.stable.primary.pages.decay(server.fs.stat("g").head)
        sim.run(until=600.0)
        assert server.pages_scrubbed >= 1
