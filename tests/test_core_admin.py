"""Suite administration: status, invariants, forced convergence."""

import pytest

from tests.helpers import triple_config
from repro.core import (force_converge, suite_status, verify_invariants)
from repro.testbed import Testbed


class TestSuiteStatus:
    def test_healthy_suite_all_current(self, bed):
        suite = bed.install(triple_config(), b"data")

        def flow():
            return (yield from suite_status(suite))

        status = bed.run(flow())
        assert status.suite_name == "db"
        assert status.current_version == 1
        assert status.reachable_votes == 3
        assert status.stale == []
        assert status.unreachable == []
        assert status.can_read(2) and status.can_write(2)

    def test_reports_stale_representative(self, bed):
        suite = bed.install(triple_config(), b"data")
        suite.refresher.enabled = False
        bed.run(suite.write(b"newer"))

        status = bed.run(suite_status(suite))
        assert status.current_version == 2
        assert [rep.rep_id for rep in status.stale] == ["rep-3"]

    def test_reports_unreachable_representative(self, bed):
        suite = bed.install(triple_config(), b"data")
        suite.inquiry_timeout = 100.0
        bed.crash("s2")
        status = bed.run(suite_status(suite))
        assert [rep.rep_id for rep in status.unreachable] == ["rep-2"]
        assert status.reachable_votes == 2
        assert status.current_version == 1

    def test_below_read_quorum_current_unknown(self, bed):
        suite = bed.install(triple_config(), b"data")
        suite.inquiry_timeout = 100.0
        bed.crash("s1")
        bed.crash("s2")
        status = bed.run(suite_status(suite))
        assert status.current_version is None
        assert not status.can_read(2)

    def test_rows_shape(self, bed):
        suite = bed.install(triple_config(), b"data")
        status = bed.run(suite_status(suite))
        rows = status.as_rows()
        assert len(rows) == 3
        assert set(rows[0]) == {"rep", "server", "votes", "reachable",
                                "version", "stamp"}


class TestVerifyInvariants:
    def test_healthy_suite_passes(self, bed):
        suite = bed.install(triple_config(), b"data")
        bed.run(suite.write(b"more"))
        bed.settle()
        report = bed.run(verify_invariants(suite))
        assert report.ok
        assert report.problems == []

    def test_staleness_is_not_a_violation(self, bed):
        suite = bed.install(triple_config(), b"data")
        suite.refresher.enabled = False
        bed.run(suite.write(b"more"))
        report = bed.run(verify_invariants(suite))
        assert report.ok  # stale copies are normal, not corrupt

    def test_below_quorum_reported(self, bed):
        suite = bed.install(triple_config(), b"data")
        suite.inquiry_timeout = 100.0
        bed.crash("s1")
        bed.crash("s2")
        report = bed.run(verify_invariants(suite))
        assert not report.ok
        assert "cannot establish currency" in report.problems[0]

    def test_corruption_detected(self, bed):
        """Manually corrupt a replica's version to be 'from the future'
        — verify_invariants must flag it."""
        suite = bed.install(triple_config(), b"data")
        fs = bed.servers["s3"].server.fs
        data, _version = fs.read_file_sync("suite:db")
        fs.write_file_sync("suite:db", data, version=99)
        report = bed.run(verify_invariants(suite))
        assert not report.ok
        assert any("no write quorum corroborates" in problem
                   for problem in report.problems)


class TestForceConverge:
    def test_converges_stale_suite(self, bed):
        suite = bed.install(triple_config(), b"data")
        suite.refresher.delay = 0.0
        # Build up staleness with refresher off, then converge.
        suite.refresher.enabled = False
        for i in range(3):
            bed.run(suite.write(f"w{i}".encode()))
        suite.refresher.enabled = True

        status = bed.run(force_converge(suite))
        assert status.stale == []
        assert status.current_version == 4
        versions = {node.server.fs.stat("suite:db").version
                    for node in bed.servers.values()}
        assert versions == {4}

    def test_already_converged_returns_quickly(self, bed):
        suite = bed.install(triple_config(), b"data")
        start = bed.sim.now
        status = bed.run(force_converge(suite))
        assert status.stale == []
        assert bed.sim.now - start < 1_000.0
