"""Quorum critical-path reconstruction and blocking attribution."""

import pytest

from repro.chaos.policy import ChaosPolicy
from repro.core import make_configuration
from repro.obs.critical_path import (CriticalPathReport, QuorumPath,
                                     ReplyRecord, analyze_quorum_paths,
                                     attribution_from_samples,
                                     extract_phase_laggards,
                                     extract_quorum_paths)
from repro.obs.prom import parse_exposition, render_registry
from repro.sim import RandomStreams
from repro.testbed import Testbed


class TestAttributionMath:
    def test_marginal_intervals_charge_the_closing_rep(self):
        path = QuorumPath(
            suite="s", mode="read", trace_id="t", started=2.0,
            waited=6.0,
            replies=[ReplyRecord("a", 5.0, 3.0, True),
                     ReplyRecord("b", 8.0, 6.0, True)],
            closed_by="b", satisfied=True)
        assert path.attribution() == {"a": 3.0, "b": 3.0}

    def test_zero_marginal_intervals_are_not_charged(self):
        path = QuorumPath(
            suite="s", mode="read", trace_id="t", started=1.0,
            waited=4.0,
            replies=[ReplyRecord("a", 5.0, 4.0, True),
                     ReplyRecord("b", 5.0, 4.0, True)],
            closed_by="a", satisfied=True)
        # a ends the first interval; b arrives simultaneously and adds
        # no marginal wait.
        assert path.attribution() == {"a": 4.0}

    def test_report_folds_closes_and_shares(self):
        paths = [
            QuorumPath("s", "read", "t1", 0.0, 10.0,
                       [ReplyRecord("a", 4.0, 4.0, True),
                        ReplyRecord("b", 10.0, 10.0, True)],
                       closed_by="b", satisfied=True),
            QuorumPath("s", "write", "t2", 0.0, 6.0,
                       [ReplyRecord("a", 6.0, 6.0, True)],
                       closed_by="a", satisfied=True),
        ]
        report = CriticalPathReport(paths=paths)
        assert report.total_blocked_ms == pytest.approx(16.0)
        assert report.rep_blocked_ms() == {"a": 10.0, "b": 6.0}
        assert report.rep_closes() == {"a": 1, "b": 1}
        share = report.blocking_share()
        assert share["a"] == pytest.approx(10.0 / 16.0)
        top = report.top_blockers(2)
        assert top[0][0] == "a"
        breakdown = report.suite_breakdown()
        assert breakdown["s"]["read"]["operations"] == 1.0
        assert breakdown["s"]["read"]["mean_wait_ms"] == 10.0

    def test_render_mentions_top_blocker(self):
        report = CriticalPathReport(paths=[
            QuorumPath("s", "read", "t", 0.0, 5.0,
                       [ReplyRecord("a", 5.0, 5.0, True)],
                       closed_by="a", satisfied=True)])
        text = report.render()
        assert "1 operations" in text
        assert "a: blocked 5.0 ms" in text


def traced_bed(slow_server=None, delay_ms=30.0, seed=5):
    """A 3-server testbed with tracing on and r = w = 3 quorums."""
    bed = Testbed(servers=["s1", "s2", "s3"], seed=seed, obs=True)
    if slow_server is not None:
        policy = ChaosPolicy(streams=RandomStreams(seed=seed))
        policy.slow_host(slow_server, delay_ms)
        bed.network.chaos = policy
    config = make_configuration(
        "cp", [("s1", 1), ("s2", 1), ("s3", 1)], 3, 3,
        latency_hints={"s1": 10.0, "s2": 20.0, "s3": 30.0})
    suite = bed.install(config, b"cp:v1")
    return bed, suite


class TestTraceExtraction:
    def test_every_operation_yields_one_path(self):
        bed, suite = traced_bed()
        for index in range(4):
            bed.run(suite.read())
        bed.run(suite.write(b"cp:v2"))
        paths = extract_quorum_paths(bed.collector.spans())
        assert len(paths) == 5
        for path in paths:
            assert path.satisfied
            assert path.suite == "cp"
            assert len(path.replies) == 3
            # Arrival order is sorted and the closer is one of the
            # repliers.
            ats = [reply.at for reply in path.replies]
            assert ats == sorted(ats)
            assert path.closed_by in {reply.rep
                                      for reply in path.replies}

    def test_slowed_server_dominates_attribution(self):
        bed, suite = traced_bed(slow_server="s2")
        for index in range(6):
            if index % 2:
                bed.run(suite.write(b"cp:w%d" % index))
            else:
                bed.run(suite.read())
        report = analyze_quorum_paths(bed.collector.spans())
        top_rep, blocked, closes = report.top_blockers(1)[0]
        assert top_rep == "rep-s2"
        assert report.blocking_share()["rep-s2"] > 0.5
        # With r = w = N the slowed rep's reply closes every quorum.
        assert closes == report.rep_closes()["rep-s2"]

    def test_phase_laggards_counted_per_server(self):
        bed, suite = traced_bed(slow_server="s2")
        for index in range(3):
            bed.run(suite.write(b"cp:w%d" % index))
        laggards = extract_phase_laggards(bed.collector.spans())
        # prepare + commit per write, always gated by the slow server.
        assert laggards == {"s2": 6}

    def test_deterministic_across_reruns(self):
        def run():
            bed, suite = traced_bed(slow_server="s3", seed=9)
            for index in range(5):
                bed.run(suite.read())
            report = analyze_quorum_paths(bed.collector.spans())
            return (report.top_blockers(3),
                    sorted(report.rep_blocked_ms().items()))

        assert run() == run()


class TestOnlineCounters:
    def test_metrics_plane_matches_trace_plane(self):
        bed, suite = traced_bed(slow_server="s2")
        for index in range(8):
            bed.run(suite.read())
        trace_report = analyze_quorum_paths(bed.collector.spans())
        online = attribution_from_samples(
            parse_exposition(render_registry(bed.metrics)))
        assert (online.top_blockers(1)[0][0]
                == trace_report.top_blockers(1)[0][0])
        # Both planes attribute the same milliseconds (the gather feeds
        # the counters from the same settle order the events record).
        assert online.rep_blocked_ms() == pytest.approx(
            trace_report.rep_blocked_ms())

    def test_from_samples_decodes_families(self):
        samples = [
            ("repro_quorum_blocking_wait_ms",
             {"suite": "a", "rep": "r1"}, 120.0),
            ("repro_quorum_blocking_wait_ms",
             {"suite": "a", "rep": "r2"}, 40.0),
            ("repro_quorum_blocking_closed_total",
             {"suite": "a", "rep": "r1"}, 7.0),
            ("repro_quorum_blocking_gathers_total",
             {"suite": "a", "mode": "read"}, 9.0),
            ("repro_quorum_blocking_wait_ms_max",      # gauge _max: skip
             {"suite": "a", "rep": "r1"}, 999.0),
            ("repro_unrelated_total", {}, 5.0),
        ]
        report = attribution_from_samples(samples)
        assert report.rep_blocked_ms() == {"r1": 120.0, "r2": 40.0}
        assert report.rep_closes() == {"r1": 7}
        assert report.operations == {("a", "read"): 9}
        assert "r1" in report.render()
