"""Shadow-paging file system: operations and crash atomicity."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import FileExistsError_, NoSuchFileError, StorageError
from repro.storage import FileSystem, StableStore, drive


def fresh_fs(num_pages=256):
    fs = FileSystem(StableStore.create(num_pages))
    fs.format()
    return fs


class TestBasicOperations:
    def test_create_and_stat(self):
        fs = fresh_fs()
        fs.create_file_sync("a", {"kind": "demo"})
        stat = fs.stat("a")
        assert stat.version == 0
        assert stat.length == 0
        assert stat.properties == {"kind": "demo"}

    def test_write_read_round_trip(self):
        fs = fresh_fs()
        fs.write_file_sync("f", b"contents", version=5, create=True)
        assert fs.read_file_sync("f") == (b"contents", 5)

    def test_multi_page_file(self):
        fs = fresh_fs()
        data = bytes(range(256)) * 20  # spans several pages
        fs.write_file_sync("big", data, version=1, create=True)
        assert fs.read_file_sync("big") == (data, 1)

    def test_empty_file(self):
        fs = fresh_fs()
        fs.write_file_sync("empty", b"", version=1, create=True)
        assert fs.read_file_sync("empty") == (b"", 1)

    def test_overwrite_replaces(self):
        fs = fresh_fs()
        fs.write_file_sync("f", b"one", version=1, create=True)
        fs.write_file_sync("f", b"two", version=2)
        assert fs.read_file_sync("f") == (b"two", 2)

    def test_write_missing_without_create_rejected(self):
        fs = fresh_fs()
        with pytest.raises(NoSuchFileError):
            fs.write_file("ghost", b"x", version=1)

    def test_create_duplicate_rejected(self):
        fs = fresh_fs()
        fs.create_file_sync("a")
        with pytest.raises(FileExistsError_):
            fs.create_file("a")

    def test_delete(self):
        fs = fresh_fs()
        fs.write_file_sync("f", b"x", version=1, create=True)
        free_before = fs.free_pages
        fs.delete_file_sync("f")
        assert not fs.exists("f")
        assert fs.free_pages > free_before
        with pytest.raises(NoSuchFileError):
            fs.read_file("f")

    def test_delete_missing_rejected(self):
        with pytest.raises(NoSuchFileError):
            fresh_fs().delete_file("nope")

    def test_list_files_sorted(self):
        fs = fresh_fs()
        for name in ("zeta", "alpha", "mid"):
            fs.create_file_sync(name)
        assert fs.list_files() == ["alpha", "mid", "zeta"]

    def test_properties_replaced_when_given(self):
        fs = fresh_fs()
        fs.write_file_sync("f", b"x", version=1, create=True,
                           properties={"a": 1})
        fs.write_file_sync("f", b"y", version=2)
        assert fs.stat("f").properties == {"a": 1}  # preserved
        fs.write_file_sync("f", b"z", version=3, properties={"b": 2})
        assert fs.stat("f").properties == {"b": 2}  # replaced

    def test_out_of_space(self):
        fs = fresh_fs(num_pages=8)
        with pytest.raises(StorageError, match="out of pages"):
            fs.write_file_sync("huge", b"x" * 10_000, version=1,
                               create=True)

    def test_unmounted_rejected(self):
        fs = FileSystem(StableStore.create(16))
        with pytest.raises(StorageError, match="not mounted"):
            fs.stat("a")


class TestPersistence:
    def test_remount_preserves_files(self):
        store = StableStore.create(128)
        fs = FileSystem(store)
        fs.format()
        fs.write_file_sync("keep", b"data" * 100, version=7, create=True,
                           properties={"p": True})
        fs2 = FileSystem(store)
        fs2.mount()
        assert fs2.read_file_sync("keep") == (b"data" * 100, 7)
        assert fs2.stat("keep").properties == {"p": True}

    def test_remount_reclaims_orphans(self):
        store = StableStore.create(128)
        fs = FileSystem(store)
        fs.format()
        fs.write_file_sync("f", b"x" * 500, version=1, create=True)
        baseline = FileSystem(store)
        baseline.mount()
        free_clean = baseline.free_pages

        # Tear a rewrite partway: orphan pages leak on disk...
        operation = fs.write_file("f", b"y" * 900, version=2)
        next(operation)
        next(operation)
        # ...but a remount sweeps them back.
        fs3 = FileSystem(store)
        fs3.mount()
        assert fs3.free_pages == free_clean
        assert fs3.read_file_sync("f") == (b"x" * 500, 1)


class TestCrashAtomicity:
    def build_with_file(self):
        store = StableStore.create(128)
        fs = FileSystem(store)
        fs.format()
        fs.write_file_sync("f", b"OLD" * 200, version=3, create=True)
        return store, fs

    def steps_of(self, fs, data=b"NEW" * 300):
        return fs.write_file("f", data, version=4)

    def count_steps(self):
        store, fs = self.build_with_file()
        return sum(1 for _ in self.steps_of(fs))

    def test_crash_at_every_step_is_atomic(self):
        """Kill the write after k page-steps for every k: the remounted
        file system must show either the old or the new state."""
        total_steps = self.count_steps()
        assert total_steps > 4
        outcomes = set()
        for kill_after in range(total_steps + 1):
            store, fs = self.build_with_file()
            operation = self.steps_of(fs)
            for _ in range(kill_after):
                next(operation)
            recovered = FileSystem(store)
            recovered.mount()
            data, version = recovered.read_file_sync("f")
            assert (data, version) in ((b"OLD" * 200, 3), (b"NEW" * 300, 4))
            outcomes.add(version)
        assert outcomes == {3, 4}  # both sides of the flip observed

    def test_crash_during_delete_is_atomic(self):
        store, fs = self.build_with_file()
        operation = fs.delete_file("f")
        next(operation)  # partial delete
        recovered = FileSystem(store)
        recovered.mount()
        assert recovered.read_file_sync("f") == (b"OLD" * 200, 3)

    def test_decay_after_crash_still_recovers(self):
        store, fs = self.build_with_file()
        operation = self.steps_of(fs)
        for _ in range(3):
            next(operation)
        store.primary.pages.decay(1)
        recovered = FileSystem(store)
        recovered.mount()
        data, version = recovered.read_file_sync("f")
        assert version in (3, 4)


class TestPropertyBased:
    @given(st.binary(max_size=4_000), st.integers(min_value=1, max_value=10))
    @settings(max_examples=40, deadline=None)
    def test_any_payload_round_trips(self, data, version):
        fs = fresh_fs()
        fs.write_file_sync("f", data, version=version, create=True)
        assert fs.read_file_sync("f") == (data, version)

    @given(st.lists(st.tuples(st.sampled_from(["a", "b", "c"]),
                              st.binary(max_size=600)),
                    min_size=1, max_size=15))
    @settings(max_examples=30, deadline=None)
    def test_sequences_of_writes_keep_latest(self, writes):
        fs = fresh_fs()
        expected = {}
        for index, (name, data) in enumerate(writes):
            fs.write_file_sync(name, data, version=index + 1, create=True)
            expected[name] = (data, index + 1)
        for name, (data, version) in expected.items():
            assert fs.read_file_sync(name) == (data, version)

    @given(st.integers(min_value=0, max_value=40))
    @settings(max_examples=40, deadline=None)
    def test_crash_at_random_step_never_corrupts(self, kill_after):
        store = StableStore.create(128)
        fs = FileSystem(store)
        fs.format()
        fs.write_file_sync("f", b"OLD" * 100, version=1, create=True)
        operation = fs.write_file("f", b"NEW" * 333, version=2)
        for _ in range(kill_after):
            try:
                next(operation)
            except StopIteration:
                break
        recovered = FileSystem(store)
        recovered.mount()
        assert recovered.read_file_sync("f") in (
            (b"OLD" * 100, 1), (b"NEW" * 333, 2))
