"""Vote assignments and suite configuration validation."""

import pytest

from repro.core import Representative, SuiteConfiguration, make_configuration
from repro.errors import InvalidConfigurationError


def rep(rep_id, server, votes, latency=0.0):
    return Representative(rep_id=rep_id, server=server, votes=votes,
                          latency_hint=latency)


def config(votes, r, w, name="s"):
    reps = tuple(rep(f"r{i}", f"h{i}", v) for i, v in enumerate(votes))
    return SuiteConfiguration(suite_name=name, representatives=reps,
                              read_quorum=r, write_quorum=w)


class TestRepresentative:
    def test_weak_iff_zero_votes(self):
        assert rep("a", "h", 0).weak
        assert not rep("a", "h", 1).weak

    def test_negative_votes_rejected(self):
        with pytest.raises(InvalidConfigurationError):
            rep("a", "h", -1)

    def test_negative_latency_rejected(self):
        with pytest.raises(InvalidConfigurationError):
            rep("a", "h", 1, latency=-5.0)

    def test_json_round_trip(self):
        original = rep("a", "h", 2, latency=7.5)
        assert Representative.from_json(original.to_json()) == original


class TestValidation:
    def test_paper_examples_valid(self):
        config((1, 0, 0), 1, 1)
        config((2, 1, 1), 2, 3)
        config((1, 1, 1), 1, 3)

    def test_read_write_quorums_must_overlap(self):
        with pytest.raises(InvalidConfigurationError, match="r \\+ w"):
            config((1, 1, 1), 1, 2)  # r+w = 3 = N

    def test_write_quorums_must_overlap_each_other(self):
        with pytest.raises(InvalidConfigurationError, match="2w"):
            config((1, 1, 1, 1), 3, 2)  # 2w = 4 = N

    def test_zero_read_quorum_rejected(self):
        with pytest.raises(InvalidConfigurationError):
            config((1, 1, 1), 0, 3)

    def test_quorum_above_total_rejected(self):
        with pytest.raises(InvalidConfigurationError):
            config((1, 1, 1), 4, 3)

    def test_all_weak_rejected(self):
        with pytest.raises(InvalidConfigurationError, match="one representative"):
            config((0, 0), 1, 1)

    def test_empty_suite_rejected(self):
        with pytest.raises(InvalidConfigurationError):
            SuiteConfiguration(suite_name="s", representatives=(),
                               read_quorum=1, write_quorum=1)

    def test_duplicate_rep_ids_rejected(self):
        reps = (rep("same", "h1", 1), rep("same", "h2", 1))
        with pytest.raises(InvalidConfigurationError, match="duplicate"):
            SuiteConfiguration(suite_name="s", representatives=reps,
                               read_quorum=1, write_quorum=2)

    def test_two_reps_on_one_server_rejected(self):
        reps = (rep("a", "h1", 1), rep("b", "h1", 1))
        with pytest.raises(InvalidConfigurationError, match="server"):
            SuiteConfiguration(suite_name="s", representatives=reps,
                               read_quorum=1, write_quorum=2)


class TestDerived:
    def test_totals_and_partitions(self):
        cfg = config((2, 1, 0), 2, 2)
        assert cfg.total_votes == 3
        assert [r.rep_id for r in cfg.voting] == ["r0", "r1"]
        assert [r.rep_id for r in cfg.weak] == ["r2"]

    def test_file_name_derivation(self):
        assert config((1,), 1, 1, name="db").file_name == "suite:db"

    def test_lookup_by_id_and_server(self):
        cfg = config((1, 1, 1), 2, 2)
        assert cfg.representative("r1").server == "h1"
        assert cfg.on_server("h2").rep_id == "r2"
        assert cfg.on_server("nowhere") is None
        with pytest.raises(KeyError):
            cfg.representative("ghost")

    def test_json_round_trip(self):
        cfg = config((2, 1, 1), 2, 3)
        assert SuiteConfiguration.from_json(cfg.to_json()) == cfg

    def test_evolve_bumps_config_version(self):
        cfg = config((1, 1, 1), 2, 2)
        evolved = cfg.evolve(read_quorum=3, write_quorum=2)
        assert evolved.config_version == cfg.config_version + 1
        assert evolved.read_quorum == 3

    def test_evolve_validates(self):
        cfg = config((1, 1, 1), 2, 2)
        with pytest.raises(InvalidConfigurationError):
            cfg.evolve(read_quorum=1, write_quorum=1)


class TestMakeConfiguration:
    def test_builds_from_pairs(self):
        cfg = make_configuration("db", [("a", 2), ("b", 1), ("c", 0)],
                                 read_quorum=2, write_quorum=2,
                                 latency_hints={"a": 5.0})
        assert cfg.total_votes == 3
        assert cfg.representative("rep-a").latency_hint == 5.0
        assert cfg.representative("rep-c").weak
