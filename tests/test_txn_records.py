"""Transaction ids and durable record serialization."""

import pytest

from repro.txn import (Intention, TransactionId, TransactionIdGenerator,
                       TransactionRecord, is_record_file, record_file_name)
from repro.txn.log import COMMITTED, PREPARED


class TestTransactionId:
    def test_ordering_by_sequence_then_site(self):
        assert TransactionId("a", 1) < TransactionId("a", 2)
        assert TransactionId("a", 1) < TransactionId("b", 1)
        assert TransactionId("b", 1) < TransactionId("a", 2)

    def test_equality_and_hash(self):
        assert TransactionId("x", 3) == TransactionId("x", 3)
        assert hash(TransactionId("x", 3)) == hash(TransactionId("x", 3))

    def test_string_round_trip(self):
        txn = TransactionId("client-1", 42)
        assert TransactionId.parse(str(txn)) == txn

    def test_parse_site_with_hash(self):
        txn = TransactionId("we#ird", 7)
        assert TransactionId.parse(str(txn)) == txn

    def test_parse_malformed(self):
        with pytest.raises(ValueError):
            TransactionId.parse("nohash")

    def test_generator_monotonic_and_unique(self):
        generator = TransactionIdGenerator("site")
        ids = [generator.next_id() for _ in range(10)]
        assert ids == sorted(ids)
        assert len(set(ids)) == 10


class TestRecords:
    def test_round_trip(self):
        record = TransactionRecord(
            txn_id=TransactionId("c", 9), state=PREPARED,
            intentions=[
                Intention(name="f", data=b"\x00\xffbinary", version=4,
                          properties={"stamp": 2}),
                Intention(name="g", data=b"", version=0, delete=True),
            ])
        decoded = TransactionRecord.decode(record.encode())
        assert decoded.txn_id == record.txn_id
        assert decoded.state == PREPARED
        assert decoded.intentions == record.intentions

    def test_state_change_survives(self):
        record = TransactionRecord(TransactionId("c", 1), PREPARED)
        record.state = COMMITTED
        assert TransactionRecord.decode(record.encode()).state == COMMITTED

    def test_record_file_naming(self):
        txn = TransactionId("host", 5)
        name = record_file_name(txn)
        assert is_record_file(name)
        assert not is_record_file("suite:db")
        assert str(txn) in name

    def test_properties_none_preserved(self):
        record = TransactionRecord(
            TransactionId("c", 2), PREPARED,
            intentions=[Intention(name="f", data=b"d", version=1)])
        decoded = TransactionRecord.decode(record.encode())
        assert decoded.intentions[0].properties is None
