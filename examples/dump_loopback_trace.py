#!/usr/bin/env python3
"""Rerun the canonical loopback scenario traced; export the spans.

CI's failure path runs this after a red test job: it boots the same
three-server loopback cluster the live tests exercise, performs an
install, a quorum read, a quorum write and a degraded read (one server
stopped), and writes every process's spans — client and servers merged,
stitched by trace id — to one JSONL file that is uploaded as a build
artifact.  ``python -m repro trace <file>`` renders it as per-operation
timelines.

Run:  python examples/dump_loopback_trace.py --out loopback-trace.jsonl
"""

import argparse
import asyncio
import os
import tempfile

from repro.core import make_configuration
from repro.live import LoopbackCluster


def make_config():
    return make_configuration(
        "ci-trace", [("s1", 1), ("s2", 1), ("s3", 1)],
        read_quorum=2, write_quorum=2,
        latency_hints={"s1": 10.0, "s2": 20.0, "s3": 30.0})


async def scenario(out: str) -> int:
    async with LoopbackCluster(["s1", "s2", "s3"]) as cluster:
        suite = await cluster.install(make_config(), b"ci trace v1")
        await cluster.read(suite)
        await cluster.write(suite, b"ci trace v2")
        await cluster.stop_server("s1")
        await cluster.read(suite)
        return cluster.export_trace_jsonl(out)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out",
                        default=os.path.join(tempfile.gettempdir(),
                                             "loopback-trace.jsonl"))
    # parse_known_args: the example-runner test executes this script
    # under pytest's own argv.
    args, _ = parser.parse_known_args()
    count = asyncio.run(scenario(args.out))
    print(f"wrote {count} spans to {args.out}")
    return 0 if count else 1


if __name__ == "__main__":
    status = main()
    if status:  # plain return keeps the example-runner test green
        raise SystemExit(status)
