#!/usr/bin/env python3
"""The paper's network, literally: a shared ~3 Mb/s Ethernet.

Gifford's testbed hosts all sat on one experimental Ethernet — a
broadcast medium where concurrent transfers queue behind each other.
This example runs the same suite workload on a point-to-point network
and on a shared medium, showing contention appear exactly where the
paper's environment would have it: concurrent bulk transfers stretch,
while tiny version-number inquiries barely notice.

Run:  python examples/shared_ethernet.py
"""

from repro import Testbed, make_configuration
from repro.sim import SharedMedium

DATA = b"x" * 6_000
#: ~3 Mb/s ≈ 375 bytes/ms → ~0.0027 ms per byte.
ETHERNET_BYTE_TIME = 1.0 / 375.0


def build(shared: bool):
    bed = Testbed(servers=["s1", "s2", "s3"], clients=["app1", "app2"],
                  seed=3)
    if shared:
        bed.network.medium = SharedMedium(bed.sim,
                                          byte_time=ETHERNET_BYTE_TIME)
    config = make_configuration(
        "file", [("s1", 1), ("s2", 1), ("s3", 1)], 2, 2,
        latency_hints={"s1": 1.0, "s2": 2.0, "s3": 3.0})
    suite_one = bed.install(config, DATA, client="app1")
    suite_two = bed.suite(config, client="app2")
    return bed, suite_one, suite_two


def concurrent_reads(bed, suite_one, suite_two):
    """Two clients read the 6 KB file at the same instant."""
    def timed(suite):
        start = bed.sim.now
        yield from suite.read()
        return bed.sim.now - start

    first = bed.sim.spawn(timed(suite_one), name="r1")
    second = bed.sim.spawn(timed(suite_two), name="r2")
    results = bed.sim.run_until(bed.sim.all_of([first, second]))
    return results


def main() -> None:
    for shared in (False, True):
        bed, suite_one, suite_two = build(shared)
        label = "shared 3 Mb/s Ethernet" if shared else "point-to-point"
        durations = concurrent_reads(bed, suite_one, suite_two)
        wire = ""
        if shared:
            medium = bed.network.medium
            wire = (f"  (wire busy {medium.busy_time:.1f} ms over "
                    f"{medium.transmissions} frames)")
        print(f"{label:>24}: concurrent 6KB reads took "
              f"{durations[0]:6.1f} and {durations[1]:6.1f} ms{wire}")

    print("\nOn the shared wire the second transfer queues behind the "
          "first —\nthe contention Gifford's testbed really had, and "
          "one more reason\nversion inquiries (tens of bytes) are "
          "cheap while data moves once.")


if __name__ == "__main__":
    main()
