#!/usr/bin/env python3
"""Weak representatives: caching without giving up consistency.

Reproduces the scenario of the paper's Example 1: one voting
representative on a (slow) file server plus a zero-vote *weak*
representative on the client's fast local server.  Reads check currency
with a cheap version-number inquiry and then serve the data from the
local cache; writes invalidate it, and the background refresher brings
it current again.

Run:  python examples/weak_representative_cache.py
"""

from repro.core import Representative, SuiteConfiguration
from repro.testbed import Testbed

DATA = b"x" * 8_192


def timed(bed, operation):
    start = bed.sim.now
    result = yield from operation
    return bed.sim.now - start, result


def main() -> None:
    bed = Testbed(servers=["file-server", "local-server"])
    # The file server is across the building network: moving the file
    # takes ~75 ms.  The local server is next to the client: ~5 ms.
    bed.set_client_link("client", "file-server", 1.0,
                        byte_time=73.0 / len(DATA))
    bed.set_client_link("client", "local-server", 0.5,
                        byte_time=4.0 / len(DATA))

    config = SuiteConfiguration(
        suite_name="cached-file",
        representatives=(
            Representative("master", "file-server", votes=1,
                           latency_hint=75.0),
            Representative("cache", "local-server", votes=0,
                           latency_hint=5.0),
        ),
        read_quorum=1, write_quorum=1)

    # A silent local cache is detected within 50 ms rather than the
    # full (wide-area) inquiry timeout.
    suite = bed.install(config, DATA, weak_inquiry_timeout=50.0)

    latency, read = bed.run(timed(bed, suite.read()))
    print(f"warm read : {latency:6.1f} ms  served by {read.served_by!r} "
          "(local cache, verified current by a version inquiry)")

    # A write goes to the voting representative only; the weak cache is
    # now stale and must not serve the read...
    bed.run(timed(bed, suite.write(b"y" * len(DATA))))
    suite.refresher.enabled = False
    latency, read = bed.run(timed(bed, suite.read()))
    print(f"stale read: {latency:6.1f} ms  served by {read.served_by!r} "
          "(cache stale -> master serves, correctness kept)")

    # ...until the background refresher brings it current again.
    suite.refresher.enabled = True
    suite.refresher.schedule(suite, ["cache"], read.version)
    bed.settle()
    latency, read = bed.run(timed(bed, suite.read()))
    print(f"re-warmed : {latency:6.1f} ms  served by {read.served_by!r} "
          "(refresher copied the new version to the cache)")

    # The weak representative never blocks anything: kill it entirely.
    bed.crash("local-server")
    latency, read = bed.run(timed(bed, suite.read()))
    print(f"cache down: {latency:6.1f} ms  served by {read.served_by!r} "
          "(weak reps hold no votes, so no quorum was lost)")

    hits = bed.metrics.counter("suite.weak_reads").value
    print(f"\nweak-representative cache hits this run: {hits}")


if __name__ == "__main__":
    main()
