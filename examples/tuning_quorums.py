#!/usr/bin/env python3
"""Tuning a suite: the paper's three examples, then live retuning.

Part 1 prints Gifford's Section-3 table from the analytic model —
three vote/quorum choices spanning the design space.

Part 2 shows the knob being turned *live*: a suite starts balanced
(2-of-3 both ways), the workload turns read-heavy, and the
administrator reconfigures to read-one/write-all without taking the
suite down.  Clients holding the old configuration adopt the new one
automatically on their next operation.

Run:  python examples/tuning_quorums.py
"""

from repro import Testbed, change_configuration, make_configuration
from repro.core import VOTES, example_analysis


def print_paper_table() -> None:
    print("Gifford's example file suites (analytic model)")
    print("=" * 62)
    header = f"{'':28}{'Example 1':>10}{'Example 2':>11}{'Example 3':>11}"
    print(header)
    analyses = {n: example_analysis(n) for n in (1, 2, 3)}
    rows = [
        ("votes <v1,v2,v3>", [str(VOTES[n][0]) for n in (1, 2, 3)]),
        ("r", [str(VOTES[n][1]) for n in (1, 2, 3)]),
        ("w", [str(VOTES[n][2]) for n in (1, 2, 3)]),
        ("read latency (ms)",
         [f"{analyses[n].read_latency():.0f}" for n in (1, 2, 3)]),
        ("read blocking prob.",
         [f"{analyses[n].read_blocking_probability():.6f}"
          for n in (1, 2, 3)]),
        ("write latency (ms)",
         [f"{analyses[n].write_latency():.0f}" for n in (1, 2, 3)]),
        ("write blocking prob.",
         [f"{analyses[n].write_blocking_probability():.6f}"
          for n in (1, 2, 3)]),
    ]
    for label, values in rows:
        cells = "".join(f"{value:>11}" for value in values)
        print(f"{label:<28}{cells}")
    print()


def live_retuning_demo() -> None:
    print("Live retuning: balanced 2/2 -> read-one/write-all")
    print("=" * 62)
    bed = Testbed(servers=["s1", "s2", "s3"], clients=["admin", "app"])
    balanced = make_configuration(
        "tunable", [("s1", 1), ("s2", 1), ("s3", 1)],
        read_quorum=2, write_quorum=2,
        latency_hints={"s1": 10.0, "s2": 20.0, "s3": 30.0})

    admin_suite = bed.install(balanced, b"state-0", client="admin")
    app_suite = bed.suite(balanced, client="app")

    def measure_read():
        start = bed.sim.now
        result = yield from app_suite.read()
        return bed.sim.now - start, result

    latency, _ = bed.run(measure_read())
    print(f"balanced config: app read quorum=2, latency {latency:.1f} ms")

    read_one = balanced.evolve(read_quorum=1, write_quorum=3)
    installed = bed.run(change_configuration(admin_suite, read_one))
    print(f"admin installed configuration v{installed.config_version} "
          f"(r={installed.read_quorum}, w={installed.write_quorum}) "
          "without downtime")

    # The app client still holds the old configuration; its next read
    # discovers the new one (stamp check), adopts it, and retries.
    latency, result = bed.run(measure_read())
    print(f"app client auto-adopted v{app_suite.config.config_version}; "
          f"read now needs 1 vote, latency {latency:.1f} ms")

    # Read-one tolerates two crashed servers...
    bed.crash("s2")
    bed.crash("s3")
    latency, result = bed.run(measure_read())
    print(f"read with 2 of 3 servers down: {result.data!r} "
          f"({latency:.1f} ms)")

    # ...while writes now need every server.
    app_suite.max_attempts = 1
    try:
        bed.run(app_suite.write(b"state-1"))
        print("write with servers down: unexpectedly succeeded")
    except Exception as error:
        print(f"write with servers down blocked, as configured: "
              f"{type(error).__name__}")
    bed.restart("s2")
    bed.restart("s3")


def main() -> None:
    print_paper_table()
    live_retuning_demo()


if __name__ == "__main__":
    main()
