#!/usr/bin/env python3
"""A Violet-style shared calendar on top of file suites.

Gifford's prototype ran inside Violet, a distributed calendar system.
This example rebuilds that scenario: two users on different client
hosts share one calendar whose state lives in a replicated file suite.
The calendar gets serializable multi-user updates, conflict detection,
and tolerance of a server crash — all from the voting layer.

Run:  python examples/calendar_sharing.py
"""

from repro import Testbed, make_configuration
from repro.violet import Calendar, CalendarError, empty_calendar_data


def main() -> None:
    bed = Testbed(servers=["pine", "oak", "elm"],
                  clients=["alice", "bob"])
    config = make_configuration(
        "team-calendar",
        [("pine", 1), ("oak", 1), ("elm", 1)],
        read_quorum=2, write_quorum=2,
        latency_hints={"pine": 5.0, "oak": 10.0, "elm": 15.0})

    alice = Calendar(bed.install(config, empty_calendar_data(),
                                 client="alice"), "alice")
    bob = Calendar(bed.suite(config, client="bob"), "bob")

    def story():
        standup = yield from alice.add_appointment(
            "daily standup", start=9.0, end=9.25, attendees=("bob",))
        print(f"alice scheduled #{standup.entry_id}: {standup.title}")

        review = yield from bob.add_appointment(
            "design review", start=10.0, end=11.0, attendees=("alice",))
        print(f"bob scheduled   #{review.entry_id}: {review.title}")

        # Conflicting meeting with a shared attendee is refused inside
        # the same transaction that would insert it.
        try:
            yield from bob.add_appointment(
                "sneaky overlap", start=9.0, end=9.5,
                attendees=("alice",), reject_conflicts=True)
        except CalendarError as error:
            print(f"conflict rejected: {error}")

        # Concurrent, non-conflicting updates from both users.
        first = bed.sim.spawn(alice.add_appointment("focus", 13.0, 15.0))
        second = bed.sim.spawn(bob.add_appointment("gym", 17.0, 18.0))
        yield bed.sim.all_of([first, second])

        # A server crashes; the calendar keeps working on 2-of-3.
        bed.crash("pine")
        moved = yield from bob.reschedule(review.entry_id, 14.0, 15.0)
        print(f"rescheduled #{moved.entry_id} to "
              f"{moved.start}-{moved.end} with 'pine' down")
        bed.restart("pine")

        agenda = yield from alice.agenda_for("alice")
        print("\nalice's agenda:")
        for entry in agenda:
            print(f"  {entry.start:5.2f}-{entry.end:5.2f}  "
                  f"{entry.title:<16} (owner {entry.owner})")

        everything = yield from alice.appointments()
        return len(everything)

    total = bed.run(story())
    bed.settle()
    print(f"\n{total} appointments on the shared calendar; all three "
          "replicas converged.")


if __name__ == "__main__":
    main()
