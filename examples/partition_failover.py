#!/usr/bin/env python3
"""Network partitions: why quorum intersection prevents split brain.

Five servers with weighted votes host a suite.  The network splits; the
side holding a write quorum keeps accepting updates, the minority side
blocks (instead of diverging).  After the partition heals, the minority
catches up through background refresh and a reader that can only reach
former-minority servers still sees every committed write.

Run:  python examples/partition_failover.py
"""

from repro import QuorumUnavailableError, Testbed, make_configuration

SERVERS = ["ny1", "ny2", "sf1", "sf2", "sf3"]


def main() -> None:
    bed = Testbed(servers=SERVERS, clients=["ny-app", "sf-app"])
    # New York holds 2+2 votes, San Francisco 1+1+1; total 7,
    # r = w = 4: any operational side must span the majority of votes.
    config = make_configuration(
        "orders",
        [("ny1", 2), ("ny2", 2), ("sf1", 1), ("sf2", 1), ("sf3", 1)],
        read_quorum=4, write_quorum=4,
        latency_hints={"ny1": 5.0, "ny2": 6.0, "sf1": 40.0,
                       "sf2": 41.0, "sf3": 42.0})

    ny_suite = bed.install(config, b"order-book-v1", client="ny-app")
    sf_suite = bed.suite(config, client="sf-app")
    sf_suite.max_attempts = 1

    print("before partition:")
    print(f"  ny reads  {bed.run(ny_suite.read()).data!r}")
    print(f"  sf reads  {bed.run(sf_suite.read()).data!r}")

    # Coast-to-coast links sever.  NY side: 4 votes (quorum).  SF side:
    # 3 votes (no quorum).
    bed.partition([["ny-app", "ny1", "ny2"],
                   ["sf-app", "sf1", "sf2", "sf3"]])
    print("\n-- partition: {ny-app, ny1, ny2} | {sf-app, sf1, sf2, sf3}")

    write = bed.run(ny_suite.write(b"order-book-v2"))
    print(f"  ny write committed at version {write.version} "
          f"via {write.quorum}")

    try:
        bed.run(sf_suite.write(b"sf-divergence"))
        print("  sf write succeeded — split brain! (should not happen)")
    except QuorumUnavailableError as error:
        print(f"  sf write blocked: {error}")
    try:
        bed.run(sf_suite.read())
    except QuorumUnavailableError as error:
        print(f"  sf read blocked:  {error}")

    bed.heal()
    bed.settle()
    print("\n-- partition healed, background refresh ran")

    sf_read = bed.run(sf_suite.read())
    print(f"  sf reads  {sf_read.data!r} (version {sf_read.version})")

    # Even a reader confined to former-minority servers sees the write:
    # any read quorum must include vote weight that intersected the
    # NY-side write quorum — and refresh has already converged them.
    versions = {name: node.server.fs.stat("suite:orders").version
                for name, node in bed.servers.items()}
    print(f"  per-server versions after heal: {versions}")
    assert len(set(versions.values())) == 1, "replicas must converge"
    print("\nno divergence at any point: quorum intersection held.")


if __name__ == "__main__":
    main()
