#!/usr/bin/env python3
"""Atomic meeting scheduling across per-user calendars.

Violet's model: every user has their own calendar, each a separate file
suite (here even tuned differently per user).  Scheduling a meeting
must update all attendees' calendars atomically and reject double
bookings without races — one multi-suite transaction does both.

Run:  python examples/meeting_scheduler.py
"""

from repro import Testbed, make_configuration
from repro.violet import (Calendar, MeetingScheduler, SchedulingConflict,
                          empty_calendar_data)

USERS = ["ada", "grace", "edsger"]


def main() -> None:
    bed = Testbed(servers=["s1", "s2", "s3"])
    node = bed.clients["client"]
    hints = {"s1": 5.0, "s2": 10.0, "s3": 15.0}

    # Per-user calendars; ada's is tuned read-heavy, the others even.
    configs = {
        "ada": make_configuration("cal-ada",
                                  [("s1", 2), ("s2", 1), ("s3", 1)], 2, 3,
                                  latency_hints=hints),
        "grace": make_configuration("cal-grace",
                                    [("s1", 1), ("s2", 1), ("s3", 1)],
                                    2, 2, latency_hints=hints),
        "edsger": make_configuration("cal-edsger",
                                     [("s1", 1), ("s2", 1), ("s3", 1)],
                                     2, 2, latency_hints=hints),
    }
    suites = {user: bed.install(config, empty_calendar_data())
              for user, config in configs.items()}
    scheduler = MeetingScheduler(node.manager, suites)

    def story():
        # Private appointments first.
        grace = Calendar(suites["grace"], "grace")
        yield from grace.add_appointment("compiler talk", 10.0, 11.0)

        # Find a slot all three share, then book it atomically.
        slot = yield from scheduler.find_free_slot(
            USERS, duration=1.0, window_start=9.0, window_end=17.0)
        print(f"first common free hour: {slot:.1f}")
        meeting = yield from scheduler.schedule(
            "ada", ["grace", "edsger"], "design sync", slot, slot + 1.0)
        print(f"booked {meeting.title!r} ({meeting.meeting_id}) on "
              f"{len(meeting.participants)} calendars")

        # A competing booking for the same hour must fail atomically.
        try:
            yield from scheduler.schedule(
                "edsger", ["grace"], "goto discussion", slot, slot + 0.5)
        except SchedulingConflict as conflict:
            print(f"double booking rejected: {conflict}")

        # The organizer reconsiders; cancellation is atomic too.
        yield from scheduler.cancel(meeting, by="ada")
        agenda = yield from Calendar(suites["edsger"],
                                     "edsger").appointments()
        print(f"after cancel, edsger's calendar has "
              f"{len(agenda)} entries")

        # Survives a server crash mid-scheduling (2-of-3 quorums).
        bed.crash("s2")
        meeting = yield from scheduler.schedule(
            "grace", ["ada"], "resilience retro", 15.0, 16.0)
        print(f"booked {meeting.title!r} with one server down")
        bed.restart("s2")
        return meeting

    bed.run(story())
    bed.settle()
    print("all replicas of all three calendars converged.")


if __name__ == "__main__":
    main()
