#!/usr/bin/env python3
"""Bootstrapping clients: a replicated directory of suites.

How does a client learn a suite's configuration in the first place?
The same way Violet names files: from a *directory* that is itself a
replicated file suite.  This example builds a directory, registers two
application suites with different tunings, boots a fresh client from
nothing but the directory's configuration, and shows that a directory
entry left stale by a reconfiguration still works (the client adopts
the newer configuration from the suite's own representatives).

It also demonstrates client-resident weak representatives
(`CachingSuiteClient`): after one read, repeat reads cost only a
version-number inquiry.

Run:  python examples/directory_bootstrap.py
"""

from repro import Testbed, change_configuration, make_configuration
from repro.core import CachingSuiteClient
from repro.directory import SuiteDirectory, empty_directory_data


def main() -> None:
    bed = Testbed(servers=["s1", "s2", "s3"], clients=["admin", "app"])
    hints = {"s1": 10.0, "s2": 20.0, "s3": 30.0}

    # The directory itself is a suite — replication all the way down.
    directory_config = make_configuration(
        "__directory__", [("s1", 1), ("s2", 1), ("s3", 1)], 2, 2,
        latency_hints=hints)
    admin_directory = SuiteDirectory(
        bed.install(directory_config, empty_directory_data(),
                    client="admin"))

    # Register two application suites with different tunings.
    orders = make_configuration(
        "orders", [("s1", 1), ("s2", 1), ("s3", 1)], 2, 2,
        latency_hints=hints)
    sessions = make_configuration(
        "sessions", [("s1", 2), ("s2", 1), ("s3", 1)], 2, 3,
        latency_hints=hints)

    def setup():
        yield from admin_directory.bind(orders)
        yield from admin_directory.bind(sessions)
        names = yield from admin_directory.list_suites()
        print(f"directory holds: {names}")

    bed.install(orders, b"order-log-v1", client="admin")
    bed.install(sessions, b"session-table-v1", client="admin")
    bed.run(setup())

    # A brand-new client knows only the directory configuration.
    app_directory = SuiteDirectory(
        bed.suite(directory_config, client="app"))

    def app_flow():
        orders_suite = yield from app_directory.open_suite("orders")
        result = yield from orders_suite.read()
        print(f"app bootstrapped 'orders' -> {result.data!r} "
              f"(r={orders_suite.config.read_quorum}, "
              f"w={orders_suite.config.write_quorum})")

        # Admin retunes 'orders' but forgets to update the directory...
        retuned = orders.evolve(read_quorum=1, write_quorum=3)
        admin_handle = bed.suite(orders, client="admin")
        yield from change_configuration(admin_handle, retuned)
        print("admin reconfigured 'orders' to r=1/w=3 "
              "(directory entry now stale)")

        # ...a later bootstrap still works: the stale entry reaches the
        # representatives, whose stamp reveals the newer configuration.
        fresh = yield from app_directory.open_suite("orders")
        result = yield from fresh.read()
        print(f"fresh client via stale entry -> {result.data!r}, "
              f"adopted config v{fresh.config.config_version} "
              f"(r={fresh.config.read_quorum})")

    bed.run(app_flow())

    # Client-side weak representative: repeat reads skip the transfer.
    cached = CachingSuiteClient(
        bed.clients["app"].manager, sessions, metrics=bed.metrics)

    def cached_reads():
        for _ in range(4):
            result = yield from cached.read()
        return result.served_by

    served_by = bed.run(cached_reads())
    hits = bed.metrics.counter("cache.hits").value
    print(f"\n4 cached-client reads of 'sessions': last served by "
          f"{served_by!r}, {hits} cache hits "
          "(each hit cost one version inquiry, no data transfer)")


if __name__ == "__main__":
    main()
