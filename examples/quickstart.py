#!/usr/bin/env python3
"""Quickstart: a replicated file with weighted voting in ~20 lines.

Builds a simulated deployment of three storage servers, creates a file
suite with one vote per representative and 2-of-3 quorums, and runs a
few reads and writes — including one with a server down.

Run:  python examples/quickstart.py
"""

from repro import Testbed, make_configuration


def main() -> None:
    # Three storage servers plus one client host, all simulated.
    bed = Testbed(servers=["s1", "s2", "s3"])

    # One vote per representative; any 2 votes form a read or write
    # quorum (r + w = 4 > 3 = N, and 2w = 4 > 3).
    config = make_configuration(
        "demo", [("s1", 1), ("s2", 1), ("s3", 1)],
        read_quorum=2, write_quorum=2,
        latency_hints={"s1": 10.0, "s2": 20.0, "s3": 30.0})

    suite = bed.install(config, b"hello, 1979")

    read = bed.run(suite.read())
    print(f"read    -> {read.data!r}  (version {read.version}, "
          f"served by {read.served_by})")

    write = bed.run(suite.write(b"weighted voting works"))
    print(f"write   -> version {write.version}, quorum {write.quorum}, "
          f"left stale: {write.stale}")

    # Crash a server: 2-of-3 quorums still exist, operations continue.
    bed.crash("s1")
    read = bed.run(suite.read())
    print(f"read with s1 down -> {read.data!r} "
          f"(served by {read.served_by})")

    write = bed.run(suite.write(b"still writable"))
    print(f"write with s1 down -> version {write.version}, "
          f"quorum {write.quorum}")

    # Restart and let the background refresher converge every copy.
    bed.restart("s1")
    bed.settle()
    versions = {name: node.server.fs.stat("suite:demo").version
                for name, node in bed.servers.items()}
    print(f"after settle, per-server versions: {versions}")


if __name__ == "__main__":
    main()
