"""Per-link message fault policy, shared by both runtimes.

A :class:`ChaosPolicy` answers one question — "what happens to this
message from ``source`` to ``destination``?" — with a
:class:`ChaosVerdict`: drop it, delay it, and/or deliver a duplicate.
Each directed link draws from its own named stream of the policy's
:class:`~repro.sim.rng.RandomStreams`, so the fault pattern on one link
is independent of traffic on every other and fully determined by the
seed.

The policy is the interposition point for *partitions* too: symmetric
group splits with the same semantics as
:meth:`repro.sim.network.Network.partition` (hosts not listed in any
group belong to the implicit group 0).  Putting partitions here rather
than in each runtime is what lets one nemesis script drive the
simulator and a live TCP cluster identically.

Reordering falls out of random per-message delays: two frames on the
same link with different sampled delays arrive out of order, which is
all the datagram contract above (client timeouts, at-most-once servers)
has to survive.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterable, Optional

from ..sim.rng import RandomStreams


@dataclass(frozen=True)
class ChaosVerdict:
    """What the policy decided for one message."""

    drop: bool = False
    delay: float = 0.0            # extra latency, ms
    duplicate: bool = False
    duplicate_delay: float = 0.0  # extra latency of the duplicate, ms


#: Shared "no fault" verdict — the hot-path answer when chaos is off.
PASS = ChaosVerdict()
_DROP = ChaosVerdict(drop=True)


class ChaosPolicy:
    """Seeded per-link drop / delay / duplicate decisions + partitions.

    All probabilities are per *message*; delays are uniform in
    ``[delay_min, delay_max]`` ms.  A duplicate is delivered once more
    after an additional delay drawn from the same range (so duplicates
    typically arrive late, after the original — the case the
    at-most-once machinery exists for).
    """

    def __init__(self, streams: Optional[RandomStreams] = None,
                 seed: int = 0,
                 drop_probability: float = 0.0,
                 delay_probability: float = 0.0,
                 delay_min: float = 0.0,
                 delay_max: float = 0.0,
                 duplicate_probability: float = 0.0) -> None:
        for name, probability in (("drop", drop_probability),
                                  ("delay", delay_probability),
                                  ("duplicate", duplicate_probability)):
            if not 0.0 <= probability < 1.0:
                raise ValueError(f"{name} probability must be in [0, 1)")
        if delay_min < 0 or delay_max < delay_min:
            raise ValueError("need 0 <= delay_min <= delay_max")
        self.streams = streams or RandomStreams(seed=seed)
        self.drop_probability = drop_probability
        self.delay_probability = delay_probability
        self.delay_min = delay_min
        self.delay_max = delay_max
        self.duplicate_probability = duplicate_probability
        #: Master switch: a disabled policy passes everything untouched
        #: (the nemesis flips this off when its script ends, so a soak's
        #: final convergence reads run on a clean network).
        self.enabled = True
        #: Optional :class:`~repro.obs.flight.FlightRecorder`: fault
        #: surface changes (partition/heal/slow) append ``chaos``
        #: records, so a replay can line the injected faults up against
        #: the protocol's decisions.  Per-message verdicts are *not*
        #: journaled — they outnumber operations ~10:1 and would blow
        #: the recorder's overhead budget; their totals (``stats()``)
        #: ride in the journal's final ``metrics`` record instead.
        self.flight = None
        self._partition_of: Dict[str, int] = {}
        self._slow_hosts: Dict[str, float] = {}
        self.dropped = 0
        self.delayed = 0
        self.duplicated = 0
        self.slowed = 0
        self.partition_drops = 0

    # -- partitions --------------------------------------------------------

    def partition(self, groups: Iterable[Iterable[str]]) -> None:
        """Split hosts into isolated groups; unlisted hosts join group 0."""
        self._partition_of = {}
        for index, group in enumerate(groups):
            for name in group:
                self._partition_of[name] = index
        self._record_flight("partition",
                            groups={name: index for name, index
                                    in sorted(self._partition_of.items())})

    def heal(self) -> None:
        """Remove the partition (message-level faults keep applying)."""
        self._partition_of = {}
        self._record_flight("heal")

    @property
    def partitioned_hosts(self) -> Dict[str, int]:
        """Current explicit group assignment (empty = no partition)."""
        return dict(self._partition_of)

    def partitioned(self, a: str, b: str) -> bool:
        """True if the current partition separates ``a`` from ``b``."""
        if not self._partition_of:
            return False
        return (self._partition_of.get(a, 0)
                != self._partition_of.get(b, 0))

    # -- targeted slowness -------------------------------------------------

    def slow_host(self, host: str, delay_ms: float) -> None:
        """Add a deterministic ``delay_ms`` to every message to or from
        ``host`` (both directions: its requests arrive late and so do
        its replies).

        Unlike the probabilistic faults this consumes no randomness, so
        it composes with a seeded policy without perturbing the streams
        — the tool for "representative X is slow" experiments such as
        the ``repro doctor`` known-answer scenario.
        """
        if delay_ms < 0:
            raise ValueError("delay_ms must be >= 0")
        self._slow_hosts[host] = delay_ms
        self._record_flight("slow_host", host=host, delay_ms=delay_ms)

    def clear_slow_hosts(self) -> None:
        self._slow_hosts = {}
        self._record_flight("clear_slow_hosts")

    @property
    def slow_hosts(self) -> Dict[str, float]:
        return dict(self._slow_hosts)

    # -- per-message verdicts ----------------------------------------------

    def _rng(self, source: str, destination: str) -> random.Random:
        return self.streams.stream(f"chaos:{source}->{destination}")

    def filter(self, source: str, destination: str) -> ChaosVerdict:
        """Decide the fate of one message on the ``source -> destination``
        link.  Mutates only the policy's own counters and rng streams."""
        if not self.enabled:
            return PASS
        if source != destination and self.partitioned(source, destination):
            self.partition_drops += 1
            return _DROP
        if source == destination:
            return PASS  # loopback never faults (matches the sim network)
        slow = 0.0
        if self._slow_hosts:
            slow = (self._slow_hosts.get(source, 0.0)
                    + self._slow_hosts.get(destination, 0.0))
            if slow > 0.0:
                self.slowed += 1
        rng = self._rng(source, destination)
        if (self.drop_probability > 0.0
                and rng.random() < self.drop_probability):
            self.dropped += 1
            return _DROP
        delay = 0.0
        if (self.delay_probability > 0.0
                and rng.random() < self.delay_probability):
            delay = rng.uniform(self.delay_min, self.delay_max)
            self.delayed += 1
        delay += slow
        duplicate = False
        duplicate_delay = 0.0
        if (self.duplicate_probability > 0.0
                and rng.random() < self.duplicate_probability):
            duplicate = True
            duplicate_delay = delay + rng.uniform(self.delay_min,
                                                  self.delay_max)
            self.duplicated += 1
        if not delay and not duplicate:
            return PASS
        return ChaosVerdict(delay=delay, duplicate=duplicate,
                            duplicate_delay=duplicate_delay)

    def _record_flight(self, what: str, **data: object) -> None:
        if self.flight is None or self.flight.closed:
            return
        self.flight.emit("chaos", what=what, **data)

    def stats(self) -> Dict[str, int]:
        """Counter snapshot for reports."""
        return {"dropped": self.dropped, "delayed": self.delayed,
                "duplicated": self.duplicated, "slowed": self.slowed,
                "partition_drops": self.partition_drops}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<ChaosPolicy drop={self.drop_probability} "
                f"delay={self.delay_probability}"
                f"[{self.delay_min},{self.delay_max}]ms "
                f"dup={self.duplicate_probability} "
                f"{'on' if self.enabled else 'off'}>")
