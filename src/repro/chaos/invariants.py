"""History recording and invariant checking for chaos soaks.

The soak driver records one :class:`OpRecord` per operation a
*sequential* client issued — reads and writes, successful and failed.
:func:`check_history` then verifies the safety claims weighted voting
makes, in a form that is decidable from the client's viewpoint:

* **unique-version** — no two committed writes installed the same
  version number (``2w > N``: write quorums always intersect, so
  versions totally order writes);
* **monotonic-commit** — committed versions strictly increase in
  client order;
* **fresh-read** — every successful read returned the version (and
  payload) of the latest committed write (``r + w > N``: every read
  quorum intersects the last write quorum);
* **rep-monotonic** — the version each representative reported across
  inquiries never decreased (representatives never move backwards; the
  refresher's ``only_if_newer`` staging exists to guarantee this).

The verdicts are unambiguous because a *failed* suite write is provably
uncommitted: the client-side coordinator can only raise before the
commit decision point — once every participant has voted, ``commit``
returns success no matter which acknowledgements still straggle.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence


@dataclass
class OpRecord:
    """One client operation, as observed by the soak driver."""

    index: int                 # sequence number in the client's history
    kind: str                  # "read" | "write"
    ok: bool
    started: float             # runtime clock, ms
    finished: float
    version: Optional[int] = None   # committed (write) / returned (read)
    tag: Optional[str] = None       # payload tag written / read back
    served_by: Optional[str] = None
    quorum: List[str] = field(default_factory=list)
    #: Version each responding representative reported in the inquiry.
    observed: Dict[str, int] = field(default_factory=dict)
    error: Optional[str] = None
    attempts: int = 1

    def to_json(self) -> Dict[str, object]:
        # Hand-rolled (field order) rather than dataclasses.asdict:
        # the flight recorder serialises every op as it happens, and
        # asdict's recursive deep-copy costs ~100x a flat build.
        return {"index": self.index, "kind": self.kind, "ok": self.ok,
                "started": self.started, "finished": self.finished,
                "version": self.version, "tag": self.tag,
                "served_by": self.served_by,
                "quorum": list(self.quorum),
                "observed": dict(self.observed),
                "error": self.error, "attempts": self.attempts}

    @classmethod
    def from_json(cls, raw: Dict[str, object]) -> "OpRecord":
        return cls(**raw)  # type: ignore[arg-type]


@dataclass(frozen=True)
class Violation:
    """One invariant broken at one point in the history."""

    index: int                 # OpRecord.index where it was detected
    rule: str
    detail: str


@dataclass
class InvariantReport:
    """Outcome of checking one history."""

    ok: bool
    violations: List[Violation]
    ops: int
    committed_writes: int
    successful_reads: int
    failed_ops: int
    final_version: int

    def summary(self) -> str:
        verdict = "OK" if self.ok else (
            f"{len(self.violations)} VIOLATION"
            f"{'S' if len(self.violations) != 1 else ''}")
        return (f"{verdict}: {self.ops} ops "
                f"({self.committed_writes} commits, "
                f"{self.successful_reads} reads, "
                f"{self.failed_ops} failed), "
                f"final version {self.final_version}")


def check_history(history: Sequence[OpRecord],
                  initial_version: int = 1,
                  initial_tag: Optional[str] = None) -> InvariantReport:
    """Check a sequential client's history against the suite invariants.

    ``initial_version``/``initial_tag`` describe the state
    :func:`~repro.core.suite.install_suite` left behind (version 1).
    """
    violations: List[Violation] = []
    latest_version = initial_version
    latest_tag = initial_tag
    committed_versions = {initial_version}
    rep_floor: Dict[str, int] = {}
    committed_writes = 0
    successful_reads = 0
    failed_ops = 0

    for op in history:
        # Representative monotonicity holds across every inquiry that
        # completed, whatever the operation's own fate.
        for rep_id, version in sorted(op.observed.items()):
            floor = rep_floor.get(rep_id)
            if floor is not None and version < floor:
                violations.append(Violation(
                    op.index, "rep-monotonic",
                    f"{rep_id} reported version {version} after "
                    f"having reported {floor}"))
            rep_floor[rep_id] = max(floor or 0, version)

        if not op.ok:
            failed_ops += 1
            continue

        if op.kind == "write":
            committed_writes += 1
            if op.version in committed_versions:
                violations.append(Violation(
                    op.index, "unique-version",
                    f"version {op.version} committed twice"))
            if op.version is None or op.version <= latest_version:
                violations.append(Violation(
                    op.index, "monotonic-commit",
                    f"committed version {op.version} does not exceed "
                    f"previous committed version {latest_version}"))
            if op.version is not None:
                committed_versions.add(op.version)
                latest_version = max(latest_version, op.version)
                latest_tag = op.tag
        elif op.kind == "read":
            successful_reads += 1
            if op.version != latest_version:
                violations.append(Violation(
                    op.index, "fresh-read",
                    f"read returned version {op.version}; latest "
                    f"committed is {latest_version}"))
            elif (op.tag is not None and latest_tag is not None
                    and op.tag != latest_tag):
                violations.append(Violation(
                    op.index, "fresh-read",
                    f"read at version {op.version} returned payload "
                    f"{op.tag!r}, committed payload was {latest_tag!r}"))

    return InvariantReport(ok=not violations, violations=violations,
                           ops=len(history),
                           committed_writes=committed_writes,
                           successful_reads=successful_reads,
                           failed_ops=failed_ops,
                           final_version=latest_version)


# ---------------------------------------------------------------------------
# History (de)serialisation — the CI artifact uploaded on a failed soak
# ---------------------------------------------------------------------------

def history_to_json(history: Sequence[OpRecord]) -> str:
    """The history as a JSON array (one object per operation)."""
    return json.dumps([op.to_json() for op in history], indent=1)


def history_from_json(text: str) -> List[OpRecord]:
    return [OpRecord.from_json(raw) for raw in json.loads(text)]
