"""Nemesis: scheduled crash / restart / partition scripts.

A :class:`NemesisScript` is a plain, runtime-agnostic list of timed
steps.  Scripts come from three places:

* hand-written, for targeted scenarios (the crash-mid-2PC tests);
* :func:`random_nemesis` — a seeded random schedule that respects a
  *disruption budget* (never more representatives simultaneously
  crashed or cut off than the quorum can tolerate), so a soak under it
  is expected to make progress;
* :func:`markov_nemesis` — per-server alternating exponential up/down
  periods, the live-runtime analogue of
  :class:`~repro.sim.failures.MarkovFailureProcess`, pre-sampled into a
  script so the identical failure timeline can be replayed on either
  runtime.

Because the steps are data, the *same script* drives the simulator
(:func:`schedule_on_sim` via :class:`TestbedAdapter`) and a live
loopback cluster (:func:`run_live_nemesis` via
:class:`LiveClusterAdapter`).  Partitions are applied to the shared
:class:`~repro.chaos.policy.ChaosPolicy`, never to runtime-specific
machinery, which is what keeps the two executions equivalent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (TYPE_CHECKING, Iterable, List, Optional, Sequence,
                    Tuple)

from ..sim.rng import RandomStreams
from .policy import ChaosPolicy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..live.harness import LoopbackCluster
    from ..testbed import Testbed

#: Valid :attr:`NemesisStep.action` values.
ACTIONS = ("crash", "restart", "partition", "heal")


@dataclass(frozen=True)
class NemesisStep:
    """One timed action.  ``at`` is in runtime-clock ms."""

    at: float
    action: str
    targets: Tuple[str, ...] = ()          # crash / restart
    groups: Tuple[Tuple[str, ...], ...] = ()   # partition

    def __post_init__(self) -> None:
        if self.action not in ACTIONS:
            raise ValueError(f"unknown nemesis action {self.action!r}")

    def describe(self) -> str:
        if self.action == "partition":
            sides = " | ".join("{" + ",".join(group) + "}"
                               for group in self.groups)
            return f"t={self.at:.0f}ms partition {sides}"
        target = " " + ",".join(self.targets) if self.targets else ""
        return f"t={self.at:.0f}ms {self.action}{target}"


@dataclass
class NemesisScript:
    """Timed steps (kept sorted) plus the horizon they end by."""

    steps: List[NemesisStep] = field(default_factory=list)
    horizon: float = 0.0

    def __post_init__(self) -> None:
        self.steps.sort(key=lambda step: step.at)
        if self.steps:
            self.horizon = max(self.horizon, self.steps[-1].at)

    def __iter__(self):
        return iter(self.steps)

    def __len__(self) -> int:
        return len(self.steps)

    def describe(self) -> str:
        return "\n".join(step.describe() for step in self.steps)


# ---------------------------------------------------------------------------
# Script generators
# ---------------------------------------------------------------------------

def random_nemesis(servers: Sequence[str], seed: int = 0,
                   horizon: float = 30_000.0,
                   mean_interval: float = 1_500.0,
                   max_down: Optional[int] = None,
                   streams: Optional[RandomStreams] = None
                   ) -> NemesisScript:
    """A seeded random crash/restart/partition schedule.

    The *disruption budget*: at no instant are more than ``max_down``
    representatives crashed or isolated on a partition minority
    (default ``(n - 1) // 2`` — the most a majority quorum tolerates).
    Clients are never listed in a minority group, so they stay with the
    majority (unlisted hosts fall in the implicit group 0).  The script
    always ends, at ``horizon``, by healing the partition and
    restarting every crashed server, so a soak's tail runs against a
    whole cluster and its final reads must see the latest version.
    """
    servers = list(servers)
    if max_down is None:
        max_down = max(0, (len(servers) - 1) // 2)
    max_down = min(max_down, len(servers))
    rng = (streams or RandomStreams(seed=seed)).stream("nemesis")
    steps: List[NemesisStep] = []
    down: set = set()
    minority: Tuple[str, ...] = ()
    now = 0.0
    while True:
        now += rng.expovariate(1.0 / mean_interval)
        if now >= horizon:
            break
        action = rng.choice(ACTIONS)
        if action == "crash":
            budget = max_down - len(down) - len(minority)
            candidates = sorted(set(servers) - down - set(minority))
            if budget < 1 or not candidates:
                continue
            target = rng.choice(candidates)
            down.add(target)
            steps.append(NemesisStep(now, "crash", (target,)))
        elif action == "restart":
            if not down:
                continue
            target = rng.choice(sorted(down))
            down.discard(target)
            steps.append(NemesisStep(now, "restart", (target,)))
        elif action == "partition":
            budget = max_down - len(down) - len(minority)
            candidates = sorted(set(servers) - down - set(minority))
            if budget < 1 or not candidates:
                continue
            size = rng.randint(1, min(budget, len(candidates)))
            minority = tuple(sorted(rng.sample(candidates, size)))
            steps.append(NemesisStep(now, "partition",
                                     groups=((), minority)))
        else:  # heal
            if not minority:
                continue
            minority = ()
            steps.append(NemesisStep(now, "heal"))
    if minority:
        steps.append(NemesisStep(horizon, "heal"))
    for target in sorted(down):
        steps.append(NemesisStep(horizon, "restart", (target,)))
    return NemesisScript(steps, horizon=horizon)


def markov_nemesis(servers: Sequence[str], availability: float,
                   mttr: float, horizon: float, seed: int = 0,
                   streams: Optional[RandomStreams] = None
                   ) -> NemesisScript:
    """Per-server exponential up/down periods, pre-sampled into a script.

    ``mtbf = mttr * availability / (1 - availability)`` — the same
    parameterisation as
    :meth:`~repro.sim.failures.MarkovFailureProcess.with_availability`,
    and the same per-server stream names, so the sampled timeline for a
    given seed matches the simulator's failure process family.  Servers
    down at the horizon are restarted there.
    """
    if not 0.0 < availability < 1.0:
        raise ValueError("availability must be in (0, 1)")
    if mttr <= 0:
        raise ValueError("mttr must be positive")
    mtbf = mttr * availability / (1.0 - availability)
    streams = streams or RandomStreams(seed=seed)
    steps: List[NemesisStep] = []
    for name in servers:
        rng = streams.stream(f"failures:{name}")
        now = 0.0
        while True:
            now += rng.expovariate(1.0 / mtbf)
            if now >= horizon:
                break
            steps.append(NemesisStep(now, "crash", (name,)))
            now += rng.expovariate(1.0 / mttr)
            if now >= horizon:
                steps.append(NemesisStep(horizon, "restart", (name,)))
                break
            steps.append(NemesisStep(now, "restart", (name,)))
    return NemesisScript(steps, horizon=horizon)


# ---------------------------------------------------------------------------
# Runtime adapters
# ---------------------------------------------------------------------------

class TestbedAdapter:
    """Apply nemesis steps to a simulated :class:`~repro.testbed.Testbed`.

    Crash/restart go to the simulated hosts; partitions go to the
    shared :class:`~repro.chaos.policy.ChaosPolicy` (NOT the sim
    network) so the live adapter sees the identical mechanism.
    """

    def __init__(self, bed: "Testbed", policy: ChaosPolicy) -> None:
        self.bed = bed
        self.policy = policy
        self.applied: List[NemesisStep] = []

    def apply(self, step: NemesisStep) -> None:
        if step.action == "crash":
            for target in step.targets:
                self.bed.crash(target)
        elif step.action == "restart":
            for target in step.targets:
                self.bed.restart(target)
        elif step.action == "partition":
            self.policy.partition(step.groups)
        else:
            self.policy.heal()
        self.applied.append(step)


class LiveClusterAdapter:
    """Apply nemesis steps to a live
    :class:`~repro.live.harness.LoopbackCluster`."""

    def __init__(self, cluster: "LoopbackCluster",
                 policy: ChaosPolicy) -> None:
        self.cluster = cluster
        self.policy = policy
        self.applied: List[NemesisStep] = []

    async def apply(self, step: NemesisStep) -> None:
        if step.action == "crash":
            for target in step.targets:
                await self.cluster.stop_server(target)
        elif step.action == "restart":
            for target in step.targets:
                await self.cluster.restart_server(target)
        elif step.action == "partition":
            self.policy.partition(step.groups)
        else:
            self.policy.heal()
        self.applied.append(step)


def schedule_on_sim(bed: "Testbed", script: NemesisScript,
                    policy: ChaosPolicy,
                    disable_at_end: bool = True) -> TestbedAdapter:
    """Spawn a sim process that walks the script at its virtual times."""
    adapter = TestbedAdapter(bed, policy)

    def _runner():
        for step in script:
            if step.at > bed.sim.now:
                yield bed.sim.timeout(step.at - bed.sim.now)
            adapter.apply(step)
        if disable_at_end:
            policy.enabled = False

    bed.sim.spawn(_runner(), name="nemesis")
    return adapter


async def run_live_nemesis(cluster: "LoopbackCluster",
                           script: NemesisScript, policy: ChaosPolicy,
                           disable_at_end: bool = True
                           ) -> LiveClusterAdapter:
    """Walk the script against a live cluster in wall-clock time.

    Run it as a task alongside the workload::

        task = asyncio.ensure_future(
            run_live_nemesis(cluster, script, policy))
    """
    import asyncio

    assert cluster.client is not None, "cluster not started"
    kernel = cluster.client.kernel
    adapter = LiveClusterAdapter(cluster, policy)
    start = kernel.now
    for step in script:
        delay_ms = step.at - (kernel.now - start)
        if delay_ms > 0:
            await asyncio.sleep(delay_ms / 1000.0)
        await adapter.apply(step)
    if disable_at_end:
        policy.enabled = False
    return adapter
