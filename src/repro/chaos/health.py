"""Per-representative health tracking: consecutive-failure breakers.

A :class:`CircuitBreaker` per server, in the classic three states:

* **closed** — traffic flows; consecutive transport failures are
  counted.
* **open** — ``failure_threshold`` consecutive failures tripped it; all
  traffic is refused until ``cooldown`` ms have passed.
* **half-open** — after the cooldown one *probe* call is let through;
  its success closes the breaker, its failure re-opens it (restarting
  the cooldown).

The :class:`~repro.rpc.endpoint.RpcEndpoint` feeds outcomes in — any
reply (even an error reply) proves the host alive and closes the
breaker; a client-side timeout after all retransmissions counts as one
failure.  Quorum assembly (:meth:`FileSuiteClient._inquire`) consults
:meth:`HealthTracker.allow` to skip representatives whose breaker is
open, and fails fast with
:class:`~repro.errors.QuorumUnattainableError` when the votes still
admitted provably cannot reach the threshold — instead of paying a full
RPC timeout to learn what the breaker already knew.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.metrics import MetricsRegistry

#: Breaker states.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"

#: Gauge encoding of the states (0 = traffic flows freely).
_STATE_VALUE = {CLOSED: 0.0, HALF_OPEN: 0.5, OPEN: 1.0}

#: Reverse of the gauge encoding: ``health.breaker_state`` value ->
#: state name.  Public so the fleet aggregator can decode scraped
#: gauges back into breaker states.
STATE_OF_VALUE = {value: state for state, value in _STATE_VALUE.items()}


class CircuitBreaker:
    """One server's breaker.  ``clock`` supplies "now" in ms.

    Besides the live state, the breaker keeps its *transition history*:
    how many times it opened (``opens``), how many times it closed
    again after being open (``closes``), and when the last open/close
    transition happened (``last_transition``).  ``opens`` and
    ``closes`` together distinguish a *flapping* representative (both
    counters climbing — it keeps dying and recovering) from a solidly
    dead one (``opens`` ahead of ``closes`` and the breaker still
    open), which is exactly the evidence the vote autopilot and
    ``repro doctor`` weigh.
    """

    def __init__(self, clock: Callable[[], float],
                 failure_threshold: int = 3,
                 cooldown: float = 400.0) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if cooldown <= 0:
            raise ValueError("cooldown must be positive")
        self.clock = clock
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self.state = CLOSED
        self.consecutive_failures = 0
        self.opened_at: Optional[float] = None
        self._probe_at: Optional[float] = None
        self.opens = 0
        self.closes = 0
        self.last_transition: Optional[float] = None

    def allow(self) -> bool:
        """May a call be sent now?  Claims the half-open probe slot.

        In the open state, the first caller after the cooldown gets
        ``True`` and moves the breaker to half-open; subsequent callers
        are refused until the probe's outcome is recorded.  A probe
        whose outcome never arrives (caller gave up before its own
        timeout) releases the slot after another cooldown, so a lost
        probe cannot wedge the breaker open forever.
        """
        if self.state == CLOSED:
            return True
        now = self.clock()
        if self.state == OPEN:
            if self.opened_at is None \
                    or now - self.opened_at >= self.cooldown:
                self.state = HALF_OPEN
                self._probe_at = now
                return True
            return False
        # HALF_OPEN: the probe is in flight.
        if self._probe_at is None or now - self._probe_at >= self.cooldown:
            self._probe_at = now
            return True
        return False

    def record_success(self) -> None:
        self.consecutive_failures = 0
        if self.state != CLOSED:
            self.closes += 1
            self.last_transition = self.clock()
        self.state = CLOSED
        self.opened_at = None
        self._probe_at = None

    def record_failure(self) -> None:
        self.consecutive_failures += 1
        if self.state == HALF_OPEN or (
                self.state == CLOSED
                and self.consecutive_failures >= self.failure_threshold):
            self._open()

    def _open(self) -> None:
        self.state = OPEN
        self.opened_at = self.clock()
        self._probe_at = None
        self.opens += 1
        self.last_transition = self.opened_at

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<CircuitBreaker {self.state} "
                f"failures={self.consecutive_failures}>")


class HealthTracker:
    """Breakers for every server a client talks to.

    Unknown servers start closed (healthy).  With a ``metrics``
    registry, each breaker's state is mirrored in a
    ``health.breaker_state[server=...]`` gauge (0 closed, 0.5
    half-open, 1 open) and trips count in ``health.breaker_opens``.
    The transition history is mirrored too:
    ``health.breaker_opens[server=...]`` /
    ``health.breaker_closes[server=...]`` gauges carry the per-breaker
    counters and ``health.breaker_last_transition_ms[server=...]``
    the clock reading of the last open/close flip, so a scrape can
    tell a flapping representative from a solidly dead one.
    """

    def __init__(self, clock: Callable[[], float],
                 failure_threshold: int = 3,
                 cooldown: float = 400.0,
                 metrics: Optional["MetricsRegistry"] = None) -> None:
        self.clock = clock
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self.metrics = metrics
        #: Optional :class:`~repro.obs.flight.FlightRecorder`: every
        #: open/close transition appends one ``breaker`` record
        #: (runtimes wire it after construction).
        self.flight = None
        self._breakers: Dict[str, CircuitBreaker] = {}

    def breaker(self, server: str) -> CircuitBreaker:
        existing = self._breakers.get(server)
        if existing is not None:
            return existing
        breaker = CircuitBreaker(self.clock,
                                 failure_threshold=self.failure_threshold,
                                 cooldown=self.cooldown)
        self._breakers[server] = breaker
        return breaker

    def allow(self, server: str) -> bool:
        breaker = self.breaker(server)
        allowed = breaker.allow()
        self._mirror(server, breaker)
        return allowed

    def record_success(self, server: str) -> None:
        breaker = self.breaker(server)
        before = breaker.closes
        breaker.record_success()
        if breaker.closes > before:
            if self.metrics is not None:
                self.metrics.counter("health.breaker_closes").increment()
            self._record_flight(server, breaker, "close")
        self._mirror(server, breaker)

    def record_failure(self, server: str) -> None:
        breaker = self.breaker(server)
        before = breaker.opens
        breaker.record_failure()
        if breaker.opens > before:
            if self.metrics is not None:
                self.metrics.counter("health.breaker_opens").increment()
            self._record_flight(server, breaker, "open")
        self._mirror(server, breaker)

    def _record_flight(self, server: str, breaker: CircuitBreaker,
                       transition: str) -> None:
        if self.flight is None or self.flight.closed:
            return
        self.flight.emit("breaker", server=server, transition=transition,
                         opens=breaker.opens, closes=breaker.closes)

    def _mirror(self, server: str, breaker: CircuitBreaker) -> None:
        if self.metrics is not None:
            self.metrics.gauge(
                f"health.breaker_state[server={server}]").set(
                _STATE_VALUE[breaker.state])
            self.metrics.gauge(
                f"health.breaker_opens[server={server}]").set(
                float(breaker.opens))
            self.metrics.gauge(
                f"health.breaker_closes[server={server}]").set(
                float(breaker.closes))
            if breaker.last_transition is not None:
                self.metrics.gauge(
                    f"health.breaker_last_transition_ms"
                    f"[server={server}]").set(breaker.last_transition)

    def state(self, server: str) -> str:
        """The breaker state without claiming a probe slot."""
        breaker = self._breakers.get(server)
        return breaker.state if breaker is not None else CLOSED

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """JSON-safe view of every breaker (for ``/healthz``)."""
        return {
            server: {"state": breaker.state,
                     "consecutive_failures": breaker.consecutive_failures,
                     "opens": breaker.opens,
                     "closes": breaker.closes,
                     "last_transition": breaker.last_transition}
            for server, breaker in sorted(self._breakers.items())
        }
