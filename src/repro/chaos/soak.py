"""Invariant-checked soak runs under the nemesis, on either runtime.

One seeded :class:`SoakConfig` determines everything: the chaos policy's
per-link faults, the nemesis schedule, and the operation mix a
sequential client issues.  :func:`run_sim_soak` executes it on a
:class:`~repro.testbed.Testbed` in virtual time; :func:`run_live_soak`
executes it on a :class:`~repro.live.harness.LoopbackCluster` over real
sockets.  Both record the same :class:`~repro.chaos.invariants.OpRecord`
history and hand it to the same checker, so the ``repro chaos`` CLI can
replay a live soak's exact fault script on the simulator and compare
verdicts.

The op driver is one generator shared verbatim by both runtimes — the
same property that lets the whole protocol stack run on either kernel.
Failed operations are recorded, not fatal: under a nemesis that never
downs more representatives than the quorum tolerates, most operations
ride through on retries, breakers route around dead representatives,
and an operation that still fails must fail *cleanly* (a failed write is
provably uncommitted).  After the nemesis ends and the policy is
disabled, a handful of convergence reads on the healed cluster must
observe the latest committed version — the soak's proof that degraded
service, not corrupted state, was the worst that happened.

This module imports the live runtime, so :mod:`repro.chaos` does not
import it eagerly; reach it as ``repro.chaos.soak``.
"""

from __future__ import annotations

import asyncio
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Generator, List, Optional

from ..autonomy.controller import WeightAutopilot
from ..autonomy.policy import AutopilotPolicy
from ..core.votes import Representative, SuiteConfiguration
from ..errors import ReproError
from ..obs.flight import FlightHistory, FlightRecorder
from ..sim.rng import RandomStreams
from .health import HealthTracker
from .invariants import InvariantReport, OpRecord, check_history
from .nemesis import (NemesisScript, markov_nemesis, random_nemesis,
                      run_live_nemesis, schedule_on_sim)
from .policy import ChaosPolicy

#: Payload installed at version 1.
INITIAL_TAG = "soak-init"


@dataclass
class SoakConfig:
    """Everything a soak run needs, fully determined by ``seed``."""

    reps: int = 5
    ops: int = 500
    seed: int = 1
    read_fraction: float = 0.7
    final_reads: int = 3

    # Per-message chaos (applies on every link, both runtimes).
    loss: float = 0.05
    delay_probability: float = 0.25
    delay_min: float = 1.0
    delay_max: float = 15.0
    duplicate_probability: float = 0.02

    # Nemesis (crash / restart / partition schedule).
    nemesis_kind: str = "random"         # "random" | "markov" | "none"
    horizon: Optional[float] = None      # ms; default derived from ops
    mean_interval: float = 1_000.0
    max_down: Optional[int] = None       # default (reps - 1) // 2
    markov_availability: float = 0.9
    markov_mttr: float = 1_500.0

    # Vote autopilot: step the controller from the op driver every
    # ``autopilot_interval_ops`` operations (sequential with the ops,
    # so each reassignment lands at a well-defined point of the
    # history and the invariant checker covers it exactly).
    autopilot: bool = False
    autopilot_interval_ops: int = 10
    autopilot_restore_rounds: int = 12

    # Planted degradation for the known-answer scenario: ``slow_host``
    # the server past the call timeout (every RPC to it times out, the
    # breaker path), healed at op index ``degrade_heal_at`` (default
    # halfway) so the tail of the run exercises restoration.
    degrade_server: Optional[str] = None
    degrade_delay_ms: float = 400.0
    degrade_heal_at: Optional[int] = None

    # Read fast path: on by default (the production default); a soak
    # may turn it off to exercise the legacy two-trip path, or set
    # ``read_max_bytes`` below the payload size so every piggyback is
    # truncated and the fallback runs under chaos.
    read_fastpath: bool = True
    read_max_bytes: Optional[int] = None   # None → the suite default

    # Client aggressiveness.  Short timeouts keep a loopback soak brisk;
    # generous attempt counts let operations ride out crash windows.
    call_timeout: float = 300.0
    inquiry_timeout: float = 250.0
    data_timeout: float = 500.0
    transport_attempts: int = 2
    max_attempts: int = 8
    retry_backoff: float = 40.0

    # Server-side lock discipline, tightened so locks stranded by a
    # killed client resolve well inside one op-retry ladder.
    lock_timeout: float = 400.0
    idle_abort_after: float = 2_000.0

    def __post_init__(self) -> None:
        if self.reps < 3:
            raise ValueError("need at least 3 representatives")
        if self.ops < 1:
            raise ValueError("need at least one operation")
        if self.nemesis_kind not in ("random", "markov", "none"):
            raise ValueError(
                f"unknown nemesis kind {self.nemesis_kind!r}")
        if self.degrade_server is not None \
                and self.degrade_server not in self.server_names:
            raise ValueError(
                f"degrade server {self.degrade_server!r} not in the "
                "cluster")

    @property
    def server_names(self) -> List[str]:
        return [f"s{i + 1}" for i in range(self.reps)]

    @property
    def majority(self) -> int:
        return self.reps // 2 + 1

    def nemesis_horizon(self) -> float:
        if self.horizon is not None:
            return self.horizon
        return max(6_000.0, 20.0 * self.ops)

    def suite_configuration(self) -> SuiteConfiguration:
        """One vote per representative, majority read and write quorums
        (``r + w > N`` and ``2w > N`` both hold with the largest
        tolerance for crashed representatives)."""
        reps = tuple(
            Representative(rep_id=f"rep-{i + 1}", server=name, votes=1,
                           latency_hint=float(i))
            for i, name in enumerate(self.server_names))
        return SuiteConfiguration(suite_name="chaosdb",
                                  representatives=reps,
                                  read_quorum=self.majority,
                                  write_quorum=self.majority)

    def chaos_policy(self, streams: RandomStreams) -> ChaosPolicy:
        return ChaosPolicy(streams=streams,
                           drop_probability=self.loss,
                           delay_probability=self.delay_probability,
                           delay_min=self.delay_min,
                           delay_max=self.delay_max,
                           duplicate_probability=self.duplicate_probability)

    def nemesis(self, streams: RandomStreams) -> NemesisScript:
        if self.nemesis_kind == "none":
            return NemesisScript(steps=[], horizon=0.0)
        if self.nemesis_kind == "markov":
            return markov_nemesis(self.server_names,
                                  availability=self.markov_availability,
                                  mttr=self.markov_mttr,
                                  horizon=self.nemesis_horizon(),
                                  streams=streams)
        return random_nemesis(self.server_names, streams=streams,
                              horizon=self.nemesis_horizon(),
                              mean_interval=self.mean_interval,
                              max_down=self.max_down)

    def degrade_heal_index(self) -> Optional[int]:
        if self.degrade_server is None:
            return None
        if self.degrade_heal_at is not None:
            return self.degrade_heal_at
        return self.ops // 2

    def autopilot_policy(self) -> AutopilotPolicy:
        """Soak tuning: the survivability floor is a full majority of
        voting representatives, so even repeated demotions can never
        leave the suite unable to lose one more server."""
        return AutopilotPolicy(min_voting_reps=self.majority)


@dataclass
class SoakReport:
    """Everything a soak run produced."""

    runtime: str                         # "sim" | "live"
    config: SoakConfig
    report: InvariantReport
    history: List[OpRecord]
    chaos_stats: Dict[str, int]
    nemesis_steps: int
    breakers: Dict[str, Any] = field(default_factory=dict)
    elapsed_ms: float = 0.0
    #: :meth:`WeightAutopilot.state` at the end of the run, when the
    #: autopilot was enabled.
    autopilot: Optional[Dict[str, Any]] = None

    @property
    def ok(self) -> bool:
        return self.report.ok

    @property
    def verdict(self) -> str:
        """Runtime-independent outcome, for sim/live comparison."""
        return "OK" if self.report.ok else "VIOLATIONS:" + ",".join(
            sorted({violation.rule
                    for violation in self.report.violations}))

    def summary(self) -> str:
        chaos = ", ".join(f"{name}={count}" for name, count
                          in sorted(self.chaos_stats.items()))
        autopilot = ""
        if self.autopilot is not None:
            autopilot = (
                f" | autopilot: {self.autopilot['applied']} applied, "
                f"{self.autopilot['rejected_gate']} gate-rejected, "
                f"{'at' if self.autopilot['at_seed_weights'] else 'OFF'}"
                " seed weights")
        return (f"[{self.runtime}] seed={self.config.seed} "
                f"{self.report.summary()} | nemesis steps: "
                f"{self.nemesis_steps} | {chaos} | "
                f"{self.elapsed_ms:.0f}ms{autopilot}")


# ---------------------------------------------------------------------------
# The shared op driver (one generator, both runtimes)
# ---------------------------------------------------------------------------

def _drive_ops(suite, clock, config: SoakConfig, rng,
               autopilot: Optional[WeightAutopilot] = None,
               policy: Optional[ChaosPolicy] = None,
               history: Optional[List[OpRecord]] = None,
               ) -> Generator[Any, Any, List[OpRecord]]:
    """Issue the seeded op mix sequentially; record every outcome.

    With an ``autopilot``, the controller is stepped every
    ``autopilot_interval_ops`` operations *between* ops — sequential
    with the workload, so every reassignment lands at a well-defined
    point of the history and is covered by the invariant checker (a
    reconfiguration is a committed write; see
    :func:`_autopilot_step`).  With a ``policy`` and a configured
    ``degrade_server``, the planted slowdown is injected before the
    first op and healed at ``degrade_heal_index()``.

    ``history`` lets the runner supply the record list — a
    :class:`~repro.obs.flight.FlightHistory` journals every append as
    an ``op`` event without the driver knowing.
    """
    if history is None:
        history = []
    heal_at = config.degrade_heal_index()
    for index in range(config.ops):
        if policy is not None and config.degrade_server is not None:
            if index == 0:
                policy.slow_host(config.degrade_server,
                                 config.degrade_delay_ms)
            elif index == heal_at:
                policy.clear_slow_hosts()
        if rng.random() < config.read_fraction:
            yield from _one_read(suite, clock, index, history)
        else:
            yield from _one_write(suite, clock, index, history,
                                  tag=f"soak-{index}")
        if autopilot is not None and config.autopilot_interval_ops > 0 \
                and (index + 1) % config.autopilot_interval_ops == 0:
            yield from _autopilot_step(autopilot, clock, index, history)
    return history


def _latest_commit(history: List[OpRecord]) -> "tuple[int, str]":
    """The checker's latest committed ``(version, tag)`` so far.

    The driver is sequential and failed writes are provably
    uncommitted, so the highest committed write version *is* the
    current version a reconfiguration bumps from.
    """
    version, tag = 1, INITIAL_TAG
    for record in history:
        if record.kind == "write" and record.ok \
                and record.version is not None \
                and record.version > version:
            version, tag = record.version, record.tag
    return version, tag


def _autopilot_step(autopilot: WeightAutopilot, clock, index: int,
                    history: List[OpRecord],
                    ) -> Generator[Any, Any, None]:
    """One control round, with the reconfiguration made visible to the
    invariant checker: an applied reassignment re-stages the current
    payload at ``version = current + 1``, i.e. it *is* a committed
    write, so a synthetic committed-write record is appended (the same
    bookkeeping as the cluster soak's mid-run join)."""
    record = yield from autopilot.step()
    if record is not None and record.applied:
        version, tag = _latest_commit(history)
        now = clock()
        history.append(OpRecord(
            index=index, kind="write", ok=True, started=now,
            finished=now, version=version + 1, tag=tag))


def _drive_autopilot_restore(suite, autopilot: WeightAutopilot, clock,
                             config: SoakConfig,
                             history: List[OpRecord],
                             ) -> Generator[Any, Any, None]:
    """Post-nemesis restoration rounds, appending to ``history``.

    The healed cluster no longer fails foreground traffic, but the
    demoted representative only proves itself through fresh evidence —
    each round issues one read (whose weak-representative polling
    probes the breaker and drains staleness), then steps the
    controller.  Stops early once the vote vector is back at seed."""
    index = history[-1].index + 1 if history else 0
    for round_ in range(config.autopilot_restore_rounds):
        if autopilot.at_seed_weights():
            return
        yield from _one_read(suite, clock, index + round_, history)
        yield from _autopilot_step(autopilot, clock, index + round_,
                                   history)
        yield suite.sim.timeout(autopilot.policy.interval_ms)


def _final_reads(suite, clock, config: SoakConfig, start_index: int,
                 history: Optional[List[OpRecord]] = None,
                 ) -> Generator[Any, Any, List[OpRecord]]:
    """Convergence reads on the healed, chaos-free cluster.

    Appends into ``history`` when the caller passes its run-long
    record list (so a journaling history captures these too); returns
    the list either way.
    """
    if history is None:
        history = []
    for offset in range(config.final_reads):
        yield from _one_read(suite, clock, start_index + offset, history)
    return history


def _one_read(suite, clock, index: int,
              history: List[OpRecord]) -> Generator[Any, Any, None]:
    started = clock()
    try:
        result = yield from suite.read()
    except ReproError as exc:
        history.append(OpRecord(
            index=index, kind="read", ok=False, started=started,
            finished=clock(), error=type(exc).__name__))
        return
    history.append(OpRecord(
        index=index, kind="read", ok=True, started=started,
        finished=clock(), version=result.version,
        tag=result.data.decode("utf-8", errors="replace"),
        served_by=result.served_by, quorum=list(result.quorum),
        observed=dict(result.observed), attempts=result.attempts))


def _one_write(suite, clock, index: int, history: List[OpRecord],
               tag: str) -> Generator[Any, Any, None]:
    started = clock()
    try:
        result = yield from suite.write(tag.encode("utf-8"))
    except ReproError as exc:
        history.append(OpRecord(
            index=index, kind="write", ok=False, started=started,
            finished=clock(), tag=tag, error=type(exc).__name__))
        return
    history.append(OpRecord(
        index=index, kind="write", ok=True, started=started,
        finished=clock(), version=result.version, tag=tag,
        quorum=list(result.quorum), observed=dict(result.observed),
        attempts=result.attempts))


def _suite_kwargs(config: SoakConfig) -> Dict[str, Any]:
    kwargs = {"inquiry_timeout": config.inquiry_timeout,
              "data_timeout": config.data_timeout,
              "max_attempts": config.max_attempts,
              "retry_backoff": config.retry_backoff,
              "read_fastpath": config.read_fastpath}
    if config.read_max_bytes is not None:
        kwargs["read_max_bytes"] = config.read_max_bytes
    return kwargs


# ---------------------------------------------------------------------------
# Runtime-specific runners
# ---------------------------------------------------------------------------

def _flight_blocking_snapshot(metrics: Any) -> Dict[str, float]:
    """The ``quorum.blocking.*`` plane as plain data, for the journal.

    Recorded as the journal's final ``metrics`` event so ``repro
    replay --verify`` can cross-check the attribution it re-derives
    from ``quorum`` events against what the live counters actually
    said — any disagreement means one plane lied.
    """
    snapshot: Dict[str, float] = {}
    for name, value in metrics.counters().items():
        if name.startswith("quorum.blocking."):
            snapshot[name] = float(value)
    for name, gauge in sorted(metrics._gauges.items()):
        if name.startswith("quorum.blocking."):
            snapshot[name] = float(gauge.value)
    return snapshot


def run_sim_soak(config: SoakConfig,
                 flight_dir: Optional[str] = None) -> SoakReport:
    """The soak on a simulated testbed, in virtual time.

    With ``flight_dir``, every protocol decision is journaled to a
    :class:`~repro.obs.flight.FlightRecorder` there.  The journal is
    deterministic: same config + seed ⇒ byte-identical segments,
    which is what ``repro replay --re-execute`` relies on.
    """
    from ..testbed import Testbed

    streams = RandomStreams(seed=config.seed)
    policy = config.chaos_policy(streams)
    policy.enabled = False               # clean install first
    script = config.nemesis(streams)

    bed = Testbed(config.server_names, seed=config.seed,
                  call_timeout=config.call_timeout,
                  lock_timeout=config.lock_timeout,
                  idle_abort_after=config.idle_abort_after, obs=True)
    bed.network.chaos = policy
    client = bed.clients["client"]
    client.manager.transport_attempts = config.transport_attempts
    health = HealthTracker(clock=lambda: bed.sim.now,
                           metrics=bed.metrics)
    client.endpoint.health = health

    recorder = None
    if flight_dir is not None:
        recorder = FlightRecorder(flight_dir,
                                  clock=lambda: bed.sim.now)
        recorder.emit("meta", runtime="sim", seed=config.seed,
                      initial_tag=INITIAL_TAG, config=asdict(config))
        bed.flight = recorder            # before install: suites inherit
        policy.flight = recorder
        health.flight = recorder

    suite = bed.install(config.suite_configuration(),
                        INITIAL_TAG.encode("utf-8"),
                        health=health, **_suite_kwargs(config))
    started = bed.sim.now
    autopilot = None
    if config.autopilot:
        autopilot = WeightAutopilot(suite, health=health,
                                    policy=config.autopilot_policy())

    policy.enabled = True
    adapter = schedule_on_sim(bed, script, policy, disable_at_end=False)
    ops_rng = streams.stream("soak:ops")
    history: List[OpRecord] = FlightHistory(recorder) \
        if recorder is not None else []
    bed.run(_drive_ops(suite, lambda: bed.sim.now, config,
                       ops_rng, autopilot=autopilot,
                       policy=policy, history=history))

    # Let the nemesis script finish (heal + restart-all), then verify
    # convergence on the healed cluster without message-level faults.
    remaining = script.horizon - bed.sim.now
    bed.settle(grace=max(1_000.0, remaining + 1_000.0))
    policy.enabled = False
    if autopilot is not None:
        bed.run(_drive_autopilot_restore(suite, autopilot,
                                         lambda: bed.sim.now, config,
                                         history))
    bed.run(_final_reads(suite, lambda: bed.sim.now, config,
                         start_index=history[-1].index + 1
                         if history else config.ops,
                         history=history))

    if recorder is not None:
        recorder.emit("metrics",
                      blocking=_flight_blocking_snapshot(bed.metrics),
                      chaos=policy.stats())
        recorder.close()

    return SoakReport(
        runtime="sim", config=config,
        report=check_history(history, initial_tag=INITIAL_TAG),
        history=history, chaos_stats=policy.stats(),
        nemesis_steps=len(adapter.applied),
        breakers=health.snapshot(),
        elapsed_ms=bed.sim.now - started,
        autopilot=autopilot.state() if autopilot is not None else None)


#: Default size cap for soak trace exports (bytes per file); keeps a
#: long soak's JSONL artifact bounded without the CLIs having to pick.
DEFAULT_TRACE_MAX_BYTES = 8 << 20


async def run_live_soak(config: SoakConfig,
                        data_root: Optional[str] = None,
                        trace_path: Optional[str] = None,
                        flight_dir: Optional[str] = None) -> SoakReport:
    """The soak on a live loopback cluster, over real sockets.

    With ``flight_dir``, the client runtime journals its decisions
    there.  Live journals are *not* byte-reproducible (wall clock,
    fresh txn ids) — ``repro replay`` verifies them and re-executes
    the recorded config on the sim kernel instead.
    """
    from ..live.harness import LoopbackCluster

    streams = RandomStreams(seed=config.seed)
    policy = config.chaos_policy(streams)
    policy.enabled = False               # clean install first
    script = config.nemesis(streams)

    recorder = None
    if flight_dir is not None:
        # Clock is rebound to the live kernel once the cluster is up;
        # only the meta record (emitted below) sees the placeholder.
        recorder = FlightRecorder(flight_dir, clock=lambda: 0.0)
        recorder.emit("meta", runtime="live", seed=config.seed,
                      initial_tag=INITIAL_TAG, config=asdict(config))
        policy.flight = recorder

    async with LoopbackCluster(
            config.server_names, chaos=policy,
            call_timeout=config.call_timeout,
            transport_attempts=config.transport_attempts,
            lock_timeout=config.lock_timeout,
            idle_abort_after=config.idle_abort_after,
            data_root=data_root, seed=config.seed,
            flight=recorder) as cluster:
        kernel = cluster.client.kernel
        if recorder is not None:
            recorder.clock = lambda: kernel.now
        suite = await cluster.install(config.suite_configuration(),
                                      INITIAL_TAG.encode("utf-8"),
                                      **_suite_kwargs(config))
        started = kernel.now
        autopilot = None
        if config.autopilot:
            autopilot = WeightAutopilot(
                suite, health=cluster.client.health,
                policy=config.autopilot_policy())

        policy.enabled = True
        nemesis_task = asyncio.ensure_future(
            run_live_nemesis(cluster, script, policy,
                             disable_at_end=False))
        ops_rng = streams.stream("soak:ops")
        history: List[OpRecord] = FlightHistory(recorder) \
            if recorder is not None else []
        try:
            await cluster.run(
                _drive_ops(suite, lambda: kernel.now, config, ops_rng,
                           autopilot=autopilot, policy=policy,
                           history=history))
        finally:
            # The op run never outlives this scope with servers down:
            # the script's tail heals and restarts everything.
            adapter = await nemesis_task
        policy.enabled = False
        if autopilot is not None:
            await cluster.run(
                _drive_autopilot_restore(suite, autopilot,
                                         lambda: kernel.now, config,
                                         history))
        await cluster.run(
            _final_reads(suite, lambda: kernel.now, config,
                         start_index=history[-1].index + 1
                         if history else config.ops,
                         history=history))
        elapsed = kernel.now - started
        breakers = cluster.client.health.snapshot()
        if recorder is not None:
            recorder.emit("metrics", blocking=_flight_blocking_snapshot(
                cluster.client.metrics), chaos=policy.stats())
            recorder.close()
        if trace_path is not None:
            cluster.export_trace_jsonl(
                trace_path, max_bytes=DEFAULT_TRACE_MAX_BYTES)

    return SoakReport(
        runtime="live", config=config,
        report=check_history(history, initial_tag=INITIAL_TAG),
        history=history, chaos_stats=policy.stats(),
        nemesis_steps=len(adapter.applied),
        breakers=breakers, elapsed_ms=elapsed,
        autopilot=autopilot.state() if autopilot is not None else None)
