"""Invariant-checked soak runs under the nemesis, on either runtime.

One seeded :class:`SoakConfig` determines everything: the chaos policy's
per-link faults, the nemesis schedule, and the operation mix a
sequential client issues.  :func:`run_sim_soak` executes it on a
:class:`~repro.testbed.Testbed` in virtual time; :func:`run_live_soak`
executes it on a :class:`~repro.live.harness.LoopbackCluster` over real
sockets.  Both record the same :class:`~repro.chaos.invariants.OpRecord`
history and hand it to the same checker, so the ``repro chaos`` CLI can
replay a live soak's exact fault script on the simulator and compare
verdicts.

The op driver is one generator shared verbatim by both runtimes — the
same property that lets the whole protocol stack run on either kernel.
Failed operations are recorded, not fatal: under a nemesis that never
downs more representatives than the quorum tolerates, most operations
ride through on retries, breakers route around dead representatives,
and an operation that still fails must fail *cleanly* (a failed write is
provably uncommitted).  After the nemesis ends and the policy is
disabled, a handful of convergence reads on the healed cluster must
observe the latest committed version — the soak's proof that degraded
service, not corrupted state, was the worst that happened.

This module imports the live runtime, so :mod:`repro.chaos` does not
import it eagerly; reach it as ``repro.chaos.soak``.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional

from ..core.votes import Representative, SuiteConfiguration
from ..errors import ReproError
from ..sim.rng import RandomStreams
from .health import HealthTracker
from .invariants import InvariantReport, OpRecord, check_history
from .nemesis import (NemesisScript, random_nemesis, run_live_nemesis,
                      schedule_on_sim)
from .policy import ChaosPolicy

#: Payload installed at version 1.
INITIAL_TAG = "soak-init"


@dataclass
class SoakConfig:
    """Everything a soak run needs, fully determined by ``seed``."""

    reps: int = 5
    ops: int = 500
    seed: int = 1
    read_fraction: float = 0.7
    final_reads: int = 3

    # Per-message chaos (applies on every link, both runtimes).
    loss: float = 0.05
    delay_probability: float = 0.25
    delay_min: float = 1.0
    delay_max: float = 15.0
    duplicate_probability: float = 0.02

    # Nemesis (crash / restart / partition schedule).
    horizon: Optional[float] = None      # ms; default derived from ops
    mean_interval: float = 1_000.0
    max_down: Optional[int] = None       # default (reps - 1) // 2

    # Read fast path: on by default (the production default); a soak
    # may turn it off to exercise the legacy two-trip path, or set
    # ``read_max_bytes`` below the payload size so every piggyback is
    # truncated and the fallback runs under chaos.
    read_fastpath: bool = True
    read_max_bytes: Optional[int] = None   # None → the suite default

    # Client aggressiveness.  Short timeouts keep a loopback soak brisk;
    # generous attempt counts let operations ride out crash windows.
    call_timeout: float = 300.0
    inquiry_timeout: float = 250.0
    data_timeout: float = 500.0
    transport_attempts: int = 2
    max_attempts: int = 8
    retry_backoff: float = 40.0

    # Server-side lock discipline, tightened so locks stranded by a
    # killed client resolve well inside one op-retry ladder.
    lock_timeout: float = 400.0
    idle_abort_after: float = 2_000.0

    def __post_init__(self) -> None:
        if self.reps < 3:
            raise ValueError("need at least 3 representatives")
        if self.ops < 1:
            raise ValueError("need at least one operation")

    @property
    def server_names(self) -> List[str]:
        return [f"s{i + 1}" for i in range(self.reps)]

    @property
    def majority(self) -> int:
        return self.reps // 2 + 1

    def nemesis_horizon(self) -> float:
        if self.horizon is not None:
            return self.horizon
        return max(6_000.0, 20.0 * self.ops)

    def suite_configuration(self) -> SuiteConfiguration:
        """One vote per representative, majority read and write quorums
        (``r + w > N`` and ``2w > N`` both hold with the largest
        tolerance for crashed representatives)."""
        reps = tuple(
            Representative(rep_id=f"rep-{i + 1}", server=name, votes=1,
                           latency_hint=float(i))
            for i, name in enumerate(self.server_names))
        return SuiteConfiguration(suite_name="chaosdb",
                                  representatives=reps,
                                  read_quorum=self.majority,
                                  write_quorum=self.majority)

    def chaos_policy(self, streams: RandomStreams) -> ChaosPolicy:
        return ChaosPolicy(streams=streams,
                           drop_probability=self.loss,
                           delay_probability=self.delay_probability,
                           delay_min=self.delay_min,
                           delay_max=self.delay_max,
                           duplicate_probability=self.duplicate_probability)

    def nemesis(self, streams: RandomStreams) -> NemesisScript:
        return random_nemesis(self.server_names, streams=streams,
                              horizon=self.nemesis_horizon(),
                              mean_interval=self.mean_interval,
                              max_down=self.max_down)


@dataclass
class SoakReport:
    """Everything a soak run produced."""

    runtime: str                         # "sim" | "live"
    config: SoakConfig
    report: InvariantReport
    history: List[OpRecord]
    chaos_stats: Dict[str, int]
    nemesis_steps: int
    breakers: Dict[str, Any] = field(default_factory=dict)
    elapsed_ms: float = 0.0

    @property
    def ok(self) -> bool:
        return self.report.ok

    @property
    def verdict(self) -> str:
        """Runtime-independent outcome, for sim/live comparison."""
        return "OK" if self.report.ok else "VIOLATIONS:" + ",".join(
            sorted({violation.rule
                    for violation in self.report.violations}))

    def summary(self) -> str:
        chaos = ", ".join(f"{name}={count}" for name, count
                          in sorted(self.chaos_stats.items()))
        return (f"[{self.runtime}] seed={self.config.seed} "
                f"{self.report.summary()} | nemesis steps: "
                f"{self.nemesis_steps} | {chaos} | "
                f"{self.elapsed_ms:.0f}ms")


# ---------------------------------------------------------------------------
# The shared op driver (one generator, both runtimes)
# ---------------------------------------------------------------------------

def _drive_ops(suite, clock, config: SoakConfig,
               rng) -> Generator[Any, Any, List[OpRecord]]:
    """Issue the seeded op mix sequentially; record every outcome."""
    history: List[OpRecord] = []
    for index in range(config.ops):
        if rng.random() < config.read_fraction:
            yield from _one_read(suite, clock, index, history)
        else:
            yield from _one_write(suite, clock, index, history,
                                  tag=f"soak-{index}")
    return history


def _final_reads(suite, clock, config: SoakConfig,
                 start_index: int) -> Generator[Any, Any, List[OpRecord]]:
    """Convergence reads on the healed, chaos-free cluster."""
    history: List[OpRecord] = []
    for offset in range(config.final_reads):
        yield from _one_read(suite, clock, start_index + offset, history)
    return history


def _one_read(suite, clock, index: int,
              history: List[OpRecord]) -> Generator[Any, Any, None]:
    started = clock()
    try:
        result = yield from suite.read()
    except ReproError as exc:
        history.append(OpRecord(
            index=index, kind="read", ok=False, started=started,
            finished=clock(), error=type(exc).__name__))
        return
    history.append(OpRecord(
        index=index, kind="read", ok=True, started=started,
        finished=clock(), version=result.version,
        tag=result.data.decode("utf-8", errors="replace"),
        served_by=result.served_by, quorum=list(result.quorum),
        observed=dict(result.observed), attempts=result.attempts))


def _one_write(suite, clock, index: int, history: List[OpRecord],
               tag: str) -> Generator[Any, Any, None]:
    started = clock()
    try:
        result = yield from suite.write(tag.encode("utf-8"))
    except ReproError as exc:
        history.append(OpRecord(
            index=index, kind="write", ok=False, started=started,
            finished=clock(), tag=tag, error=type(exc).__name__))
        return
    history.append(OpRecord(
        index=index, kind="write", ok=True, started=started,
        finished=clock(), version=result.version, tag=tag,
        quorum=list(result.quorum), observed=dict(result.observed),
        attempts=result.attempts))


def _suite_kwargs(config: SoakConfig) -> Dict[str, Any]:
    kwargs = {"inquiry_timeout": config.inquiry_timeout,
              "data_timeout": config.data_timeout,
              "max_attempts": config.max_attempts,
              "retry_backoff": config.retry_backoff,
              "read_fastpath": config.read_fastpath}
    if config.read_max_bytes is not None:
        kwargs["read_max_bytes"] = config.read_max_bytes
    return kwargs


# ---------------------------------------------------------------------------
# Runtime-specific runners
# ---------------------------------------------------------------------------

def run_sim_soak(config: SoakConfig) -> SoakReport:
    """The soak on a simulated testbed, in virtual time."""
    from ..testbed import Testbed

    streams = RandomStreams(seed=config.seed)
    policy = config.chaos_policy(streams)
    policy.enabled = False               # clean install first
    script = config.nemesis(streams)

    bed = Testbed(config.server_names, seed=config.seed,
                  call_timeout=config.call_timeout,
                  lock_timeout=config.lock_timeout,
                  idle_abort_after=config.idle_abort_after, obs=True)
    bed.network.chaos = policy
    client = bed.clients["client"]
    client.manager.transport_attempts = config.transport_attempts
    health = HealthTracker(clock=lambda: bed.sim.now,
                           metrics=bed.metrics)
    client.endpoint.health = health

    suite = bed.install(config.suite_configuration(),
                        INITIAL_TAG.encode("utf-8"),
                        health=health, **_suite_kwargs(config))
    started = bed.sim.now

    policy.enabled = True
    adapter = schedule_on_sim(bed, script, policy, disable_at_end=False)
    ops_rng = streams.stream("soak:ops")
    history = bed.run(_drive_ops(suite, lambda: bed.sim.now, config,
                                 ops_rng))

    # Let the nemesis script finish (heal + restart-all), then verify
    # convergence on the healed cluster without message-level faults.
    remaining = script.horizon - bed.sim.now
    bed.settle(grace=max(1_000.0, remaining + 1_000.0))
    policy.enabled = False
    history += bed.run(_final_reads(suite, lambda: bed.sim.now, config,
                                    start_index=config.ops))

    return SoakReport(
        runtime="sim", config=config,
        report=check_history(history, initial_tag=INITIAL_TAG),
        history=history, chaos_stats=policy.stats(),
        nemesis_steps=len(adapter.applied),
        breakers=health.snapshot(),
        elapsed_ms=bed.sim.now - started)


async def run_live_soak(config: SoakConfig,
                        data_root: Optional[str] = None,
                        trace_path: Optional[str] = None) -> SoakReport:
    """The soak on a live loopback cluster, over real sockets."""
    from ..live.harness import LoopbackCluster

    streams = RandomStreams(seed=config.seed)
    policy = config.chaos_policy(streams)
    policy.enabled = False               # clean install first
    script = config.nemesis(streams)

    async with LoopbackCluster(
            config.server_names, chaos=policy,
            call_timeout=config.call_timeout,
            transport_attempts=config.transport_attempts,
            lock_timeout=config.lock_timeout,
            idle_abort_after=config.idle_abort_after,
            data_root=data_root, seed=config.seed) as cluster:
        suite = await cluster.install(config.suite_configuration(),
                                      INITIAL_TAG.encode("utf-8"),
                                      **_suite_kwargs(config))
        kernel = cluster.client.kernel
        started = kernel.now

        policy.enabled = True
        nemesis_task = asyncio.ensure_future(
            run_live_nemesis(cluster, script, policy,
                             disable_at_end=False))
        ops_rng = streams.stream("soak:ops")
        try:
            history = await cluster.run(
                _drive_ops(suite, lambda: kernel.now, config, ops_rng))
        finally:
            # The op run never outlives this scope with servers down:
            # the script's tail heals and restarts everything.
            adapter = await nemesis_task
        policy.enabled = False
        history += await cluster.run(
            _final_reads(suite, lambda: kernel.now, config,
                         start_index=config.ops))
        elapsed = kernel.now - started
        breakers = cluster.client.health.snapshot()
        if trace_path is not None:
            cluster.export_trace_jsonl(trace_path)

    return SoakReport(
        runtime="live", config=config,
        report=check_history(history, initial_tag=INITIAL_TAG),
        history=history, chaos_stats=policy.stats(),
        nemesis_steps=len(adapter.applied),
        breakers=breakers, elapsed_ms=elapsed)
