"""Deterministic fault injection and graceful degradation.

Gifford's availability argument is only as good as the failures it is
exercised against.  This package makes failure a first-class, *seeded*
input to both runtimes:

* :mod:`~repro.chaos.policy` — a :class:`ChaosPolicy` that decides, per
  link and per message, whether to drop, delay or duplicate.  The same
  policy object interposes on the simulated
  :class:`~repro.sim.network.Network` and the live
  :class:`~repro.live.transport.TransportNode`, so one fault model
  drives either runtime.
* :mod:`~repro.chaos.nemesis` — scripted and seeded-random crash /
  restart / partition schedules, with adapters for the sim testbed and
  the live loopback cluster.
* :mod:`~repro.chaos.retry` — exponential backoff with cap and seeded
  jitter, threaded through the RPC endpoint, the 2PC decision retries
  and the suite's operation retries.
* :mod:`~repro.chaos.health` — per-representative circuit breakers
  (closed → open → half-open) that quorum assembly consults to route
  around dead representatives and fail fast when a quorum is provably
  unattainable.
* :mod:`~repro.chaos.invariants` — a history-recording checker for the
  paper's safety claims (version monotonicity, unique commit versions,
  reads returning the latest committed version).

:mod:`~repro.chaos.soak` (imported on demand — it pulls in the live
runtime) runs a seeded soak of N operations under the nemesis on either
runtime and checks the recorded history.
"""

from .health import CLOSED, HALF_OPEN, OPEN, CircuitBreaker, HealthTracker
from .invariants import (InvariantReport, OpRecord, Violation,
                         check_history, history_from_json,
                         history_to_json)
from .nemesis import (LiveClusterAdapter, NemesisScript, NemesisStep,
                      TestbedAdapter, markov_nemesis, random_nemesis,
                      run_live_nemesis, schedule_on_sim)
from .policy import ChaosPolicy, ChaosVerdict
from .retry import RetryPolicy

__all__ = [
    "CLOSED",
    "ChaosPolicy",
    "ChaosVerdict",
    "CircuitBreaker",
    "HALF_OPEN",
    "HealthTracker",
    "InvariantReport",
    "LiveClusterAdapter",
    "NemesisScript",
    "NemesisStep",
    "OPEN",
    "OpRecord",
    "RetryPolicy",
    "TestbedAdapter",
    "Violation",
    "check_history",
    "history_from_json",
    "history_to_json",
    "markov_nemesis",
    "random_nemesis",
    "run_live_nemesis",
    "schedule_on_sim",
]
