"""Retry backoff policy: exponential, capped, with seeded jitter.

One small immutable object shared by every layer that retries —
:meth:`~repro.rpc.endpoint.RpcEndpoint.call_with_retries`, the 2PC
coordinator's decision retries, and the suite's per-operation retry
loop.  Jitter draws come from the caller's
:class:`~repro.sim.rng.RandomStreams` stream, so simulated runs stay
bit-for-bit deterministic and live runs de-synchronise naturally.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace


@dataclass(frozen=True)
class RetryPolicy:
    """Delay schedule for attempt ``n`` (0-based): ``base * multiplier**n``,
    capped at ``cap``, scaled by a jitter factor in
    ``[1 - jitter, 1 + jitter]``.

    The defaults give 25, 50, 100, ... ms (±50 %), capped at 2 s — a
    conventional exponential-backoff ladder.  ``jitter=0.5`` draws the
    factor as ``0.5 + rng.random()``, which is exactly the jitter the
    suite's retry loop has always used, so adopting the policy there
    changes no simulated timing.
    """

    base: float = 25.0
    multiplier: float = 2.0
    cap: float = 2_000.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.base < 0:
            raise ValueError("base must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")

    def delay(self, attempt: int, rng: random.Random) -> float:
        """Backoff before retry number ``attempt`` (0-based), in ms.

        Draws from ``rng`` exactly once when jitter is enabled and the
        delay is non-zero — callers relying on common random numbers
        can count draws.
        """
        if self.base <= 0:
            return 0.0
        raw = min(self.cap, self.base * self.multiplier ** attempt)
        if self.jitter <= 0:
            return raw
        factor = 1.0 - self.jitter + 2.0 * self.jitter * rng.random()
        return raw * factor

    def with_base(self, base: float) -> "RetryPolicy":
        """This policy with a different first-step delay."""
        return replace(self, base=base)

    def constant(self) -> "RetryPolicy":
        """This policy flattened to a fixed ``base`` delay (no growth)."""
        return replace(self, multiplier=1.0, jitter=0.0)
