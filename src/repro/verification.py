"""History checking: independent verification of suite consistency.

The tests that assert "reads see the last committed write" encode the
expectation inline.  This module is the opposite approach, in the style
of external consistency checkers: *record* every operation any client
performs against a suite (with its real-time interval and outcome),
then check the whole history against the model of an atomic,
version-numbered register — with no knowledge of how the protocol
works.

The model's rules for a valid history:

* **W1 — unique versions**: no two successful writes install the same
  version number (this is what ``2w > N`` buys).
* **W2 — version/data binding**: every successful read of version *v*
  returns exactly the data the version-*v* write installed.
* **R1 — real-time monotonicity**: if operation *a* completed before
  operation *b* started, then *b*'s version is at least *a*'s —
  and strictly greater if *b* is a write.  (Strict serializability of
  an atomic register, expressed on version numbers.)
* **R2 — reads read something written**: every read's version was
  installed by some write (or is the install version of the suite).

A :class:`HistoryRecorder` wraps any suite-like client and records
automatically; :func:`check_history` returns the violations (empty ⇒
the history is strictly serializable under the register model).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Generator, List, Tuple


@dataclass(frozen=True)
class Operation:
    """One completed client operation, with its real-time interval."""

    client: str
    kind: str                 # "read" | "write"
    start: float
    end: float
    version: int
    data: bytes

    def __post_init__(self) -> None:
        if self.kind not in ("read", "write"):
            raise ValueError(f"unknown operation kind {self.kind!r}")
        if self.end < self.start:
            raise ValueError("operation ends before it starts")


@dataclass
class Violation:
    """One rule breach found in a history."""

    rule: str
    detail: str
    operations: Tuple[Operation, ...] = ()

    def __str__(self) -> str:
        return f"[{self.rule}] {self.detail}"


def check_history(operations: List[Operation],
                  install_version: int = 1,
                  install_data: bytes = b"",
                  ) -> List[Violation]:
    """Validate a history against the atomic register model."""
    violations: List[Violation] = []
    writes = [op for op in operations if op.kind == "write"]
    reads = [op for op in operations if op.kind == "read"]

    # W1 — unique write versions.
    by_version: Dict[int, Operation] = {}
    for write in writes:
        existing = by_version.get(write.version)
        if existing is not None:
            violations.append(Violation(
                "W1", f"two writes installed version {write.version}",
                (existing, write)))
        else:
            by_version[write.version] = write

    # W2 — reads return the data their version's write installed.
    version_data: Dict[int, bytes] = {install_version: install_data}
    for write in writes:
        version_data.setdefault(write.version, write.data)
    for read in reads:
        expected = version_data.get(read.version)
        if expected is None:
            violations.append(Violation(
                "R2", f"read observed version {read.version}, which no "
                      "write installed", (read,)))
        elif read.data != expected:
            violations.append(Violation(
                "W2", f"read of version {read.version} returned "
                      f"{read.data!r}, but that version holds "
                      f"{expected!r}", (read,)))

    # R1 — real-time monotonicity of versions.
    ordered = sorted(operations, key=lambda op: (op.start, op.end))
    for i, first in enumerate(ordered):
        for second in ordered[i + 1:]:
            if second.start < first.end:
                continue  # concurrent: no real-time constraint
            if second.kind == "write":
                if second.version <= first.version:
                    violations.append(Violation(
                        "R1", f"write v{second.version} started after "
                              f"an operation that already saw "
                              f"v{first.version}", (first, second)))
            else:
                if second.version < first.version:
                    violations.append(Violation(
                        "R1", f"read saw v{second.version} after an "
                              f"operation that already saw "
                              f"v{first.version} completed",
                        (first, second)))
    return violations


class HistoryRecorder:
    """Wraps a suite-like client, recording every completed operation.

    Use one recorder (shared `history` list) per suite across all its
    clients::

        history = []
        recorder = HistoryRecorder(suite, "alice", history)
        result = yield from recorder.read()
        ...
        assert check_history(history) == []
    """

    def __init__(self, target: Any, client: str,
                 history: List[Operation]) -> None:
        self.target = target
        self.client = client
        self.history = history

    @property
    def sim(self):
        return self.target.sim

    def read(self) -> Generator[Any, Any, Any]:
        start = self.sim.now
        result = yield from self.target.read()
        self.history.append(Operation(
            client=self.client, kind="read", start=start,
            end=self.sim.now, version=result.version, data=result.data))
        return result

    def write(self, data: bytes) -> Generator[Any, Any, Any]:
        start = self.sim.now
        result = yield from self.target.write(data)
        self.history.append(Operation(
            client=self.client, kind="write", start=start,
            end=self.sim.now, version=result.version, data=bytes(data)))
        return result
