"""A replicated calendar in the style of Violet.

Gifford's prototype ran inside *Violet*, a distributed calendar system
at Xerox PARC, layered exactly as this package is: calendar → file
suites → transactions → stable file system → packet network.  This
module is that top layer: a multi-user calendar whose state lives in
one file suite, giving it replication, tunable availability, and
serializable updates for free.

All mutating operations are read-modify-write transactions through
:meth:`~repro.core.suite.FileSuiteClient.transact`, so two users adding
appointments concurrently can never lose an update — one of them simply
serializes after the other.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, Tuple

from ..core.suite import FileSuiteClient
from ..errors import ReproError


class CalendarError(ReproError):
    """Calendar-level failures (conflicts, unknown entries)."""


@dataclass(frozen=True)
class Appointment:
    """One calendar entry.  Times are hours since epoch (floats).

    ``meeting_id`` is non-empty for entries mirrored across several
    users' calendars by the meeting scheduler; it correlates the copies.
    """

    entry_id: int
    title: str
    start: float
    end: float
    owner: str
    attendees: Tuple[str, ...] = ()
    meeting_id: str = ""

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise CalendarError(
                f"appointment {self.title!r}: end must follow start")

    def overlaps(self, other: "Appointment") -> bool:
        return self.start < other.end and other.start < self.end

    def to_json(self) -> Dict[str, Any]:
        return {
            "entry_id": self.entry_id,
            "title": self.title,
            "start": self.start,
            "end": self.end,
            "owner": self.owner,
            "attendees": list(self.attendees),
            "meeting_id": self.meeting_id,
        }

    @classmethod
    def from_json(cls, raw: Dict[str, Any]) -> "Appointment":
        return cls(entry_id=raw["entry_id"], title=raw["title"],
                   start=raw["start"], end=raw["end"], owner=raw["owner"],
                   attendees=tuple(raw.get("attendees", ())),
                   meeting_id=raw.get("meeting_id", ""))


def encode_calendar(next_id: int, entries: List[Appointment]) -> bytes:
    return json.dumps({
        "next_id": next_id,
        "entries": [entry.to_json() for entry in
                    sorted(entries, key=lambda e: (e.start, e.entry_id))],
    }, separators=(",", ":")).encode()


def decode_calendar(blob: bytes) -> Tuple[int, List[Appointment]]:
    if not blob:
        return 1, []
    raw = json.loads(blob.decode())
    return raw["next_id"], [Appointment.from_json(entry)
                            for entry in raw["entries"]]


class Calendar:
    """A shared calendar stored in a file suite.

    One instance per user/client; all instances over the same suite see
    one serializable calendar.
    """

    def __init__(self, suite: FileSuiteClient, user: str) -> None:
        self.suite = suite
        self.user = user

    # ------------------------------------------------------------------
    # Mutations (each a retried read-modify-write transaction)
    # ------------------------------------------------------------------

    def add_appointment(self, title: str, start: float, end: float,
                        attendees: Tuple[str, ...] = (),
                        reject_conflicts: bool = False,
                        ) -> Generator[Any, Any, Appointment]:
        """Add an entry; optionally refuse overlapping ones.

        With ``reject_conflicts`` the overlap check runs inside the same
        transaction as the insert, so two conflicting concurrent adds
        cannot both succeed.
        """
        def mutate(txn):
            current = yield from self.suite.read_in(txn, for_update=True)
            next_id, entries = decode_calendar(current.data)
            appointment = Appointment(
                entry_id=next_id, title=title, start=start, end=end,
                owner=self.user, attendees=attendees)
            if reject_conflicts:
                for entry in entries:
                    if entry.overlaps(appointment) \
                            and self._shares_people(entry, appointment):
                        raise CalendarError(
                            f"{title!r} conflicts with {entry.title!r}")
            entries.append(appointment)
            yield from self.suite.write_in(
                txn, encode_calendar(next_id + 1, entries))
            return appointment

        result = yield from self.suite.transact(mutate)
        return result

    def cancel(self, entry_id: int) -> Generator[Any, Any, None]:
        """Remove an entry; only its owner may cancel it."""
        def mutate(txn):
            current = yield from self.suite.read_in(txn, for_update=True)
            next_id, entries = decode_calendar(current.data)
            remaining = [entry for entry in entries
                         if entry.entry_id != entry_id]
            if len(remaining) == len(entries):
                raise CalendarError(f"no appointment #{entry_id}")
            victim = next(entry for entry in entries
                          if entry.entry_id == entry_id)
            if victim.owner != self.user:
                raise CalendarError(
                    f"#{entry_id} belongs to {victim.owner}, "
                    f"not {self.user}")
            yield from self.suite.write_in(
                txn, encode_calendar(next_id, remaining))
            return None

        yield from self.suite.transact(mutate)

    def reschedule(self, entry_id: int, start: float, end: float,
                   ) -> Generator[Any, Any, Appointment]:
        """Move an entry to a new time slot (owner only)."""
        def mutate(txn):
            current = yield from self.suite.read_in(txn, for_update=True)
            next_id, entries = decode_calendar(current.data)
            updated: List[Appointment] = []
            moved: Optional[Appointment] = None
            for entry in entries:
                if entry.entry_id == entry_id:
                    if entry.owner != self.user:
                        raise CalendarError(
                            f"#{entry_id} belongs to {entry.owner}")
                    moved = Appointment(
                        entry_id=entry.entry_id, title=entry.title,
                        start=start, end=end, owner=entry.owner,
                        attendees=entry.attendees)
                    updated.append(moved)
                else:
                    updated.append(entry)
            if moved is None:
                raise CalendarError(f"no appointment #{entry_id}")
            yield from self.suite.write_in(
                txn, encode_calendar(next_id, updated))
            return moved

        result = yield from self.suite.transact(mutate)
        return result

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def appointments(self) -> Generator[Any, Any, List[Appointment]]:
        """All entries, in start-time order."""
        result = yield from self.suite.read()
        _next_id, entries = decode_calendar(result.data)
        return entries

    def agenda_for(self, user: str,
                   ) -> Generator[Any, Any, List[Appointment]]:
        """Entries owned by or inviting ``user``."""
        entries = yield from self.appointments()
        return [entry for entry in entries
                if entry.owner == user or user in entry.attendees]

    def between(self, start: float, end: float,
                ) -> Generator[Any, Any, List[Appointment]]:
        """Entries overlapping the window [start, end)."""
        entries = yield from self.appointments()
        return [entry for entry in entries
                if entry.start < end and start < entry.end]

    # ------------------------------------------------------------------

    @staticmethod
    def _shares_people(a: Appointment, b: Appointment) -> bool:
        people_a = {a.owner, *a.attendees}
        people_b = {b.owner, *b.attendees}
        return bool(people_a & people_b)


def empty_calendar_data() -> bytes:
    """Initial suite contents for a fresh calendar."""
    return encode_calendar(1, [])
