"""Meeting scheduling across calendars: multi-suite transactions.

Violet's model is one calendar *per user*, each its own file suite
(possibly with different vote tunings).  Scheduling a meeting must
update every attendee's calendar **atomically** — the meeting appears
on all of them or none — and must reject a slot any attendee has
already filled, without time-of-check/time-of-use races.

Both properties come straight from the transaction substrate: the
scheduler reads every attendee's calendar ``for_update`` (exclusive
locks on each suite's write quorum), checks conflicts, stages one write
per calendar, and commits with two-phase commit across all the suites'
servers.  This is exactly the workload Gifford built file suites for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Generator, List, Optional, Sequence, Tuple

from ..core.suite import RETRYABLE, FileSuiteClient
from ..txn.coordinator import TransactionManager
from .calendar import (Appointment, CalendarError, decode_calendar,
                       encode_calendar)


class SchedulingConflict(CalendarError):
    """The requested slot is taken on at least one attendee's calendar."""

    def __init__(self, blockers: Dict[str, str]) -> None:
        detail = ", ".join(f"{user} has {title!r}"
                           for user, title in sorted(blockers.items()))
        super().__init__(f"slot unavailable: {detail}")
        self.blockers = blockers


@dataclass(frozen=True)
class Meeting:
    """A scheduled meeting, mirrored on every participant's calendar."""

    meeting_id: str
    title: str
    start: float
    end: float
    organizer: str
    participants: Tuple[str, ...]


class MeetingScheduler:
    """Schedules meetings across per-user calendar suites."""

    def __init__(self, manager: TransactionManager,
                 calendars: Dict[str, FileSuiteClient],
                 max_attempts: int = 4,
                 retry_backoff: float = 50.0) -> None:
        if not calendars:
            raise ValueError("need at least one calendar")
        self.manager = manager
        self.calendars = dict(calendars)
        self.sim = manager.sim
        self.max_attempts = max_attempts
        self.retry_backoff = retry_backoff
        self._next_meeting = 0

    def _users_of(self, organizer: str,
                  attendees: Sequence[str]) -> List[str]:
        users = [organizer, *attendees]
        unknown = [user for user in users if user not in self.calendars]
        if unknown:
            raise CalendarError(f"no calendar for {unknown}")
        # Deterministic order avoids lock-ordering deadlocks between
        # concurrent schedulers.
        return sorted(set(users))

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def schedule(self, organizer: str, attendees: Sequence[str],
                 title: str, start: float, end: float,
                 ) -> Generator[Any, Any, Meeting]:
        """Put the meeting on every participant's calendar, atomically.

        Raises :class:`SchedulingConflict` (without changing anything)
        if any participant is busy during [start, end).
        """
        users = self._users_of(organizer, attendees)
        self._next_meeting += 1
        meeting_id = (f"{self.manager.endpoint.host.name}"
                      f"-m{self._next_meeting}")
        meeting = Meeting(meeting_id=meeting_id, title=title, start=start,
                          end=end, organizer=organizer,
                          participants=tuple(users))

        def attempt(txn):
            states: Dict[str, Tuple[int, List[Appointment]]] = {}
            blockers: Dict[str, str] = {}
            for user in users:
                current = yield from self.calendars[user].read_in(
                    txn, for_update=True)
                next_id, entries = decode_calendar(current.data)
                states[user] = (next_id, entries)
                for entry in entries:
                    if entry.start < end and start < entry.end:
                        blockers[user] = entry.title
                        break
            if blockers:
                raise SchedulingConflict(blockers)
            for user in users:
                next_id, entries = states[user]
                entries.append(Appointment(
                    entry_id=next_id, title=title, start=start, end=end,
                    owner=organizer, attendees=tuple(u for u in users
                                                     if u != user),
                    meeting_id=meeting_id))
                yield from self.calendars[user].write_in(
                    txn, encode_calendar(next_id + 1, entries))
            return meeting

        result = yield from self._transact(attempt)
        return result

    def cancel(self, meeting: Meeting, by: str,
               ) -> Generator[Any, Any, None]:
        """Remove the meeting from every participant's calendar."""
        if by != meeting.organizer:
            raise CalendarError(
                f"only {meeting.organizer} may cancel {meeting.title!r}")

        def attempt(txn):
            for user in meeting.participants:
                current = yield from self.calendars[user].read_in(
                    txn, for_update=True)
                next_id, entries = decode_calendar(current.data)
                remaining = [entry for entry in entries
                             if entry.meeting_id != meeting.meeting_id]
                if len(remaining) != len(entries):
                    yield from self.calendars[user].write_in(
                        txn, encode_calendar(next_id, remaining))
            return None

        yield from self._transact(attempt)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def find_free_slot(self, users: Sequence[str], duration: float,
                       window_start: float, window_end: float,
                       granularity: float = 0.5,
                       ) -> Generator[Any, Any, Optional[float]]:
        """Earliest start in the window where every user is free.

        A convenience query (non-transactional across users — the
        subsequent :meth:`schedule` re-checks under locks, so a race
        simply surfaces as :class:`SchedulingConflict`).
        """
        participants = self._users_of(users[0], users[1:])
        busy: List[Tuple[float, float]] = []
        for user in participants:
            result = yield from self.calendars[user].read()
            _next_id, entries = decode_calendar(result.data)
            busy.extend((entry.start, entry.end) for entry in entries)
        slot = window_start
        while slot + duration <= window_end:
            if all(not (slot < b_end and b_start < slot + duration)
                   for b_start, b_end in busy):
                return slot
            slot += granularity
        return None

    # ------------------------------------------------------------------

    def _transact(self, operation) -> Generator[Any, Any, Any]:
        last_error: Optional[BaseException] = None
        for attempt in range(self.max_attempts):
            txn = self.manager.begin()
            try:
                result = yield from operation(txn)
                yield from txn.commit()
                return result
            except RETRYABLE as exc:
                yield from txn.abort()
                last_error = exc
                if self.retry_backoff > 0 \
                        and attempt + 1 < self.max_attempts:
                    yield self.sim.timeout(
                        self.retry_backoff * (2 ** attempt))
            except GeneratorExit:
                raise
            except BaseException:
                yield from txn.abort()
                raise
        assert last_error is not None
        raise last_error
