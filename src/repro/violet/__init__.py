"""Violet: the distributed calendar application layer.

The paper's prototype host system, rebuilt on top of file suites — the
flagship demonstration that applications get replication, tunable
availability, and serializable updates from the voting layer for free.
"""

from .calendar import (Appointment, Calendar, CalendarError,
                       decode_calendar, empty_calendar_data,
                       encode_calendar)
from .scheduling import Meeting, MeetingScheduler, SchedulingConflict

__all__ = [
    "Appointment", "Calendar", "CalendarError", "Meeting",
    "MeetingScheduler", "SchedulingConflict", "decode_calendar",
    "empty_calendar_data", "encode_calendar",
]
