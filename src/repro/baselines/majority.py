"""Majority consensus (Thomas, 1979) — the unweighted-voting baseline.

Thomas' scheme gives every copy exactly one vote and requires a simple
majority for both reads and writes.  As Gifford observes, it is the
special case of weighted voting with a uniform vote assignment and
``r = w = ⌈(n+1)/2⌉`` — so the baseline is built *as* a file suite with
that configuration, exercising exactly the same machinery.

(The original paper uses timestamps and a request-daemon update loop;
for availability/latency comparisons, which is what the benches measure,
the quorum structure is the determining factor and version numbers play
the timestamps' role.)
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core.suite import FileSuiteClient
from ..core.votes import Representative, SuiteConfiguration
from ..txn.coordinator import TransactionManager


def majority_quorum(num_copies: int) -> int:
    """The simple-majority threshold for ``num_copies`` equal votes."""
    if num_copies < 1:
        raise ValueError("need at least one copy")
    return num_copies // 2 + 1


def majority_configuration(object_name: str, servers: List[str],
                           latency_hints: Optional[Dict[str, float]] = None,
                           ) -> SuiteConfiguration:
    """A uniform one-vote-per-copy, majority-read/majority-write suite."""
    hints = latency_hints or {}
    quorum = majority_quorum(len(servers))
    reps = tuple(
        Representative(rep_id=f"rep-{server}", server=server, votes=1,
                       latency_hint=hints.get(server, 0.0))
        for server in servers)
    return SuiteConfiguration(suite_name=object_name,
                              representatives=reps,
                              read_quorum=quorum, write_quorum=quorum)


class MajorityConsensusClient(FileSuiteClient):
    """A file-suite client pinned to Thomas' majority configuration."""

    @classmethod
    def build(cls, manager: TransactionManager, object_name: str,
              servers: List[str],
              latency_hints: Optional[Dict[str, float]] = None,
              **kwargs) -> "MajorityConsensusClient":
        config = majority_configuration(object_name, servers, latency_hints)
        return cls(manager, config, **kwargs)
