"""Read-one / write-all (the SDD-1-style baseline).

Every replica is always current, so a read touches any single replica —
the cheapest reachable one.  The price is paid on writes: *every*
replica must be locked, staged and committed, so one crashed or
partitioned-away server blocks all writes.  This is the scheme weighted
voting generalises away from: it is the ``r = 1, w = N`` corner of the
quorum trade-off with maximal read availability and minimal write
availability.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional

from ..errors import QuorumUnavailableError
from ..core.suite import RETRYABLE
from ..txn.coordinator import Transaction
from ..txn.locks import EXCLUSIVE
from .base import ProtocolResult, ReplicaProtocolClient


class ReadOneWriteAllClient(ReplicaProtocolClient):
    """ROWA over the transactional substrate."""

    protocol_name = "rowa"

    def __init__(self, *args: Any,
                 latency_hints: Optional[Dict[str, float]] = None,
                 **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self.latency_hints = latency_hints or {}

    def _ordered_servers(self) -> List[str]:
        return sorted(self.servers,
                      key=lambda s: (self.latency_hints.get(s, 0.0), s))

    def _read_once(self, txn: Transaction
                   ) -> Generator[Any, Any, ProtocolResult]:
        last_error: Optional[BaseException] = None
        for server in self._ordered_servers():
            try:
                data, version = yield txn.call(
                    server, "txn.read", name=self.file_name,
                    timeout=self.call_timeout)
                return ProtocolResult(data=data, version=version,
                                      replicas=[server])
            except RETRYABLE as exc:
                last_error = exc
        raise last_error if last_error is not None else \
            QuorumUnavailableError("read", 1, 0)

    def _write_once(self, txn: Transaction, data: bytes
                    ) -> Generator[Any, Any, ProtocolResult]:
        # Lock every replica exclusively and learn the current version.
        stats = []
        for server in self.servers:
            stat = yield txn.call(server, "txn.stat", name=self.file_name,
                                  mode=EXCLUSIVE, timeout=self.call_timeout)
            stats.append(stat)
        new_version = max(stat["version"] for stat in stats) + 1
        calls = [txn.call(server, "txn.stage_write", name=self.file_name,
                          data=data, version=new_version,
                          timeout=self.call_timeout)
                 for server in self.servers]
        yield self.sim.all_of(calls)
        return ProtocolResult(data=data, version=new_version,
                              replicas=list(self.servers))
