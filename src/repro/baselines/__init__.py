"""Baseline replica-control schemes Gifford compares against.

Read-one/write-all (SDD-1), primary copy (distributed INGRES), and
Thomas' majority consensus — all running over the same simulated
substrate as the file suite, so comparisons isolate the protocol.
"""

from .base import ProtocolResult, ReplicaProtocolClient
from .majority import (MajorityConsensusClient, majority_configuration,
                       majority_quorum)
from .primary_copy import PrimaryCopyClient
from .rowa import ReadOneWriteAllClient

__all__ = [
    "MajorityConsensusClient", "PrimaryCopyClient", "ProtocolResult",
    "ReadOneWriteAllClient", "ReplicaProtocolClient",
    "majority_configuration", "majority_quorum",
]
