"""Primary-copy replication (the distributed-INGRES-style baseline).

All updates are directed at a designated *primary*; secondaries receive
the new value by asynchronous propagation after commit.  Strongly
consistent reads therefore also go to the primary (a secondary may lag);
``allow_stale_reads`` lets reads fall back to secondaries at the cost of
possibly observing an older version — the trade this scheme is known
for.

Availability shape: both reads (strict mode) and writes are exactly as
available as the primary server — there is no voting and no failover in
the classic scheme, which is precisely the contrast Gifford draws.
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional

from ..errors import QuorumUnavailableError, ReproError
from ..core.suite import RETRYABLE
from ..txn.coordinator import Transaction
from ..txn.locks import EXCLUSIVE
from .base import ProtocolResult, ReplicaProtocolClient


class PrimaryCopyClient(ReplicaProtocolClient):
    """Primary copy with asynchronous secondary propagation."""

    protocol_name = "primary"

    def __init__(self, *args: Any, allow_stale_reads: bool = False,
                 propagation_attempts: int = 5,
                 propagation_backoff: float = 200.0,
                 **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self.allow_stale_reads = allow_stale_reads
        self.propagation_attempts = propagation_attempts
        self.propagation_backoff = propagation_backoff

    @property
    def primary(self) -> str:
        return self.servers[0]

    @property
    def secondaries(self) -> List[str]:
        return self.servers[1:]

    # ------------------------------------------------------------------

    def _read_once(self, txn: Transaction
                   ) -> Generator[Any, Any, ProtocolResult]:
        order = [self.primary]
        if self.allow_stale_reads:
            order += self.secondaries
        last_error: Optional[BaseException] = None
        for server in order:
            try:
                data, version = yield txn.call(
                    server, "txn.read", name=self.file_name,
                    timeout=self.call_timeout)
                if server != self.primary:
                    self.metrics.counter("primary.stale_reads").increment()
                return ProtocolResult(data=data, version=version,
                                      replicas=[server])
            except RETRYABLE as exc:
                last_error = exc
        raise last_error if last_error is not None else \
            QuorumUnavailableError("read", 1, 0)

    def _write_once(self, txn: Transaction, data: bytes
                    ) -> Generator[Any, Any, ProtocolResult]:
        stat = yield txn.call(self.primary, "txn.stat", name=self.file_name,
                              mode=EXCLUSIVE, timeout=self.call_timeout)
        new_version = stat["version"] + 1
        yield txn.call(self.primary, "txn.stage_write", name=self.file_name,
                       data=data, version=new_version,
                       timeout=self.call_timeout)
        self._spawn_propagation(data, new_version)
        return ProtocolResult(data=data, version=new_version,
                              replicas=[self.primary])

    # ------------------------------------------------------------------

    def _spawn_propagation(self, data: bytes, version: int) -> None:
        """Push the new value to secondaries after the primary commits."""
        for server in self.secondaries:
            self.sim.spawn(self._propagate(server, data, version),
                           name=f"primary-propagate:{server}")

    def _propagate(self, server: str, data: bytes, version: int
                   ) -> Generator[Any, Any, None]:
        for attempt in range(self.propagation_attempts):
            txn = self.manager.begin()
            try:
                yield txn.call(server, "txn.stage_write",
                               name=self.file_name, data=data,
                               version=version, only_if_newer=True,
                               timeout=self.call_timeout)
                yield from txn.commit()
                self.metrics.counter("primary.propagations").increment()
                return
            except ReproError:
                yield from txn.abort()
                yield self.sim.timeout(
                    self.propagation_backoff * (attempt + 1))
        self.metrics.counter("primary.propagation_failures").increment()
