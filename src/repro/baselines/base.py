"""Shared machinery for baseline replica-control protocols.

The baselines implement the same abstract operations as the file suite
(read bytes / write bytes, each a transaction with retries), so the
comparison benches can drive any protocol through one interface.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Generator, List, Optional

from ..errors import ReproError
from ..core.suite import RETRYABLE
from ..sim.metrics import MetricsRegistry
from ..txn.coordinator import Transaction, TransactionManager

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.simulator import Simulator


@dataclass
class ProtocolResult:
    """Uniform outcome record for a baseline operation."""

    data: bytes
    version: int
    replicas: List[str]
    attempts: int = 1


class ReplicaProtocolClient:
    """Base class: owns the transaction/retry loop of every baseline."""

    #: Subclasses set this (used for file naming and metrics).
    protocol_name = "abstract"

    def __init__(self, manager: TransactionManager, object_name: str,
                 servers: List[str],
                 call_timeout: float = 1_000.0,
                 max_attempts: int = 4,
                 retry_backoff: float = 50.0,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        if not servers:
            raise ValueError("need at least one replica server")
        self.manager = manager
        self.sim = manager.sim
        self.object_name = object_name
        self.servers = list(servers)
        self.call_timeout = call_timeout
        self.max_attempts = max_attempts
        self.retry_backoff = retry_backoff
        self.metrics = metrics or MetricsRegistry()

    @property
    def file_name(self) -> str:
        return f"{self.protocol_name}:{self.object_name}"

    # -- public API ------------------------------------------------------

    def read(self) -> Generator[Any, Any, ProtocolResult]:
        started = self.sim.now
        result = yield from self._with_retries(self._read_once)
        self.metrics.counter(f"{self.protocol_name}.reads").increment()
        self.metrics.histogram(
            f"{self.protocol_name}.read_latency").observe(
            self.sim.now - started)
        return result

    def write(self, data: bytes) -> Generator[Any, Any, ProtocolResult]:
        started = self.sim.now
        result = yield from self._with_retries(self._write_once, data)
        self.metrics.counter(f"{self.protocol_name}.writes").increment()
        self.metrics.histogram(
            f"{self.protocol_name}.write_latency").observe(
            self.sim.now - started)
        return result

    def install(self, initial_data: bytes = b"",
                ) -> Generator[Any, Any, None]:
        """Create the replicated object on every server."""
        txn = self.manager.begin()
        try:
            calls = [txn.call(server, "txn.stage_write",
                              name=self.file_name, data=initial_data,
                              version=1, create=True,
                              timeout=self.call_timeout)
                     for server in self.servers]
            yield self.sim.all_of(calls)
            yield from txn.commit()
        except ReproError:
            yield from txn.abort()
            raise

    # -- to be provided by subclasses --------------------------------------

    def _read_once(self, txn: Transaction
                   ) -> Generator[Any, Any, ProtocolResult]:
        raise NotImplementedError

    def _write_once(self, txn: Transaction, data: bytes
                    ) -> Generator[Any, Any, ProtocolResult]:
        raise NotImplementedError

    # -- retry loop ----------------------------------------------------------

    def _with_retries(self, operation, *args) -> Generator[Any, Any, Any]:
        last_error: Optional[BaseException] = None
        for attempt in range(self.max_attempts):
            txn = self.manager.begin()
            try:
                result = yield from operation(txn, *args)
                yield from txn.commit()
                result.attempts = attempt + 1
                return result
            except RETRYABLE as exc:
                yield from txn.abort()
                last_error = exc
                if self.retry_backoff > 0 \
                        and attempt + 1 < self.max_attempts:
                    yield self.sim.timeout(
                        self.retry_backoff * (2 ** attempt))
            except GeneratorExit:
                raise  # killed process: must not yield during close()
            except BaseException:
                yield from txn.abort()
                raise
        self.metrics.counter(f"{self.protocol_name}.failures").increment()
        assert last_error is not None
        raise last_error
