"""Client-side transaction machinery: the facade and 2PC coordinator.

A client begins a :class:`Transaction`, performs reads and staged writes
against participants over RPC (each call tagged with the transaction
id), then calls :meth:`Transaction.commit`, which drives two-phase
commit:

* **Phase 1** — ``prepare`` in parallel to every touched participant.
  Any refusal, timeout, or unreachable participant aborts the whole
  transaction (best-effort aborts are sent to the rest).
* **Phase 2** — once all votes are in, the decision is final: ``commit``
  is sent to every participant that voted *prepared* (read-only voters
  already released).  Participants that cannot be reached are retried by
  a detached background process until they acknowledge — they hold the
  transaction in-doubt across their crashes, so the retries eventually
  land.

This is textbook *blocking* 2PC: if the coordinating client dies between
the two phases, prepared participants stay in-doubt.  That matches the
transaction substrate Gifford's design assumes; the weighted-voting
layer above never depends on more.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, List, Optional, Set, Tuple

from ..errors import ReproError, TransactionAborted
from ..obs.spans import NOOP_SPAN, TraceContext
from ..rpc.endpoint import RpcEndpoint
from .ids import TransactionId, TransactionIdGenerator
from .participant import VOTE_PREPARED

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..chaos.retry import RetryPolicy
    from ..obs.collector import TraceCollector
    from ..sim.rng import RandomStreams
    from ..sim.simulator import Simulator


def _default_streams() -> "RandomStreams":
    from ..sim.rng import RandomStreams
    return RandomStreams(seed=0)

#: RPC methods that stage durable changes at a participant.
_STAGING_METHODS = frozenset({"txn.stage_write", "txn.stage_delete"})

#: States of a client-side transaction.
ACTIVE = "active"
COMMITTING = "committing"
COMMITTED = "committed"
ABORTED = "aborted"


class Transaction:
    """A client-side transaction handle.

    Use :meth:`call` for all participant RPCs so the touched-participant
    set is tracked for commit.  The handle is not reusable: after
    :meth:`commit` or :meth:`abort` it is finished.
    """

    def __init__(self, manager: "TransactionManager",
                 txn_id: TransactionId) -> None:
        self.manager = manager
        self.txn_id = txn_id
        #: Servers that replied to at least one call: they hold state for
        #: us and take part in two-phase commit.
        self.participants: Set[str] = set()
        #: Servers we called at all.  A call whose reply was lost may
        #: still have taken locks on the server, so ``attempted -
        #: participants`` receives best-effort aborts at termination
        #: (the participant's idle-abort sweeper is the backstop).
        self.attempted: Set[str] = set()
        #: Servers where this transaction staged a write or delete.
        #: Empty set ⇒ read-only transaction, whose commit is a pure
        #: lock release and need not be awaited.
        self.staged: Set[str] = set()
        self._after_commit: List[Any] = []
        self.state = ACTIVE
        #: Observability: the span RPCs issued through :meth:`call`
        #: parent themselves to.  The suite points this at its current
        #: span (operation root, then quorum-assembly child, ...); the
        #: no-op default keeps untraced transactions allocation-free.
        self.span = NOOP_SPAN

    def after_commit(self, callback) -> None:
        """Run ``callback()`` if and when this transaction commits.

        Used for post-commit side effects that must not happen on abort
        — e.g. scheduling background refresh of the representatives a
        write left behind.
        """
        self._after_commit.append(callback)

    def _run_commit_hooks(self) -> None:
        callbacks, self._after_commit = self._after_commit, []
        for callback in callbacks:
            callback()

    @property
    def sim(self) -> "Simulator":
        return self.manager.sim

    def call(self, server: str, method: str, timeout: Optional[float] = None,
             **args: Any):
        """RPC to a participant, tagged with this transaction's id."""
        if self.state != ACTIVE:
            raise TransactionAborted(self.txn_id,
                                     f"call in state {self.state}")
        self.attempted.add(server)
        if method in _STAGING_METHODS:
            self.staged.add(server)
        effective = timeout if timeout is not None \
            else self.manager.call_timeout
        event = self.manager.endpoint.call(
            server, method, timeout=effective,
            attempts=self.manager.transport_attempts,
            trace=self.span.context if self.span else None,
            txn=str(self.txn_id), **args)

        def confirm(settled, server=server):
            if settled.triggered:
                self.participants.add(server)

        event.add_callback(confirm)
        return event

    def commit(self) -> Generator[Any, Any, None]:
        """Run two-phase commit; raises :class:`TransactionAborted` on failure."""
        yield from self.manager.commit(self)

    def abort(self) -> Generator[Any, Any, None]:
        """Abort everywhere (best effort)."""
        yield from self.manager.abort(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Transaction {self.txn_id} {self.state}>"


class TransactionManager:
    """Creates transactions and coordinates their termination."""

    def __init__(self, sim: "Simulator", endpoint: RpcEndpoint,
                 call_timeout: float = 1_000.0,
                 commit_retry_interval: float = 500.0,
                 commit_retry_attempts: int = 20,
                 transport_attempts: int = 3,
                 collector: Optional["TraceCollector"] = None,
                 retry_policy: Optional["RetryPolicy"] = None,
                 streams: Optional["RandomStreams"] = None,
                 profiler: Optional[Any] = None) -> None:
        self.sim = sim
        self.endpoint = endpoint
        #: Optional observability: with a collector, each staged commit
        #: records one span per 2PC phase under the transaction's span.
        self.collector = collector
        #: Optional :class:`~repro.perf.PhaseProfiler`; when wired, a
        #: staged commit records "2pc.prepare" and "2pc.commit" phase
        #: durations.
        self.profiler = profiler
        #: Optional :class:`~repro.obs.flight.FlightRecorder`: every
        #: transaction termination appends one ``txn`` record with the
        #: 2PC outcome (runtimes wire it after construction).
        self.flight: Optional[Any] = None
        self.call_timeout = call_timeout
        #: Retransmissions per RPC (same call id; servers are
        #: at-most-once, so this is safe).  One lost datagram then costs
        #: a timeout, not an aborted transaction.
        self.transport_attempts = transport_attempts
        self.commit_retry_interval = commit_retry_interval
        self.commit_retry_attempts = commit_retry_attempts
        #: Optional exponential backoff for decision retries.  ``None``
        #: keeps the historic fixed ``commit_retry_interval`` (tests
        #: assign that attribute after construction and expect it
        #: honoured); a policy makes retries to a down participant back
        #: off instead of hammering every interval.
        self.retry_policy = retry_policy
        self._retry_rng = (streams or _default_streams()).stream(
            f"2pc-retry:{endpoint.host.name}")
        self._ids = TransactionIdGenerator(endpoint.host.name)
        self.commits = 0
        self.aborts = 0

    def begin(self) -> Transaction:
        return Transaction(self, self._ids.next_id())

    # ------------------------------------------------------------------
    # Two-phase commit
    # ------------------------------------------------------------------

    def commit(self, txn: Transaction) -> Generator[Any, Any, None]:
        if txn.state != ACTIVE:
            raise TransactionAborted(txn.txn_id,
                                     f"commit in state {txn.state}")
        txn.state = COMMITTING
        # Calls that never got a reply may still hold locks remotely:
        # send them aborts (their idle sweeper is the backstop).
        unconfirmed = txn.attempted - txn.participants
        if unconfirmed:
            self._spawn_aborts(txn.txn_id, sorted(unconfirmed))
        if not txn.participants:
            txn.state = COMMITTED
            self.commits += 1
            txn._run_commit_hooks()
            return

        if not txn.staged:
            # Read-only transaction.  At this instant the client holds
            # every shared lock it ever needed, so the reads already
            # form a consistent (serializable) snapshot; the prepares
            # below only *release* locks and nothing about this
            # transaction can still fail.  Fire them without waiting —
            # this is why a suite read does not pay a commit round trip
            # to its slowest representative.  The detached retry keeps
            # re-sending if the release message is lost, so a dropped
            # datagram cannot strand a shared lock until the idle
            # sweeper.
            txn.span.event("2pc.read_only_release",
                           participants=len(txn.participants))
            release_trace = txn.span.context if txn.span else None
            for server in sorted(txn.participants):
                self._spawn_retry(txn.txn_id, server, "txn.prepare",
                                  trace=release_trace)
            txn.state = COMMITTED
            self.commits += 1
            self._record_flight_outcome(txn, "commit", read_only=True)
            txn._run_commit_hooks()
            return

        prepare_span = self._phase_span(txn, "2pc.prepare")
        prepare_started = self.sim.now
        votes = yield from self._gather_votes(
            txn, trace=self._phase_ctx(prepare_span, txn),
            span=prepare_span)
        if self.profiler is not None:
            self.profiler.observe("2pc.prepare",
                                  self.sim.now - prepare_started)
        failures = [(server, outcome) for server, ok, outcome in votes
                    if not ok]
        if failures:
            server, error = failures[0]
            prepare_span.end(error=f"prepare failed at {server}: {error}")
            # Abort everywhere, including participants whose vote was
            # lost in transit — they may have durably prepared and will
            # otherwise stay in-doubt forever.
            to_abort = [srv for srv, ok, outcome in votes
                        if not ok or outcome == VOTE_PREPARED]
            self._spawn_aborts(txn.txn_id, to_abort,
                               trace=txn.span.context if txn.span else None)
            txn.state = ABORTED
            self.aborts += 1
            self._record_flight_outcome(txn, "abort",
                                        prepare_failed_at=server)
            raise TransactionAborted(
                txn.txn_id, f"prepare failed at {server}: {error}")
        prepare_span.set_attr("votes", len(votes))
        prepare_span.end()

        # Decision point: everyone voted yes.  Read-only voters are done.
        to_commit = [server for server, _ok, outcome in votes
                     if outcome == VOTE_PREPARED]
        commit_span = self._phase_span(txn, "2pc.commit")
        commit_trace = self._phase_ctx(commit_span, txn)
        commit_started = self.sim.now
        stragglers = yield from self._send_decision(
            txn.txn_id, to_commit, trace=commit_trace,
            span=commit_span)
        if self.profiler is not None:
            self.profiler.observe("2pc.commit",
                                  self.sim.now - commit_started)
        for server in stragglers:
            self._spawn_retry(txn.txn_id, server, "txn.commit",
                              trace=commit_trace)
        if stragglers:
            commit_span.set_attr("stragglers", len(stragglers))
        commit_span.end()
        txn.state = COMMITTED
        self.commits += 1
        self._record_flight_outcome(txn, "commit",
                                    stragglers=len(stragglers))
        txn._run_commit_hooks()

    def _record_flight_outcome(self, txn: Transaction, outcome: str,
                               **extra: Any) -> None:
        """Black-box record for one 2PC decision.

        Transactions that touched no participant are skipped — they
        decided nothing a postmortem could care about."""
        if self.flight is None or self.flight.closed \
                or not txn.participants:
            return
        self.flight.emit("txn", txn=str(txn.txn_id), outcome=outcome,
                         participants=len(txn.participants),
                         staged=len(txn.staged), **extra)

    def _phase_span(self, txn: Transaction, name: str):
        """A child span of ``txn.span`` for one 2PC phase (or a no-op)."""
        if self.collector is not None and txn.span:
            return self.collector.start_span(name, parent=txn.span,
                                             txn=str(txn.txn_id))
        return NOOP_SPAN

    @staticmethod
    def _phase_ctx(span, txn: Transaction) -> Optional[TraceContext]:
        """Context the phase's RPCs should carry: the phase span's if it
        is live, else the transaction's own (collector-less manager)."""
        if span:
            return span.context
        return txn.span.context if txn.span else None

    def abort(self, txn: Transaction) -> Generator[Any, Any, None]:
        if txn.state in (COMMITTED, ABORTED):
            return
        txn.state = ABORTED
        self.aborts += 1
        self._record_flight_outcome(txn, "abort")
        abort_trace = txn.span.context if txn.span else None
        results = yield from self._broadcast(
            txn.txn_id, "txn.abort", sorted(txn.attempted),
            trace=abort_trace)
        for server, ok, _outcome in results:
            if not ok:
                self._spawn_retry(txn.txn_id, server, "txn.abort",
                                  trace=abort_trace)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _gather_votes(self, txn: Transaction,
                      trace: Optional[TraceContext] = None,
                      span=None,
                      ) -> Generator[Any, Any,
                                     List[Tuple[str, bool, Any]]]:
        return (yield from self._broadcast(
            txn.txn_id, "txn.prepare", sorted(txn.participants),
            trace=trace, span=span))

    def _broadcast(self, txn_id: TransactionId, method: str,
                   servers: List[str],
                   trace: Optional[TraceContext] = None,
                   span=None,
                   ) -> Generator[Any, Any, List[Tuple[str, bool, Any]]]:
        """Call ``method`` on every server in parallel; never raises.

        Returns ``(server, ok, outcome)`` triples where ``outcome`` is
        the reply value or the exception.  With a live ``span``, each
        reply stamps a ``2pc.reply`` event as it arrives — since the
        phase blocks on *all* participants, the last such event marks
        the phase's critical participant.
        """
        started = self.sim.now

        def one(server: str):
            try:
                value = yield self.endpoint.call(
                    server, method, timeout=self.call_timeout,
                    attempts=self.transport_attempts, trace=trace,
                    txn=str(txn_id))
                if span:
                    span.event("2pc.reply", server=server, ok=True,
                               at=self.sim.now,
                               waited=self.sim.now - started)
                return (server, True, value)
            except ReproError as exc:
                if span:
                    span.event("2pc.reply", server=server, ok=False,
                               at=self.sim.now,
                               waited=self.sim.now - started,
                               error=type(exc).__name__)
                return (server, False, exc)

        processes = [self.sim.spawn(one(server),
                                    name=f"2pc:{method}:{server}")
                     for server in servers]
        results = yield self.sim.all_of(processes)
        return results

    def _send_decision(self, txn_id: TransactionId, servers: List[str],
                       trace: Optional[TraceContext] = None,
                       span=None,
                       ) -> Generator[Any, Any, List[str]]:
        """Send commit to ``servers``; return those that did not ack."""
        results = yield from self._broadcast(txn_id, "txn.commit", servers,
                                             trace=trace, span=span)
        return [server for server, ok, _outcome in results if not ok]

    def _spawn_aborts(self, txn_id: TransactionId, servers: List[str],
                      trace: Optional[TraceContext] = None) -> None:
        for server in servers:
            self._spawn_retry(txn_id, server, "txn.abort", trace=trace)

    def _spawn_retry(self, txn_id: TransactionId, server: str,
                     method: str,
                     trace: Optional[TraceContext] = None) -> None:
        """Detached background retry until the participant answers.

        Retries only on *transport* silence (timeout/unreachable); any
        substantive reply — an ack, or a typed refusal such as "unknown
        transaction" — is definitive and ends the retry.
        """
        from ..errors import HostUnreachableError, RpcTimeout

        def send():
            return self.endpoint.call(
                server, method, timeout=self.call_timeout,
                attempts=self.transport_attempts, trace=trace,
                txn=str(txn_id))

        # The first transmission happens *now*, synchronously with the
        # decision — a partition or crash one event later must not be
        # able to get between the decision and its first message.
        first = send()

        def retry(outstanding):
            for attempt in range(self.commit_retry_attempts):
                try:
                    yield outstanding
                    return
                except (RpcTimeout, HostUnreachableError):
                    yield self.sim.timeout(
                        self._decision_retry_delay(attempt))
                    outstanding = send()
                except ReproError:
                    return  # definitive response from the participant
            # Gave up: the participant stays in-doubt until an operator
            # (or a test) resolves it explicitly.

        self.sim.spawn(retry(first), name=f"2pc-retry:{method}:{server}")

    def _decision_retry_delay(self, attempt: int) -> float:
        """Delay before decision-retry ``attempt`` (0-based)."""
        if self.retry_policy is None:
            return self.commit_retry_interval
        return self.retry_policy.delay(attempt, self._retry_rng)
