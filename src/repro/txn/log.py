"""Durable transaction records: intentions lists.

Gifford's transaction system commits by atomically installing an
*intentions list* — the set of writes the transaction wants — and then
replaying it.  Here a participant's prepared state is one
:class:`TransactionRecord` holding every intention for that server,
serialized to JSON (data base64-encoded) and stored as a single file in
the shadow-paging file system, whose whole-file writes are crash-atomic.
That file *is* the participant's commit log:

* ``PREPARED`` record present  → the participant votes yes and must
  await the coordinator's decision across crashes (in-doubt).
* ``COMMITTED`` record present → the decision is durable; intentions
  are (re)applied idempotently, then the record is deleted.
* no record                    → presumed abort.
"""

from __future__ import annotations

import base64
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from .ids import TransactionId

#: Directory prefix for transaction-record files.
RECORD_PREFIX = "__txn__/"

PREPARED = "prepared"
COMMITTED = "committed"


@dataclass(frozen=True)
class Intention:
    """One pending write: install ``data`` as ``name`` at ``version``."""

    name: str
    data: bytes
    version: int
    properties: Optional[Dict[str, Any]] = None
    delete: bool = False

    def to_json(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "data": base64.b64encode(self.data).decode("ascii"),
            "version": self.version,
            "properties": self.properties,
            "delete": self.delete,
        }

    @classmethod
    def from_json(cls, raw: Dict[str, Any]) -> "Intention":
        return cls(name=raw["name"],
                   data=base64.b64decode(raw["data"]),
                   version=raw["version"],
                   properties=raw.get("properties"),
                   delete=raw.get("delete", False))


@dataclass
class TransactionRecord:
    """The durable per-participant state of one transaction."""

    txn_id: TransactionId
    state: str
    intentions: List[Intention] = field(default_factory=list)

    @property
    def record_file(self) -> str:
        return record_file_name(self.txn_id)

    def encode(self) -> bytes:
        return json.dumps({
            "txn": str(self.txn_id),
            "state": self.state,
            "intentions": [i.to_json() for i in self.intentions],
        }, separators=(",", ":")).encode()

    @classmethod
    def decode(cls, blob: bytes) -> "TransactionRecord":
        raw = json.loads(blob.decode())
        return cls(txn_id=TransactionId.parse(raw["txn"]),
                   state=raw["state"],
                   intentions=[Intention.from_json(i)
                               for i in raw["intentions"]])


def record_file_name(txn_id: TransactionId) -> str:
    return f"{RECORD_PREFIX}{txn_id}"


def is_record_file(name: str) -> bool:
    return name.startswith(RECORD_PREFIX)
