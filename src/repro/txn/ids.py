"""Transaction identifiers.

A :class:`TransactionId` is globally unique and totally ordered
(originating site name breaks sequence-number ties).  The total order
gives deterministic victim selection under deadlock and stable sort
order in logs.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import total_ordering


@total_ordering
@dataclass(frozen=True)
class TransactionId:
    """Unique, ordered transaction identifier."""

    site: str
    sequence: int

    def __lt__(self, other: "TransactionId") -> bool:
        if not isinstance(other, TransactionId):
            return NotImplemented
        return (self.sequence, self.site) < (other.sequence, other.site)

    def __hash__(self) -> int:
        # Ids key every lock table and participant map, so the hash is
        # computed once and cached (the instance is frozen).
        value = self.__dict__.get("_hash")
        if value is None:
            value = hash((self.site, self.sequence))
            object.__setattr__(self, "_hash", value)
        return value

    def __str__(self) -> str:
        return f"{self.site}#{self.sequence}"

    @classmethod
    def parse(cls, text: str) -> "TransactionId":
        site, _, sequence = text.rpartition("#")
        if not site:
            raise ValueError(f"malformed transaction id {text!r}")
        return cls(site=site, sequence=int(sequence))


class TransactionIdGenerator:
    """Per-site generator of monotonically increasing transaction ids."""

    def __init__(self, site: str) -> None:
        self.site = site
        self._next = 0

    def next_id(self) -> TransactionId:
        self._next += 1
        return TransactionId(site=self.site, sequence=self._next)
