"""Transactional storage substrate: strict 2PL + intentions lists + 2PC.

This is the "transactions" layer of Gifford's stack.  File suites run
every read and write inside a transaction from this package, inheriting
atomicity (a write quorum commits or aborts as a unit) and serial
consistency (two-phase locking on representatives).
"""

from .coordinator import (ABORTED, ACTIVE, COMMITTED, COMMITTING,
                          Transaction, TransactionManager)
from .ids import TransactionId, TransactionIdGenerator
from .locks import EXCLUSIVE, SHARED, LockManager, compatible
from .log import (PREPARED, Intention, TransactionRecord, is_record_file,
                  record_file_name)
from .participant import (VOTE_PREPARED, VOTE_READ_ONLY,
                          TransactionParticipant)

__all__ = [
    "ABORTED", "ACTIVE", "COMMITTED", "COMMITTING", "EXCLUSIVE",
    "Intention", "LockManager", "PREPARED", "SHARED", "Transaction",
    "TransactionId", "TransactionIdGenerator", "TransactionManager",
    "TransactionParticipant", "TransactionRecord", "VOTE_PREPARED",
    "VOTE_READ_ONLY", "compatible", "is_record_file", "record_file_name",
]
