"""Per-server lock manager: shared/exclusive locks with deadlock detection.

Gifford's file suites inherit serial consistency from the transaction
system underneath them; this lock manager is that system's concurrency
control.  Representatives are locked in **shared** mode by version
inquiries and reads, and **exclusive** mode by writes, under strict
two-phase locking (locks released only at commit/abort).

Blocking requests return events.  Before a request blocks, the manager
checks the local waits-for graph and fails the request with
:class:`~repro.errors.DeadlockError` if waiting would close a cycle.
Distributed deadlocks (cycles spanning servers) are broken by lock
timeouts — the classic pragmatic complement, and the reason suite
operations retry with fresh transactions.

The lock table is volatile: :meth:`LockManager.clear` drops everything
on a crash.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Deque, Dict, List, Optional, Set

from ..errors import DeadlockError, LockTimeoutError
from ..sim.events import Event
from .ids import TransactionId

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.simulator import Simulator

SHARED = "S"
EXCLUSIVE = "X"


def compatible(held: str, requested: str) -> bool:
    """Lock mode compatibility: only S/S coexists."""
    return held == SHARED and requested == SHARED


@dataclass
class _Waiter:
    txn: TransactionId
    mode: str
    event: Event


class _ResourceLock:
    """Lock state for a single resource."""

    __slots__ = ("holders", "queue")

    def __init__(self) -> None:
        # Insertion order matters for upgrade bookkeeping and debugging.
        self.holders: "OrderedDict[TransactionId, str]" = OrderedDict()
        self.queue: Deque[_Waiter] = deque()

    def mode_of(self, txn: TransactionId) -> Optional[str]:
        return self.holders.get(txn)


class LockManager:
    """Strict two-phase locking for one server."""

    def __init__(self, sim: "Simulator", name: str = "",
                 default_timeout: Optional[float] = None) -> None:
        self.sim = sim
        self.name = name
        self.default_timeout = default_timeout
        self._locks: Dict[str, _ResourceLock] = {}
        self._held_by_txn: Dict[TransactionId, Set[str]] = {}
        # All resources each transaction currently has *queued* requests
        # on.  A set, not a scalar: one transaction can have several
        # outstanding requests (parallel inquiries), and granting one
        # must not lose track of the others.
        self._waiting_on: Dict[TransactionId, Set[str]] = {}
        self.deadlocks_detected = 0
        self.lock_timeouts = 0

    # -- queries -------------------------------------------------------------

    def holds(self, txn: TransactionId, resource: str,
              mode: Optional[str] = None) -> bool:
        lock = self._locks.get(resource)
        if lock is None:
            return False
        held = lock.mode_of(txn)
        if held is None:
            return False
        if mode is None:
            return True
        return held == mode or (held == EXCLUSIVE and mode == SHARED)

    def holders_of(self, resource: str) -> Dict[TransactionId, str]:
        lock = self._locks.get(resource)
        return dict(lock.holders) if lock else {}

    def locked_resources(self, txn: TransactionId) -> Set[str]:
        return set(self._held_by_txn.get(txn, set()))

    # -- acquisition -----------------------------------------------------------

    def acquire(self, txn: TransactionId, resource: str, mode: str,
                timeout: Optional[float] = None) -> Event:
        """Request ``mode`` on ``resource``; returns a grant event.

        The event triggers when granted, or fails with
        :class:`DeadlockError` (local cycle) or
        :class:`LockTimeoutError` (``timeout`` elapsed, default from the
        manager).  Re-acquiring a mode already covered is an immediate
        grant; S→X upgrade is supported and waits for other holders to
        drain, taking priority over queued fresh requests.
        """
        if mode not in (SHARED, EXCLUSIVE):
            raise ValueError(f"unknown lock mode {mode!r}")
        event = self.sim.event(name=f"lock:{resource}:{mode}")
        lock = self._locks.setdefault(resource, _ResourceLock())
        held = lock.mode_of(txn)

        if held == EXCLUSIVE or held == mode:
            event.trigger(mode)  # already covered
            return event

        if self._grantable(lock, txn, mode):
            self._grant(lock, txn, resource, mode)
            event.trigger(mode)
            return event

        # Must wait: deadlock check first.
        if self._would_deadlock(txn, resource, mode):
            self.deadlocks_detected += 1
            event.fail(DeadlockError(
                f"{self.name}: waiting for {mode} on {resource!r} "
                f"would deadlock {txn}"))
            return event

        waiter = _Waiter(txn=txn, mode=mode, event=event)
        if held == SHARED and mode == EXCLUSIVE:
            lock.queue.appendleft(waiter)  # upgrades jump the queue
        else:
            lock.queue.append(waiter)
        self._waiting_on.setdefault(txn, set()).add(resource)
        effective_timeout = timeout if timeout is not None \
            else self.default_timeout
        if effective_timeout is not None:
            self.sim.schedule(effective_timeout, self._expire, waiter,
                              resource)
        return event

    def _grantable(self, lock: _ResourceLock, txn: TransactionId,
                   mode: str) -> bool:
        other_holders = [m for t, m in lock.holders.items() if t != txn]
        if any(not compatible(m, mode) for m in other_holders):
            return False
        if mode == EXCLUSIVE and other_holders:
            return False
        # Fairness: a fresh shared request must not overtake a queued
        # exclusive request (starvation control).  Upgrades are exempt.
        if lock.mode_of(txn) is None:
            if any(w.mode == EXCLUSIVE for w in lock.queue):
                return False
        return True

    def _grant(self, lock: _ResourceLock, txn: TransactionId,
               resource: str, mode: str) -> None:
        lock.holders[txn] = mode
        self._held_by_txn.setdefault(txn, set()).add(resource)
        waited = self._waiting_on.get(txn)
        if waited is not None:
            waited.discard(resource)
            if not waited:
                del self._waiting_on[txn]

    # -- release ---------------------------------------------------------------

    def release_all(self, txn: TransactionId) -> None:
        """Drop every lock and queued request of ``txn`` (commit/abort)."""
        resources = self._held_by_txn.pop(txn, set())
        waited = self._waiting_on.pop(txn, set())
        resources = resources | set(waited)
        for resource in resources:
            lock = self._locks.get(resource)
            if lock is None:
                continue
            lock.holders.pop(txn, None)
            lock.queue = deque(w for w in lock.queue if w.txn != txn)
            self._promote(lock, resource)
            if not lock.holders and not lock.queue:
                del self._locks[resource]

    def _promote(self, lock: _ResourceLock, resource: str) -> None:
        """Grant queued requests that have become compatible, in order."""
        progressed = True
        while progressed and lock.queue:
            progressed = False
            head = lock.queue[0]
            if not head.event.pending:
                lock.queue.popleft()  # timed out or failed while queued
                progressed = True
                continue
            if self._grantable_waiter(lock, head):
                lock.queue.popleft()
                self._grant(lock, head.txn, resource, head.mode)
                head.event.trigger(head.mode)
                progressed = True

    def _grantable_waiter(self, lock: _ResourceLock, waiter: _Waiter) -> bool:
        other_holders = [m for t, m in lock.holders.items()
                         if t != waiter.txn]
        if any(not compatible(m, waiter.mode) for m in other_holders):
            return False
        if waiter.mode == EXCLUSIVE and other_holders:
            return False
        return True

    # -- failure handling --------------------------------------------------------

    def _expire(self, waiter: _Waiter, resource: str) -> None:
        if not waiter.event.pending:
            return
        lock = self._locks.get(resource)
        if lock is not None:
            lock.queue = deque(w for w in lock.queue if w is not waiter)
            self._promote(lock, resource)
        waited = self._waiting_on.get(waiter.txn)
        if waited is not None:
            waited.discard(resource)
            if not waited:
                del self._waiting_on[waiter.txn]
        self.lock_timeouts += 1
        waiter.event.fail(LockTimeoutError(
            f"{self.name}: {waiter.txn} timed out waiting for "
            f"{waiter.mode} on {resource!r}"))

    def clear(self) -> None:
        """Crash: drop the whole lock table; fail queued waiters."""
        for resource, lock in list(self._locks.items()):
            for waiter in lock.queue:
                if waiter.event.pending:
                    waiter.event.fail(LockTimeoutError(
                        f"{self.name}: server crashed"))
        self._locks.clear()
        self._held_by_txn.clear()
        self._waiting_on.clear()

    # -- deadlock detection ---------------------------------------------------------

    def _would_deadlock(self, txn: TransactionId, resource: str,
                        mode: str) -> bool:
        """DFS the local waits-for graph assuming ``txn`` waits on ``resource``."""
        start_blockers = self._blockers(resource, txn, mode)
        seen: Set[TransactionId] = set()
        stack: List[TransactionId] = list(start_blockers)
        while stack:
            blocker = stack.pop()
            if blocker == txn:
                return True
            if blocker in seen:
                continue
            seen.add(blocker)
            for waiting_resource in self._waiting_on.get(blocker, ()):
                waiting_mode = self._queued_mode(blocker,
                                                 waiting_resource)
                stack.extend(self._blockers(waiting_resource, blocker,
                                            waiting_mode))
        return False

    def _queued_mode(self, txn: TransactionId, resource: str) -> str:
        lock = self._locks.get(resource)
        if lock is not None:
            for waiter in lock.queue:
                if waiter.txn == txn:
                    return waiter.mode
        return EXCLUSIVE  # conservative

    def _blockers(self, resource: str, txn: TransactionId,
                  mode: str) -> Set[TransactionId]:
        """Transactions ``txn`` would wait behind on ``resource``."""
        lock = self._locks.get(resource)
        if lock is None:
            return set()
        blockers = {t for t, m in lock.holders.items()
                    if t != txn and not compatible(m, mode)}
        if mode == EXCLUSIVE:
            blockers |= {t for t in lock.holders if t != txn}
        # Queued conflicting requests ahead of us also block us — except
        # for an upgrade (we already hold the resource): upgrades jump
        # the queue, so only current holders can block them.
        if lock.mode_of(txn) is None:
            for waiter in lock.queue:
                if waiter.txn != txn and (not compatible(waiter.mode, mode)
                                          or waiter.mode == EXCLUSIVE
                                          or mode == EXCLUSIVE):
                    blockers.add(waiter.txn)
        return blockers
