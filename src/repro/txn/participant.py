"""The transaction participant running on every storage server.

Implements the server side of two-phase commit over the shadow-paging
file system, with strict two-phase locking for concurrency control:

* ``read`` / ``read_version`` take **shared** locks;
* ``stage_write`` / ``stage_delete`` take **exclusive** locks and buffer
  the write as an in-memory intention (no disk I/O until prepare);
* ``prepare`` makes the intentions list durable (one crash-atomic file
  write) and votes;
* ``commit`` durably flips the record to *committed*, applies the
  intentions idempotently, deletes the record, and releases locks;
* ``abort`` discards everything.

Crash/recovery: volatile state (locks, unprepared transactions)
vanishes on a crash.  At restart, :meth:`recover` replays the record
files — *committed* records are re-applied (redo) and removed;
*prepared* records become **in-doubt**: their files are re-locked
exclusively and the participant waits for the coordinator's decision,
which is the (blocking) behaviour of textbook two-phase commit.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING, Any, Dict, Generator, List, Optional, Tuple

from ..errors import (InvalidTransactionState, NoSuchFileError,
                      TransactionAborted)
from ..sim.metrics import MetricsRegistry
from ..storage.server import StorageServer
from .ids import TransactionId
from .locks import EXCLUSIVE, SHARED, LockManager
from .log import (COMMITTED, PREPARED, Intention, TransactionRecord,
                  is_record_file, record_file_name)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.simulator import Simulator

#: Votes returned by ``prepare``.
VOTE_PREPARED = "prepared"
VOTE_READ_ONLY = "read-only"


class _Scratch:
    """Volatile per-transaction state."""

    __slots__ = ("intentions", "prepared", "last_touched")

    def __init__(self, now: float = 0.0) -> None:
        self.intentions: Dict[str, Intention] = {}
        self.prepared = False
        self.last_touched = now


class TransactionParticipant:
    """Two-phase commit participant bound to one storage server."""

    def __init__(self, server: StorageServer,
                 lock_timeout: Optional[float] = None,
                 idle_abort_after: Optional[float] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 max_stat_bytes: Optional[int] = None) -> None:
        self.server = server
        self.sim = server.sim
        #: Optional observability: per-file version-lag gauges, exposed
        #: by the live daemon's /metrics endpoint.
        self.metrics = metrics
        #: Server-side ceiling on data piggybacked onto ``txn.stat``
        #: replies (``read_data=True``): whatever limit the client
        #: requests is additionally clamped to this, so a transport
        #: with a hard frame size (the live runtime's length-prefixed
        #: JSON frames) can never be asked to encode an oversized
        #: reply.  ``None`` means no server-side ceiling.
        self.max_stat_bytes = max_stat_bytes
        self.locks = LockManager(server.sim, name=server.name,
                                 default_timeout=lock_timeout)
        self._active: Dict[TransactionId, _Scratch] = {}
        self._indoubt: Dict[TransactionId, TransactionRecord] = {}
        # Tombstones for finished transactions: a *late retransmission*
        # of an operation (first delivery of a resent request, so the
        # endpoint's duplicate suppression cannot catch it) must not
        # resurrect a committed or aborted transaction's scratch state
        # and strand locks.  Bounded LRU.
        self._finished: "OrderedDict[TransactionId, None]" = OrderedDict()
        self._finished_capacity = 1024
        self.commits = 0
        self.aborts = 0
        self.idle_aborts = 0
        server.on_crash(self._on_crash)
        server.on_restart(self.recover)
        if idle_abort_after is not None:
            # Presumed-abort garbage collection: an *unprepared*
            # transaction whose client went silent (e.g. the client
            # timed out on us and moved on, or crashed) may always be
            # aborted unilaterally — only prepared state is binding.
            self.idle_abort_after = idle_abort_after
            self.sim.spawn(self._sweep_idle(),
                           name=f"txn-sweeper:{self.name}")

    @property
    def name(self) -> str:
        return self.server.name

    # ------------------------------------------------------------------
    # Data operations (RPC handlers; txn ids arrive as strings)
    # ------------------------------------------------------------------

    def read(self, txn: str, name: str,
             ) -> Generator[Any, Any, Tuple[bytes, int]]:
        """Read a file under a shared lock; sees the txn's own writes."""
        txn_id = TransactionId.parse(txn)
        scratch = self._scratch(txn_id)
        staged = scratch.intentions.get(name)
        if staged is not None:
            if staged.delete:
                raise NoSuchFileError(name)
            return staged.data, staged.version
        yield self.locks.acquire(txn_id, name, SHARED)
        result = yield from self.server.read_file(name)
        return result

    def read_version(self, txn: str, name: str,
                     ) -> Generator[Any, Any, int]:
        """Version-number inquiry under a shared lock (no data transfer)."""
        txn_id = TransactionId.parse(txn)
        scratch = self._scratch(txn_id)
        staged = scratch.intentions.get(name)
        if staged is not None:
            if staged.delete:
                raise NoSuchFileError(name)
            return staged.version
        yield self.locks.acquire(txn_id, name, SHARED)
        return self.server.stat(name).version

    def stat(self, txn: str, name: str, mode: str = SHARED,
             detail: bool = False, read_data: bool = False,
             max_bytes: Optional[int] = None,
             skip_version: Optional[int] = None,
             ) -> Generator[Any, Any, Dict[str, Any]]:
        """Version inquiry under a lock, optionally carrying the data.

        This is the suite's *version number inquiry*: by default it
        moves only the version number and the small ``stamp`` property
        (the suite stores its configuration version there), so the
        message stays tens of bytes.  ``detail=True`` additionally
        returns the full property map — the suite requests that only
        when the stamp reveals its configuration is stale.  Writers
        inquire with ``mode="X"`` so the exclusive lock is taken up
        front, avoiding shared→exclusive upgrade deadlocks between two
        concurrent writers at the same representative.

        ``read_data=True`` asks this representative to piggyback the
        file contents onto the reply (the single-round-trip read fast
        path): the lock the inquiry takes already covers the read, so
        the reply gains a ``data`` key and the client can skip the
        follow-up ``txn.read`` entirely.  Two guards keep the reply
        bounded:

        * ``max_bytes`` (clamped to :attr:`max_stat_bytes`) — a file
          larger than the limit is *not* read (no page I/O is spent on
          it); the reply carries ``truncated: True`` instead and the
          client falls back to the two-trip path;
        * ``skip_version`` — when the copy's version equals it, the
          client already holds these bytes (a client cache), so the
          data is omitted and the reply stays inquiry-sized.
        """
        txn_id = TransactionId.parse(txn)
        scratch = self._scratch(txn_id)
        staged = scratch.intentions.get(name)
        data: Optional[bytes] = None
        truncated = False
        if staged is not None:
            if staged.delete:
                raise NoSuchFileError(name)
            properties = staged.properties or {}
            version = staged.version
            if read_data and version != skip_version:
                if len(staged.data) <= self._stat_data_limit(max_bytes):
                    data = staged.data
                else:
                    truncated = True
        else:
            yield self.locks.acquire(txn_id, name, mode)
            info = self.server.stat(name)
            properties = info.properties
            version = info.version
            if read_data and version != skip_version:
                fetched = yield from self.server.read_file_limited(
                    name, self._stat_data_limit(max_bytes))
                if fetched is not None:
                    data, version = fetched
                else:
                    truncated = True
        result = {"version": version, "stamp": properties.get("stamp", 0)}
        if data is not None:
            result["data"] = data
        if truncated:
            result["truncated"] = True
        if detail:
            result["properties"] = properties
        return result

    def _stat_data_limit(self, max_bytes: Optional[int]) -> float:
        """Effective piggyback ceiling: client request ∧ server cap."""
        limit = float("inf") if max_bytes is None else float(max_bytes)
        if self.max_stat_bytes is not None:
            limit = min(limit, float(self.max_stat_bytes))
        return limit

    def stage_write(self, txn: str, name: str, data: bytes, version: int,
                    properties: Optional[Dict[str, Any]] = None,
                    create: bool = False, only_if_newer: bool = False,
                    ) -> Generator[Any, Any, str]:
        """Buffer a write under an exclusive lock; durable at prepare.

        With ``only_if_newer`` the write is skipped (returning
        ``"skipped"``) unless ``version`` exceeds the representative's
        current version.  The exclusive lock is held either way, so the
        check cannot be invalidated before commit — this is what lets
        the background refresher copy data to stale representatives
        without ever moving a version number backwards.
        """
        txn_id = TransactionId.parse(txn)
        scratch = self._scratch(txn_id)
        if scratch.prepared:
            raise InvalidTransactionState(
                f"{txn_id} already prepared on {self.name}")
        yield self.locks.acquire(txn_id, name, EXCLUSIVE)
        staged = scratch.intentions.get(name)
        if staged is not None and not staged.delete:
            exists, current_version = True, staged.version
        elif self.server.fs.exists(name):
            exists, current_version = True, self.server.stat(name).version
        else:
            exists, current_version = False, -1
        if not exists and not create:
            raise NoSuchFileError(name)
        if self.metrics is not None and exists:
            # Observed staleness: a foreground write carries
            # current + 1, a refresh (only_if_newer) carries the
            # current version itself — either way the write tells this
            # representative what the suite-wide version is, and the
            # shortfall of its own copy is its lag.
            global_current = version if only_if_newer else version - 1
            self.metrics.gauge(
                f"rep.version_lag[file={name},server={self.name}]").set(
                float(max(0, global_current - current_version)))
        if only_if_newer and exists and current_version >= version:
            return "skipped"
        scratch.intentions[name] = Intention(
            name=name, data=bytes(data), version=version,
            properties=dict(properties) if properties is not None else None)
        return "staged"

    def stage_delete(self, txn: str, name: str,
                     ) -> Generator[Any, Any, None]:
        txn_id = TransactionId.parse(txn)
        scratch = self._scratch(txn_id)
        if scratch.prepared:
            raise InvalidTransactionState(
                f"{txn_id} already prepared on {self.name}")
        yield self.locks.acquire(txn_id, name, EXCLUSIVE)
        scratch.intentions[name] = Intention(
            name=name, data=b"", version=0, delete=True)

    # ------------------------------------------------------------------
    # Two-phase commit (RPC handlers)
    # ------------------------------------------------------------------

    def prepare(self, txn: str) -> Generator[Any, Any, str]:
        """Phase 1: durably record intentions and vote."""
        txn_id = TransactionId.parse(txn)
        scratch = self._active.get(txn_id)
        if scratch is None:
            # We lost this transaction's state (crash since it started):
            # its locks and intentions are gone, so we must refuse.
            raise TransactionAborted(txn_id,
                                     f"unknown at participant {self.name}")
        if not scratch.intentions:
            # Read-only participant: release locks now, skip phase 2.
            self.locks.release_all(txn_id)
            del self._active[txn_id]
            return VOTE_READ_ONLY
            yield  # pragma: no cover - makes this a generator
        record = TransactionRecord(
            txn_id=txn_id, state=PREPARED,
            intentions=list(scratch.intentions.values()))
        yield from self.server.write_file(
            record.record_file, record.encode(), version=0, create=True)
        scratch.prepared = True
        return VOTE_PREPARED

    def commit(self, txn: str) -> Generator[Any, Any, str]:
        """Phase 2: make the decision durable, apply, clean up."""
        txn_id = TransactionId.parse(txn)
        record = self._committable_record(txn_id)
        if record is None:
            return "ack"  # already finished: idempotent
            yield  # pragma: no cover
        record.state = COMMITTED
        yield from self.server.write_file(
            record.record_file, record.encode(), version=1)
        yield from self._apply(record)
        yield from self.server.delete_file(record.record_file)
        self._forget(txn_id)
        self.commits += 1
        return "ack"

    def abort(self, txn: str) -> Generator[Any, Any, str]:
        """Discard the transaction; idempotent."""
        txn_id = TransactionId.parse(txn)
        scratch = self._active.get(txn_id)
        had_record = ((scratch is not None and scratch.prepared)
                      or txn_id in self._indoubt)
        if had_record and self.server.fs.exists(record_file_name(txn_id)):
            yield from self.server.delete_file(record_file_name(txn_id))
        self._forget(txn_id)
        self.aborts += 1
        return "ack"

    def _committable_record(self, txn_id: TransactionId
                            ) -> Optional[TransactionRecord]:
        indoubt = self._indoubt.get(txn_id)
        if indoubt is not None:
            return indoubt
        scratch = self._active.get(txn_id)
        if scratch is None:
            return None
        if not scratch.prepared:
            raise InvalidTransactionState(
                f"commit of unprepared {txn_id} on {self.name}")
        return TransactionRecord(txn_id=txn_id, state=PREPARED,
                                 intentions=list(scratch.intentions.values()))

    def _apply(self, record: TransactionRecord) -> Generator[Any, Any, None]:
        for intention in record.intentions:
            if intention.delete:
                if self.server.fs.exists(intention.name):
                    yield from self.server.delete_file(intention.name)
            else:
                yield from self.server.write_file(
                    intention.name, intention.data, intention.version,
                    properties=intention.properties, create=True)
                if self.metrics is not None:
                    # The copy just caught up to the version this
                    # transaction told us about.
                    self.metrics.gauge(
                        f"rep.version_lag[file={intention.name},"
                        f"server={self.name}]").set(0.0)

    def _forget(self, txn_id: TransactionId) -> None:
        self._active.pop(txn_id, None)
        self._indoubt.pop(txn_id, None)
        self.locks.release_all(txn_id)
        self._finished[txn_id] = None
        while len(self._finished) > self._finished_capacity:
            self._finished.popitem(last=False)

    # ------------------------------------------------------------------
    # Crash / recovery
    # ------------------------------------------------------------------

    def _on_crash(self) -> None:
        self._active.clear()
        self._indoubt.clear()
        self.locks.clear()

    def recover(self) -> None:
        """Replay record files after a restart (redo + in-doubt)."""
        fs = self.server.fs
        for name in fs.list_files():
            if not is_record_file(name):
                continue
            blob, _version = fs.read_file_sync(name)
            record = TransactionRecord.decode(blob)
            if record.state == COMMITTED:
                for intention in record.intentions:
                    if intention.delete:
                        if fs.exists(intention.name):
                            fs.delete_file_sync(intention.name)
                    else:
                        fs.write_file_sync(
                            intention.name, intention.data,
                            intention.version,
                            properties=intention.properties, create=True)
                fs.delete_file_sync(name)
            else:
                # In-doubt: hold exclusive locks until the coordinator
                # resolves us (blocking 2PC semantics).
                self._indoubt[record.txn_id] = record
                for intention in record.intentions:
                    self.locks.acquire(record.txn_id, intention.name,
                                       EXCLUSIVE, timeout=None)

    def in_doubt(self) -> List[TransactionId]:
        """Transactions prepared before a crash, awaiting a decision."""
        return sorted(self._indoubt)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _scratch(self, txn_id: TransactionId) -> _Scratch:
        if txn_id in self._finished:
            raise TransactionAborted(
                txn_id, f"already finished at {self.name} "
                "(late retransmission)")
        scratch = self._active.get(txn_id)
        if scratch is None:
            scratch = _Scratch(now=self.sim.now)
            self._active[txn_id] = scratch
        scratch.last_touched = self.sim.now
        return scratch

    def _sweep_idle(self):
        interval = max(self.idle_abort_after / 2.0, 1e-9)
        while True:
            yield self.sim.timeout(interval)
            cutoff = self.sim.now - self.idle_abort_after
            for txn_id, scratch in list(self._active.items()):
                if not scratch.prepared and scratch.last_touched < cutoff:
                    self._forget(txn_id)
                    self.idle_aborts += 1

    def register_handlers(self, endpoint) -> None:
        """Attach the participant's RPC interface to an endpoint."""
        endpoint.register("txn.read", self.read)
        endpoint.register("txn.read_version", self.read_version)
        endpoint.register("txn.stat", self.stat)
        endpoint.register("txn.stage_write", self.stage_write)
        endpoint.register("txn.stage_delete", self.stage_delete)
        endpoint.register("txn.prepare", self.prepare)
        endpoint.register("txn.commit", self.commit)
        endpoint.register("txn.abort", self.abort)
