"""Weighted voting for replicated data — the paper's contribution.

Vote assignments and quorum rules (:mod:`~repro.core.votes`,
:mod:`~repro.core.quorum`), the file-suite read/write protocol over the
transaction substrate (:mod:`~repro.core.suite`), background refresh of
stale representatives (:mod:`~repro.core.refresh`), live
reconfiguration (:mod:`~repro.core.reconfig`), and the closed-form
performance/availability model that reproduces the paper's example
table (:mod:`~repro.core.analysis`, :mod:`~repro.core.examples`).
"""

from .admin import (InvariantReport, RepresentativeStatus, SuiteStatus,
                    force_converge, suite_status, verify_invariants)
from .analysis import (OperationEstimate, SuiteAnalysis, SuiteEstimate,
                       availability_sweep, message_cost, quorum_tradeoff)
from .client_cache import CachingSuiteClient
from .examples import (EXACT, EXPECTED, LATENCIES, REP_AVAILABILITY, SERVERS,
                       VOTES, example_analysis, example_configuration,
                       paper_table)
from .gather import GatherResult, gather_until, votes_predicate
from .quorum import (availability_of_votes, blocking_probability,
                     cheapest_quorum, feasible_quorum_pairs, is_quorum,
                     minimal_quorums, quorum_latency, quorums_intersect,
                     votes_of)
from .reconfig import change_configuration
from .refresh import BackgroundRefresher
from .suite import (FileSuiteClient, ReadResult, WriteResult, delete_suite,
                    install_suite)
from .tuning import (Candidate, ServerProfile, best_configuration,
                     enumerate_configurations, pareto_front, tune)
from .votes import Representative, SuiteConfiguration, make_configuration

__all__ = [
    "BackgroundRefresher", "CachingSuiteClient", "Candidate", "EXACT",
    "EXPECTED", "FileSuiteClient", "InvariantReport",
    "RepresentativeStatus", "ServerProfile", "SuiteStatus",
    "best_configuration", "enumerate_configurations", "force_converge",
    "message_cost", "pareto_front", "suite_status", "tune",
    "verify_invariants",
    "GatherResult", "LATENCIES", "OperationEstimate", "REP_AVAILABILITY",
    "ReadResult", "Representative", "SERVERS", "SuiteAnalysis",
    "SuiteConfiguration", "SuiteEstimate", "VOTES", "WriteResult",
    "availability_of_votes", "availability_sweep", "blocking_probability",
    "change_configuration", "cheapest_quorum", "example_analysis",
    "example_configuration", "feasible_quorum_pairs", "gather_until",
    "delete_suite", "install_suite", "is_quorum", "make_configuration",
    "minimal_quorums",
    "paper_table", "quorum_latency", "quorum_tradeoff",
    "quorums_intersect", "votes_of", "votes_predicate",
]
