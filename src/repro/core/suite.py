"""The file suite: weighted-voting reads and writes.

This module implements the paper's algorithm over the transaction
substrate:

**Read** — poll representatives for their version numbers (a *version
number inquiry*, which moves no data and takes shared locks) until
representatives holding at least ``r`` votes have answered.  The highest
version number in the quorum is the *current* version: because
``r + w > N``, the quorum must include a member of the most recent write
quorum.  Read the data from the cheapest representative that is current
— which may be a zero-vote **weak representative** (a cache), since
currency, not votes, qualifies a representative to serve data.

The inquiry and the data fetch are collapsed into **one round trip**
by default: the cheapest polled representative is asked to piggyback
the file contents onto its stat reply (``read_data=True``), and when
that reply turns out to be current the follow-up ``txn.read`` is
skipped.  The fallback to the literal two-trip sequence — piggyback
target stale, down, or over the ``read_max_bytes`` ceiling, or a
``for_update`` read that stages a write next — keeps behaviour
otherwise identical (``read_fastpath=False`` disables the path).

**Write** — poll voting representatives (exclusive locks) until ``w``
votes have answered, compute ``new version = current + 1``, stage the
new data at a cheapest write quorum, and commit via two-phase commit so
the whole quorum moves atomically.  Because ``2w > N``, two writes can
never commit against disjoint quorums, so version numbers totally order
writes.

Representatives discovered to be stale, and representatives outside the
write quorum (including weak ones), are handed to the **background
refresher** (:mod:`repro.core.refresh`) — bringing copies current never
adds latency to the foreground operation.

Every operation runs inside a transaction; by default each call manages
its own transaction and retries transient failures (deadlock, lock
timeout, lost quorum) with jittered backoff, exactly the discipline the
paper assumes from its transactional storage system.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (TYPE_CHECKING, Any, Dict, Generator, List, Optional,
                    Sequence, Tuple)

from ..chaos.retry import RetryPolicy
from ..errors import (DeadlockError, HostUnreachableError, LockTimeoutError,
                      QuorumUnattainableError, QuorumUnavailableError,
                      RemoteError, ReproError, RpcTimeout,
                      StaleConfigurationError, TransactionAborted)
from ..obs.collector import TraceCollector
from ..obs.spans import NOOP_SPAN
from ..sim.metrics import MetricsRegistry
from ..sim.rng import RandomStreams
from ..sim.trace import Tracer
from ..txn.coordinator import Transaction, TransactionManager
from ..txn.locks import EXCLUSIVE, SHARED
from .gather import GatherResult, gather_until
from .quorum import cheapest_quorum
from .votes import Representative, SuiteConfiguration

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.simulator import Simulator
    from .refresh import BackgroundRefresher

#: Errors that abort one attempt but are worth retrying with a fresh
#: transaction.
RETRYABLE = (DeadlockError, LockTimeoutError, QuorumUnavailableError,
             RpcTimeout, HostUnreachableError, TransactionAborted,
             RemoteError)


@dataclass
class ReadResult:
    """Outcome of a suite read."""

    data: bytes
    version: int
    served_by: str                      # rep_id that supplied the data
    quorum: List[str]                   # rep_ids whose votes were counted
    stale: List[str]                    # responders below the current version
    attempts: int = 1
    #: Version each responding representative reported in the inquiry —
    #: the raw material for external invariant checking.
    observed: Dict[str, int] = field(default_factory=dict)
    #: Configuration-adoption retries this operation absorbed (a
    #: representative's stamp revealed a newer configuration mid-flight).
    #: Counted separately from ``attempts`` because adopting a config is
    #: progress, not failure — but traces need the true attempt count.
    config_refreshes: int = 0


@dataclass
class WriteResult:
    """Outcome of a suite write."""

    version: int
    quorum: List[str]                   # rep_ids written
    stale: List[str]                    # reps left behind (refresh targets)
    attempts: int = 1
    observed: Dict[str, int] = field(default_factory=dict)
    config_refreshes: int = 0


class FileSuiteClient:
    """Client-side handle for one replicated file suite.

    The client holds a copy of the suite configuration (vote assignment,
    quorums, latency hints).  If any representative reports a newer
    ``config_version``, the client adopts the new configuration and
    retries — configuration is itself replicated data.
    """

    def __init__(self, manager: TransactionManager,
                 config: SuiteConfiguration,
                 inquiry_timeout: float = 1_000.0,
                 weak_inquiry_timeout: Optional[float] = None,
                 data_timeout: float = 5_000.0,
                 max_attempts: int = 4,
                 retry_backoff: float = 50.0,
                 read_fastpath: bool = True,
                 read_max_bytes: int = 64 * 1024,
                 refresher: Optional["BackgroundRefresher"] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 streams: Optional[RandomStreams] = None,
                 tracer: Optional[Tracer] = None,
                 collector: Optional[TraceCollector] = None,
                 health: Optional[Any] = None,
                 profiler: Optional[Any] = None,
                 flight: Optional[Any] = None) -> None:
        self.manager = manager
        self.sim = manager.sim
        self.config = config
        self.inquiry_timeout = inquiry_timeout
        #: How long a read waits for a silent weak representative before
        #: giving up on the cache.  Weak reps are normally local and
        #: answer fast; a short bound here caps the cost of a dead one.
        self.weak_inquiry_timeout = (weak_inquiry_timeout
                                     if weak_inquiry_timeout is not None
                                     else inquiry_timeout)
        self.data_timeout = data_timeout
        self.max_attempts = max_attempts
        self.retry_backoff = retry_backoff
        #: Single-round-trip read fast path: ask the cheapest inquiry
        #: target to piggyback the file contents onto its ``txn.stat``
        #: reply, skipping the follow-up ``txn.read`` when that reply
        #: turns out to be current.  The shared lock the inquiry takes
        #: already covers the read, so consistency is untouched —
        #: ``read_fastpath=False`` restores the paper's literal
        #: two-trip sequence (used by the paper-table benchmarks).
        self.read_fastpath = read_fastpath
        #: Per-read ceiling on piggybacked data; files larger than this
        #: arrive via the legacy ``txn.read`` path instead (the server
        #: marks the reply ``truncated`` without spending page I/O).
        self.read_max_bytes = read_max_bytes
        self.refresher = refresher
        self.metrics = metrics or MetricsRegistry()
        self.tracer = tracer or Tracer(manager.sim, enabled=False)
        #: Causal tracing: operation root spans, quorum-assembly child
        #: spans, and (via :attr:`Transaction.span`) every RPC the
        #: operation issues.  The disabled default makes every span a
        #: no-op, so untraced runs pay one falsy check per operation.
        self.collector = collector or TraceCollector(
            clock=lambda: manager.sim.now, enabled=False)
        #: Optional :class:`~repro.chaos.health.HealthTracker` (duck
        #: typed: anything with ``allow(server)``).  Quorum assembly
        #: skips representatives it refuses and fails fast with
        #: :class:`QuorumUnattainableError` when the admitted votes
        #: cannot reach the threshold.
        self.health = health
        #: Optional :class:`~repro.perf.PhaseProfiler`; when wired it
        #: aggregates quorum-assembly durations under "quorum.assemble".
        self.profiler = profiler
        #: Optional :class:`~repro.obs.flight.FlightRecorder`: the
        #: black-box journal.  Every finished quorum gather — satisfied
        #: or not — appends one ``quorum`` record carrying the votes,
        #: settle order and version stamps the client actually saw.
        self.flight = flight
        streams = streams or RandomStreams(seed=0)
        self._rng = streams.stream(
            f"suite:{config.suite_name}:{manager.endpoint.host.name}")
        #: Backoff between operation attempts: exponential from
        #: ``retry_backoff``, uncapped (``max_attempts`` bounds it),
        #: jittered the way this loop always was.
        self._retry_policy = RetryPolicy(base=retry_backoff,
                                         multiplier=2.0,
                                         cap=float("inf"), jitter=0.5)

    # ------------------------------------------------------------------
    # Public operations (each manages its own transaction + retries)
    # ------------------------------------------------------------------

    def _operation_span(self, name: str, parent, **attrs):
        """Root span for one public operation: a new trace, or — when
        the caller passes its own span/context — a stitched child."""
        if parent:
            return self.collector.start_span(name, parent=parent,
                                             kind="client", **attrs)
        return self.collector.start_trace(name, **attrs)

    def read(self, parent=None) -> Generator[Any, Any, ReadResult]:
        """Read the current contents of the suite.

        ``parent`` (a span or remote :class:`~repro.obs.TraceContext`)
        roots this operation's span under an existing trace instead of
        opening a new one — how a namespace lookup and the data read it
        leads to stitch into one tree.
        """
        started = self.sim.now
        span = self._operation_span(
            "suite.read", parent, suite=self.config.suite_name)
        try:
            result = yield from self._with_retries(self._read_once,
                                                   span=span)
        except BaseException as exc:
            span.end(error=f"{type(exc).__name__}: {exc}")
            raise
        span.set_attr("version", result.version)
        span.set_attr("served_by", result.served_by)
        span.set_attr("attempts", result.attempts)
        if result.config_refreshes:
            span.set_attr("config_refreshes", result.config_refreshes)
        span.end()
        self.metrics.counter("suite.reads").increment()
        self.metrics.histogram("suite.read_latency").observe(
            self.sim.now - started)
        return result

    def write(self, data: bytes,
              parent=None) -> Generator[Any, Any, WriteResult]:
        """Replace the contents of the suite.

        ``parent`` works as in :meth:`read`.
        """
        started = self.sim.now
        span = self._operation_span(
            "suite.write", parent, suite=self.config.suite_name,
            size=len(data))
        try:
            result = yield from self._with_retries(self._write_once, data,
                                                   span=span)
        except BaseException as exc:
            span.end(error=f"{type(exc).__name__}: {exc}")
            raise
        span.set_attr("version", result.version)
        span.set_attr("attempts", result.attempts)
        if result.config_refreshes:
            span.set_attr("config_refreshes", result.config_refreshes)
        span.end()
        self.metrics.counter("suite.writes").increment()
        self.metrics.histogram("suite.write_latency").observe(
            self.sim.now - started)
        return result

    def current_version(self) -> Generator[Any, Any, int]:
        """Version-number inquiry only: collect a read quorum, no data."""
        def inquire(txn: Transaction):
            gathered = yield from self._inquire(
                txn, self.config.read_quorum, mode=SHARED,
                include_weak=False)
            return self._current_version_from(gathered)

        result = yield from self._with_retries(inquire)
        return result

    # -- single-attempt versions usable inside a caller's transaction ----

    def read_in(self, txn: Transaction, for_update: bool = False,
                ) -> Generator[Any, Any, ReadResult]:
        """One read attempt inside an existing transaction (no retries).

        ``for_update`` declares that the transaction will write the
        suite after reading it: the version inquiry then takes
        *exclusive* locks on a write quorum's worth of votes up front,
        so two concurrent read-modify-writes serialize instead of
        deadlocking on shared→exclusive upgrades.
        """
        return (yield from self._read_once(txn, for_update=for_update))

    def write_in(self, txn: Transaction,
                 data: bytes) -> Generator[Any, Any, WriteResult]:
        """One write attempt inside an existing transaction (no retries).

        The caller owns the commit; background refresh of the
        representatives left behind is scheduled automatically when (and
        only when) that commit succeeds.
        """
        return (yield from self._write_once(txn, data))

    def transact(self, operation) -> Generator[Any, Any, Any]:
        """Run a read-modify-write atomically, with the suite's retries.

        ``operation(txn)`` is a generator receiving a fresh transaction
        per attempt; combine :meth:`read_in` and :meth:`write_in` inside
        it.  Two-phase locking makes the whole sequence serializable —
        this is how applications (e.g. the Violet calendar) update
        structured data stored in a suite without lost updates::

            def add_item(txn):
                current = yield from suite.read_in(txn)
                items = decode(current.data) + [item]
                return (yield from suite.write_in(txn, encode(items)))

            result = yield from suite.transact(add_item)
        """
        return (yield from self._with_retries(operation))

    # ------------------------------------------------------------------
    # Protocol internals
    # ------------------------------------------------------------------

    def _read_once(self, txn: Transaction, for_update: bool = False,
                   ) -> Generator[Any, Any, ReadResult]:
        config = self.config
        started = self.sim.now
        if for_update:
            threshold = max(config.read_quorum, config.write_quorum)
            mode = EXCLUSIVE
        else:
            threshold = config.read_quorum
            mode = SHARED
        cached = self._read_cache()
        # ``for_update`` reads stage a write next, so the exclusive
        # inquiry + separate read is kept as-is; everything else rides
        # the fast path.
        fastpath = self.read_fastpath and not for_update
        gathered = yield from self._inquire(
            txn, threshold, mode=mode, include_weak=not for_update,
            read_data=fastpath,
            skip_version=cached[0] if cached is not None else None)
        current = self._current_version_from(gathered)

        stale = [rep for rep, stat in gathered.successes.items()
                 if stat["version"] < current]

        data: Optional[bytes] = None
        served_by = ""
        if cached is not None and cached[0] == current:
            # The inquiry proved the client-resident copy current (the
            # shared read-quorum locks make this the same argument that
            # lets any weak representative serve a read) — no data
            # needs to move at all.
            data = cached[1]
            served_by = "client-cache"
            self._observe_read_path("cached", started)
        if data is None and fastpath:
            bearing = sorted(
                (rep for rep, stat in gathered.successes.items()
                 if stat.get("data") is not None
                 and stat["version"] == current),
                key=lambda rep: (rep.latency_hint, rep.rep_id))
            if bearing:
                rep = bearing[0]
                data = gathered.successes[rep]["data"]
                served_by = rep.rep_id
                if rep.weak:
                    self.metrics.counter("suite.weak_reads").increment()
                self._observe_read_path("fastpath", started)
            elif any(stat.get("truncated")
                     for stat in gathered.successes.values()):
                self.metrics.counter("suite.read_truncated").increment()
        if data is None:
            # Legacy two-trip path: the piggyback target was stale,
            # truncated, down — or the fast path is off entirely.
            candidates = sorted(
                (rep for rep, stat in gathered.successes.items()
                 if stat["version"] == current),
                key=lambda rep: (rep.latency_hint, rep.rep_id))
            for rep in candidates:
                try:
                    data, version = yield txn.call(
                        rep.server, "txn.read", name=config.file_name,
                        timeout=self.data_timeout)
                except RETRYABLE:
                    continue
                served_by = rep.rep_id
                if rep.weak:
                    self.metrics.counter("suite.weak_reads").increment()
                break
            if data is None:
                raise QuorumUnavailableError("read-data", 1, 0)
            self._observe_read_path("fallback", started)

        self._schedule_refresh(stale, current)
        quorum_ids = [rep.rep_id for rep in gathered.successes
                      if rep.votes > 0]
        self.tracer.record(f"suite:{config.suite_name}", "read",
                           version=current, served_by=served_by,
                           quorum=",".join(sorted(quorum_ids)),
                           stale=len(stale))
        return ReadResult(data=data, version=current, served_by=served_by,
                          quorum=quorum_ids,
                          stale=[rep.rep_id for rep in stale],
                          observed={rep.rep_id: stat["version"]
                                    for rep, stat
                                    in gathered.successes.items()})

    def _write_once(self, txn: Transaction,
                    data: bytes) -> Generator[Any, Any, WriteResult]:
        config = self.config
        gathered = yield from self._inquire(
            txn, config.write_quorum, mode=EXCLUSIVE, include_weak=False)
        current = self._current_version_from(gathered,
                                             threshold=config.write_quorum,
                                             kind="write")
        new_version = current + 1

        responders = list(gathered.successes)
        quorum = cheapest_quorum(responders, config.write_quorum)
        stage_calls = [
            txn.call(rep.server, "txn.stage_write", name=config.file_name,
                     data=data, version=new_version,
                     timeout=self.data_timeout)
            for rep in quorum
        ]
        # Every staging must succeed; a failure aborts this attempt.
        yield self.sim.all_of(stage_calls)

        quorum_ids = {rep.rep_id for rep in quorum}
        left_behind = [rep for rep in config.representatives
                       if rep.rep_id not in quorum_ids]
        # Representatives outside the write quorum become stale the
        # moment this commits; hand them to the background refresher —
        # but only if the commit actually happens.
        txn.after_commit(
            lambda: self._schedule_refresh(left_behind, new_version))
        txn.after_commit(
            lambda: self.tracer.record(
                f"suite:{config.suite_name}", "write",
                version=new_version,
                quorum=",".join(sorted(quorum_ids)),
                left_behind=len(left_behind)))
        return WriteResult(version=new_version,
                           quorum=sorted(quorum_ids),
                           stale=[rep.rep_id for rep in left_behind],
                           observed={rep.rep_id: stat["version"]
                                     for rep, stat
                                     in gathered.successes.items()})

    def _read_cache(self) -> Optional[Tuple[int, bytes]]:
        """Hook for client-resident caches: ``(version, data)`` or None.

        When a subclass (:class:`~repro.core.client_cache.
        CachingSuiteClient`) returns a cached copy, the read's inquiry
        passes its version as ``skip_version`` — the piggyback target
        then omits the data when the cache is already current, so a
        cache *hit* moves only inquiry-sized messages and a cache
        *miss* still completes in the same single round trip.
        """
        return None

    def _observe_read_path(self, path: str, started: float) -> None:
        """Count which read path served, and time it when profiling."""
        self.metrics.counter(f"suite.read_{path}").increment()
        if self.profiler is not None:
            self.profiler.observe(f"read.{path}", self.sim.now - started)

    def _inquire(self, txn: Transaction, threshold: int, mode: str,
                 include_weak: bool, read_data: bool = False,
                 skip_version: Optional[int] = None,
                 ) -> Generator[Any, Any, GatherResult]:
        """Version-number inquiry until ``threshold`` votes respond.

        Weak representatives are polled too on reads (their answers are
        free candidates for serving the data) but never counted toward
        the quorum.

        With ``read_data=True`` exactly one representative — the
        cheapest admitted one by latency hint, i.e. the one the legacy
        path would fetch the data from anyway — is asked to piggyback
        the file contents onto its stat reply (bounded by
        :attr:`read_max_bytes`; a copy at ``skip_version`` sends no
        data).  Only one target keeps the paper's "data moves once"
        economy: broadcasting the request would multiply the bulk
        transfer by the representative count.
        """
        config = self.config
        started = self.sim.now
        parent = txn.span
        qspan = self.collector.start_span(
            "quorum.assemble", parent=parent,
            suite=config.suite_name,
            mode="read" if mode == SHARED else "write",
            threshold=threshold)
        if qspan:
            # Inquiry RPCs (and the detail fetch in
            # _check_configuration) parent to the assembly span.
            txn.span = qspan
        # Consult the circuit breakers *before* soliciting anyone:
        # representatives whose breaker refuses traffic are left out of
        # the inquiry entirely (an open breaker past its cooldown
        # admits one probe call here).
        admitted: List[Representative] = []
        vetoed: List[Representative] = []
        for rep in config.representatives:
            if rep.weak and not include_weak:
                continue
            if self.health is not None \
                    and not self.health.allow(rep.server):
                vetoed.append(rep)
                continue
            admitted.append(rep)
        # The piggyback target: the cheapest admitted representative by
        # latency hint — exactly the one the legacy path would issue
        # its follow-up ``txn.read`` to when every copy is current.
        data_rep: Optional[Representative] = None
        if read_data and admitted:
            data_rep = min(admitted,
                           key=lambda rep: (rep.latency_hint, rep.rep_id))
        calls = {}

        def enough(successes, failures):
            votes = sum(rep.votes for rep in successes)
            if votes < threshold:
                return False
            settled = set(successes) | set(failures)
            if data_rep is not None and data_rep not in settled:
                # The piggybacked reply *is* the read's payload (it is
                # bigger than the other stats, so on a bandwidth-bound
                # link it lands last): returning the moment the votes
                # arrive would discard that transfer and pay a second
                # data trip.  A dead target settles at its inquiry
                # timeout and the read falls back.
                return False
            if not include_weak:
                return True
            # A weak representative cheaper than the best responding
            # voting candidate is worth waiting for — serving the data
            # from it is the whole point of caching.  Weak reps slower
            # than the best candidate never delay the read.
            best_voting = min((rep.latency_hint for rep in successes
                               if rep.votes > 0), default=float("inf"))
            for rep in calls:
                if rep.weak and rep not in settled \
                        and rep.latency_hint < best_voting:
                    return False
            return True

        try:
            if vetoed:
                qspan.event("health.vetoed",
                            reps=",".join(sorted(rep.rep_id
                                                 for rep in vetoed)))
            attainable = sum(rep.votes for rep in admitted)
            if attainable < threshold:
                # Fail fast: even if every admitted representative
                # answered, the votes cannot reach the quorum.  Cheaper
                # by one full RPC timeout than discovering it the slow
                # way below.
                self.metrics.counter("suite.unattainable").increment()
                qspan.event("quorum.unattainable", attainable=attainable,
                            threshold=threshold)
                raise QuorumUnattainableError(
                    "read" if mode == SHARED else "write", threshold,
                    attainable)
            # One-pass fan-out contract: every inquiry is issued here,
            # before the first yield below.  The live transport batches
            # per destination on event-loop pass boundaries, so keeping
            # the solicitations in a single synchronous burst is what
            # lets all of a host's inquiries share one wire frame —
            # interleaving a yield between calls would flush them as
            # separate frames.
            for rep in admitted:
                # Weak representatives only serve reads: shared mode.
                rep_mode = SHARED if rep.weak else mode
                timeout = (self.weak_inquiry_timeout if rep.weak
                           else self.inquiry_timeout)
                extra: Dict[str, Any] = {}
                if rep is data_rep:
                    extra = {"read_data": True,
                             "max_bytes": self.read_max_bytes,
                             "skip_version": skip_version}
                calls[rep] = txn.call(rep.server, "txn.stat",
                                      name=config.file_name,
                                      mode=rep_mode, timeout=timeout,
                                      **extra)
            gathered = yield from gather_until(self.sim, calls, enough)
            waited_total = self.sim.now - started
            self.metrics.histogram("suite.quorum_wait").observe(
                waited_total)
            if self.profiler is not None:
                self.profiler.observe("quorum.assemble", waited_total)
            votes = sum(rep.votes for rep in gathered.successes)
            if qspan:
                # Replies in arrival order, each stamped with when it
                # settled and how long the gather had been waiting: the
                # critical-path analyzer reconstructs per-representative
                # blocking attribution offline from exactly these attrs.
                for rep, settled_at, ok in gathered.order:
                    if ok:
                        stat = gathered.successes[rep]
                        qspan.event("version.collect", rep=rep.rep_id,
                                    version=stat["version"],
                                    votes=rep.votes, at=settled_at,
                                    waited=settled_at - started)
                    else:
                        exc = gathered.failures[rep]
                        qspan.event("inquiry.failed", rep=rep.rep_id,
                                    at=settled_at,
                                    waited=settled_at - started,
                                    error=type(exc).__name__)
            self._attribute_blocking(gathered, started, mode)
            self._record_flight_quorum(gathered, started, mode, threshold)
            self._observe_lags(gathered)
            yield from self._check_configuration(txn, gathered)
            if not gathered.satisfied:
                self.metrics.counter("suite.quorum_failures").increment()
                qspan.event("quorum.failed", votes=votes,
                            threshold=threshold)
                qspan.end(error=f"quorum unavailable: "
                                f"{votes}/{threshold} votes")
                raise QuorumUnavailableError(
                    "read" if mode == SHARED else "write", threshold,
                    votes)
            self.metrics.histogram("suite.quorum_size").observe(
                float(sum(1 for rep in gathered.successes
                          if rep.votes > 0)))
            closer = gathered.closed_by
            qspan.event("quorum.satisfied", votes=votes,
                        threshold=threshold,
                        closed_by=closer.rep_id if closer else "",
                        waited=waited_total)
            qspan.set_attr("votes", votes)
            qspan.end()
            return gathered
        except BaseException as exc:
            if not isinstance(exc, GeneratorExit):
                qspan.end(error=f"{type(exc).__name__}: {exc}")
            raise
        finally:
            if qspan:
                txn.span = parent

    def _attribute_blocking(self, gathered: GatherResult, started: float,
                            mode: str) -> None:
        """Online critical-path attribution for one finished gather.

        Walk the settle order: the marginal wait of each interval
        (settle-to-settle, starting at the inquiry send) is charged to
        the representative whose reply ended it — that reply is what
        the gather was actually blocked on.  The reply that satisfied
        the predicate is additionally counted as the quorum *closer*.
        Replies landing after the close never appear in the order, so
        they cost nothing, matching the caller's experience.

        Simultaneous settles are re-ordered by ``(time, rep_id)`` —
        the same tie-break the offline trace analysis applies — so the
        metrics plane and the trace plane always give one answer.
        """
        suite = self.config.suite_name
        op = "read" if mode == SHARED else "write"
        self.metrics.counter(
            f"quorum.blocking.gathers[suite={suite},mode={op}]").increment()
        previous = started
        ordered = sorted(gathered.order,
                         key=lambda item: (item[1], item[0].rep_id))
        for rep, settled_at, _ok in ordered:
            marginal = settled_at - previous
            previous = settled_at
            if marginal > 0.0:
                self.metrics.gauge(
                    f"quorum.blocking.wait_ms[suite={suite},"
                    f"rep={rep.rep_id}]").add(marginal)
        closer = gathered.closed_by
        if closer is not None:
            self.metrics.counter(
                f"quorum.blocking.closed[suite={suite},"
                f"rep={closer.rep_id}]").increment()

    def _record_flight_quorum(self, gathered: GatherResult,
                              started: float, mode: str,
                              threshold: int) -> None:
        """One black-box record per finished gather.

        Emitted adjacent to :meth:`_attribute_blocking` from the same
        ``GatherResult``, so the journal plane and the metrics plane
        describe identical evidence — ``repro replay --verify``
        re-derives the blocking attribution from these records and
        cross-checks it against the scraped counters.
        """
        if self.flight is None or self.flight.closed:
            return
        closer = gathered.closed_by
        self.flight.emit(
            "quorum",
            suite=self.config.suite_name,
            mode="read" if mode == SHARED else "write",
            threshold=threshold,
            votes=sum(rep.votes for rep in gathered.successes),
            satisfied=gathered.satisfied,
            started=started,
            order=[[rep.rep_id, settled_at, ok]
                   for rep, settled_at, ok in gathered.order],
            closed_by=closer.rep_id if closer is not None else None,
            observed={rep.rep_id: stat["version"]
                      for rep, stat in gathered.successes.items()})

    def _observe_lags(self, gathered: GatherResult) -> None:
        """Per-representative staleness gauges from the inquiry replies.

        The highest version in the responses is (by the quorum
        intersection argument) the current version, so each responder's
        shortfall is its observed lag.  Weak representatives get their
        own family — their staleness is the cache-coherence number the
        paper's weak-representative discussion is about.
        """
        versions = [stat["version"]
                    for stat in gathered.successes.values()]
        if not versions:
            return
        current = max(versions)
        suite = self.config.suite_name
        for rep, stat in gathered.successes.items():
            family = ("suite.weak_staleness" if rep.weak
                      else "suite.version_lag")
            self.metrics.gauge(
                f"{family}[suite={suite},rep={rep.rep_id}]").set(
                float(current - stat["version"]))

    def _current_version_from(self, gathered: GatherResult,
                              threshold: Optional[int] = None,
                              kind: str = "read") -> int:
        versions = [stat["version"]
                    for stat in gathered.successes.values()]
        if not versions:
            raise QuorumUnavailableError(kind, threshold or 1, 0)
        return max(versions)

    def _check_configuration(self, txn: Transaction,
                             gathered: GatherResult,
                             ) -> Generator[Any, Any, None]:
        """Adopt a newer configuration if any representative has one.

        Inquiries carry only a small ``stamp`` (the configuration
        version); the full configuration is fetched in a follow-up call
        only when the stamp shows ours is stale — so the steady-state
        inquiry stays tens of bytes.
        """
        newest_rep: Optional[Representative] = None
        newest_stamp = self.config.config_version
        for rep, stat in gathered.successes.items():
            stamp = stat.get("stamp", 0)
            if stamp > newest_stamp:
                newest_stamp = stamp
                newest_rep = rep
        if newest_rep is None:
            return
        detail = yield txn.call(newest_rep.server, "txn.stat",
                                name=self.config.file_name, mode=SHARED,
                                detail=True, timeout=self.inquiry_timeout)
        raw = detail.get("properties", {}).get("config")
        if raw and raw["config_version"] > self.config.config_version:
            self.config = SuiteConfiguration.from_json(raw)
            self.metrics.counter("suite.config_refreshes").increment()
            raise StaleConfigurationError(
                f"adopted configuration v{self.config.config_version}; "
                "retrying under it")

    def _schedule_refresh(self, stale: Sequence[Representative],
                          version: int) -> None:
        if self.refresher is not None and stale:
            self.refresher.schedule(self, [rep.rep_id for rep in stale],
                                    version)

    # ------------------------------------------------------------------
    # Transaction + retry wrapper
    # ------------------------------------------------------------------

    def _with_retries(self, operation, *args,
                      span=NOOP_SPAN) -> Generator[Any, Any, Any]:
        last_error: Optional[BaseException] = None
        attempts = 0            # retryable failures (bounds the loop)
        config_refreshes = 0    # configuration adoptions (bounded at 3)
        total_attempts = 0      # every transaction begun — the number
        #                         traces and results report, so a
        #                         config-adoption retry is not invisible
        while attempts < self.max_attempts:
            txn = self.manager.begin()
            txn.span = span
            total_attempts += 1
            try:
                result = yield from operation(txn, *args)
                yield from txn.commit()
            except StaleConfigurationError as exc:
                # Not a failure: we learned a newer configuration.
                # Bounded separately so a pathological loop still ends.
                yield from txn.abort()
                config_refreshes += 1
                if config_refreshes > 3:
                    raise
                span.event("config.adopted",
                           version=self.config.config_version)
                last_error = exc
                continue
            except RETRYABLE as exc:
                yield from txn.abort()
                attempts += 1
                last_error = exc
                span.event("retry", attempt=attempts,
                           error=type(exc).__name__)
                self.metrics.counter("suite.retries").increment()
                if attempts < self.max_attempts and self.retry_backoff > 0:
                    yield self.sim.timeout(
                        self._retry_policy.delay(attempts - 1, self._rng))
                continue
            except GeneratorExit:
                raise  # killed process: must not yield during close()
            except BaseException:
                # Application-level error (e.g. a calendar conflict):
                # not retryable, but the transaction must still release
                # its locks before the error propagates.
                yield from txn.abort()
                raise
            if isinstance(result, (ReadResult, WriteResult)):
                result.attempts = total_attempts
                result.config_refreshes = config_refreshes
            return result
        self.metrics.counter("suite.failures").increment()
        raise last_error if last_error is not None else \
            QuorumUnavailableError("operation", 0, 0)


def install_suite(manager: TransactionManager, config: SuiteConfiguration,
                  initial_data: bytes = b"",
                  attempts: int = 4, retry_delay: float = 150.0,
                  ) -> Generator[Any, Any, None]:
    """Create a suite: install the file at *every* representative.

    Creation requires all representatives (voting and weak) to be
    reachable — a deliberate, one-time strictness so the suite starts
    with every copy current at version 1 and every copy carrying the
    configuration.  Transient failures (a lost datagram, a timed-out
    lock) retry with a fresh transaction: re-staging version 1 with
    ``create=True`` is idempotent at the servers, and locks stranded by
    an aborted attempt are released by the best-effort aborts before the
    next attempt's ``retry_delay`` expires.
    """
    properties = {"config": config.to_json(),
                  "stamp": config.config_version}
    last_error: Optional[ReproError] = None
    for attempt in range(attempts):
        txn = manager.begin()
        try:
            calls = [
                txn.call(rep.server, "txn.stage_write",
                         name=config.file_name, data=initial_data,
                         version=1, properties=properties, create=True)
                for rep in config.representatives
            ]
            yield manager.sim.all_of(calls)
            yield from txn.commit()
            return
        except RETRYABLE as exc:
            yield from txn.abort()
            last_error = exc
            if attempt + 1 < attempts and retry_delay > 0:
                yield manager.sim.timeout(retry_delay)
        except ReproError:
            yield from txn.abort()
            raise
    assert last_error is not None
    raise last_error


def delete_suite(manager: TransactionManager, config: SuiteConfiguration,
                 strict: bool = False) -> Generator[Any, Any, List[str]]:
    """Remove the suite from its representatives.

    By default best-effort (unreachable representatives keep their —
    now unusable — copies, exactly like members removed by a
    reconfiguration); ``strict=True`` demands every representative
    participate, aborting the whole deletion if any is unreachable.
    Returns the rep_ids whose copies were removed.
    """
    txn = manager.begin()
    removed: List[str] = []
    try:
        for rep in config.representatives:
            try:
                yield txn.call(rep.server, "txn.stage_delete",
                               name=config.file_name)
                removed.append(rep.rep_id)
            except ReproError:
                if strict:
                    raise
        yield from txn.commit()
        return removed
    except ReproError:
        yield from txn.abort()
        raise
