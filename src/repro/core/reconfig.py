"""Changing a suite's vote configuration.

Gifford treats the vote assignment and quorum sizes as part of the
replicated file itself, so reconfiguration is *just a write* performed
under the **old** configuration's rules:

1. gather an old-configuration write quorum (exclusive locks);
2. read the current contents;
3. stage the same contents, with the **new** configuration in the
   property map and ``version = current + 1``, at the old write quorum
   *and* at every representative new to the suite (created on the spot);
4. commit atomically.

Safety: any later operation under the old configuration must gather a
quorum that intersects the old write quorum used here (``r + w > N``
and ``2w > N``), so it meets a representative carrying the new
configuration, adopts it
(:class:`~repro.errors.StaleConfigurationError` → retry), and proceeds
under the new rules.  Representatives dropped from the suite are
deleted best-effort in the background after commit.

One subtlety spans the two configurations: the commit set holds ``w``
votes under the **old** weights, but when the weights themselves
change it may hold fewer than ``w'`` under the **new** ones — a
post-adoption read quorum could then be assembled entirely from
representatives that missed the reconfiguration write and return the
previous version.  After commit, :func:`_cover_new_write_quorum`
synchronously tops the copy set up to a new-configuration write quorum
(best-effort, ``only_if_newer`` per representative), with the
background refresher as the backstop for whatever it could not reach.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from ..errors import (InvalidConfigurationError, ReproError,
                      StaleConfigurationError)
from ..txn.coordinator import Transaction
from ..txn.locks import EXCLUSIVE
from .quorum import cheapest_quorum
from .suite import FileSuiteClient, RETRYABLE
from .votes import SuiteConfiguration

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.simulator import Simulator


def change_configuration(client: FileSuiteClient,
                         new_config: SuiteConfiguration,
                         ) -> Generator[Any, Any, SuiteConfiguration]:
    """Install ``new_config`` on ``client``'s suite.

    Returns the installed configuration (its ``config_version`` is
    forced to ``old + 1``).  Retries transient failures like any suite
    write.  Raises :class:`InvalidConfigurationError` if ``new_config``
    names a different suite.
    """
    if new_config.suite_name != client.config.suite_name:
        raise InvalidConfigurationError(
            f"configuration is for suite {new_config.suite_name!r}, "
            f"client handles {client.config.suite_name!r}")

    last_error: Optional[BaseException] = None
    for attempt in range(client.max_attempts):
        old_config = client.config
        installed = new_config.evolve(
            config_version=old_config.config_version + 1,
            suite_name=old_config.suite_name)
        txn = client.manager.begin()
        try:
            data, new_version, staged = yield from _reconfigure_once(
                client, txn, old_config, installed)
            yield from txn.commit()
        except RETRYABLE as exc:
            yield from txn.abort()
            last_error = exc
            if client.retry_backoff > 0:
                yield client.sim.timeout(
                    client.retry_backoff * (2 ** attempt))
            continue
        except StaleConfigurationError as exc:
            # A concurrent reconfiguration won the race.  ``_inquire``
            # already adopted the newer configuration into
            # ``client.config``, so the next attempt re-evolves from
            # the winner's config_version — the concurrent change is
            # layered on top of it instead of lost.
            yield from txn.abort()
            last_error = exc
            continue
        except ReproError:
            yield from txn.abort()
            raise
        # Adopt locally, cover the *new* write quorum, then propagate
        # in the background and clean up removals.
        client.config = installed
        yield from _cover_new_write_quorum(client, installed, staged,
                                           data, new_version)
        _spread_and_cleanup(client, old_config, installed)
        flight = getattr(client, "flight", None)
        if flight is not None and not flight.closed:
            flight.emit("reconfig", suite=installed.suite_name,
                        config_version=installed.config_version,
                        version=new_version,
                        votes={rep.rep_id: rep.votes
                               for rep in installed.representatives})
        return installed
    raise last_error if last_error is not None else \
        InvalidConfigurationError("reconfiguration failed")


def _reconfigure_once(client: FileSuiteClient, txn: Transaction,
                      old_config: SuiteConfiguration,
                      installed: SuiteConfiguration,
                      ) -> Generator[Any, Any,
                                     "tuple[bytes, int, list]"]:
    # 1. Old-configuration write quorum, exclusive.
    gathered = yield from client._inquire(
        txn, old_config.write_quorum, mode=EXCLUSIVE, include_weak=False)
    current = max(stat["version"] for stat in gathered.successes.values())
    new_version = current + 1

    # 2. Current contents, from a current responder.
    current_reps = sorted(
        (rep for rep, stat in gathered.successes.items()
         if stat["version"] == current),
        key=lambda rep: (rep.latency_hint, rep.rep_id))
    data = None
    for rep in current_reps:
        try:
            data, _version = yield txn.call(
                rep.server, "txn.read", name=old_config.file_name,
                timeout=client.data_timeout)
            break
        except RETRYABLE:
            continue
    if data is None:
        raise ReproError("no current representative reachable for data")

    # 3. Stage at the old write quorum plus all newly added servers.
    properties = {"config": installed.to_json(),
                  "stamp": installed.config_version}
    quorum = cheapest_quorum(list(gathered.successes),
                             old_config.write_quorum)
    old_servers = {rep.server for rep in old_config.representatives}
    targets = {rep.server for rep in quorum}
    new_servers = [rep.server for rep in installed.representatives
                   if rep.server not in old_servers]
    staged = sorted(targets) + new_servers
    calls = [
        txn.call(server, "txn.stage_write", name=old_config.file_name,
                 data=data, version=new_version, properties=properties,
                 create=True, timeout=client.data_timeout)
        for server in staged
    ]
    yield client.sim.all_of(calls)
    return data, new_version, staged


def _cover_new_write_quorum(client: FileSuiteClient,
                            installed: SuiteConfiguration,
                            staged: list, data: bytes, new_version: int,
                            ) -> Generator[Any, Any, None]:
    """Top the committed copy set up to a *new*-configuration write quorum.

    The reconfiguration transaction commits at an **old**-configuration
    write quorum, which under changed weights may hold fewer than the
    new ``w`` votes — a later read quorum under the new configuration
    could then miss ``new_version`` entirely.  Stage the same contents
    at the cheapest additional voting representatives until the staged
    set carries the new write quorum.  Each extra is a separate
    transaction with ``only_if_newer``, so a concurrent foreground
    write just turns the stage into a no-op; an unreachable extra is
    tolerated (the background refresher remains the backstop) but we
    keep going until the set is covered or no candidates remain.
    """
    staged_servers = set(staged)
    covered = sum(rep.votes for rep in installed.representatives
                  if rep.server in staged_servers)
    if covered >= installed.write_quorum:
        return
    properties = {"config": installed.to_json(),
                  "stamp": installed.config_version}
    extras = sorted(
        (rep for rep in installed.representatives
         if rep.votes > 0 and rep.server not in staged_servers),
        key=lambda rep: (rep.latency_hint, rep.rep_id))
    for rep in extras:
        if covered >= installed.write_quorum:
            break
        txn = client.manager.begin()
        try:
            yield txn.call(
                rep.server, "txn.stage_write",
                name=installed.file_name, data=data,
                version=new_version, properties=properties,
                create=True, only_if_newer=True,
                timeout=client.data_timeout)
            yield from txn.commit()
        except ReproError:
            try:
                yield from txn.abort()
            except ReproError:
                pass  # the abort itself can time out on a dead host
            continue
        covered += rep.votes


def _spread_and_cleanup(client: FileSuiteClient,
                        old_config: SuiteConfiguration,
                        installed: SuiteConfiguration) -> None:
    """Post-commit: refresh remaining members, delete removed ones."""
    new_servers = {rep.server for rep in installed.representatives}
    if client.refresher is not None:
        remaining = [rep.rep_id for rep in installed.representatives]
        client.refresher.schedule(client, remaining, 0)
    removed = [rep for rep in old_config.representatives
               if rep.server not in new_servers]
    for rep in removed:
        client.sim.spawn(
            _delete_representative(client, rep.server,
                                   old_config.file_name,
                                   installed.config_version),
            name=f"reconfig-cleanup:{rep.rep_id}")


def _delete_representative(client: FileSuiteClient, server: str,
                           file_name: str, installed_version: int,
                           ) -> Generator[Any, Any, None]:
    """Best-effort delete of a removed representative's copy.

    Must never raise: a crashed or unreachable removed representative
    keeps its (now unreferenced) copy, which can never affect a quorum
    again.  Guards against the re-add race — if a *later*
    reconfiguration brought the server back, its copy carries a
    ``stamp`` at or above that configuration's version and is left
    alone.
    """
    txn = client.manager.begin()
    try:
        stat = yield txn.call(server, "txn.stat", name=file_name,
                              mode=EXCLUSIVE,
                              timeout=client.data_timeout)
        if stat.get("stamp", 0) > installed_version:
            # Re-added by a newer configuration: not ours to delete.
            yield from txn.abort()
            return
        yield txn.call(server, "txn.stage_delete", name=file_name,
                       timeout=client.data_timeout)
        yield from txn.commit()
    except ReproError:
        try:
            yield from txn.abort()
        except ReproError:
            pass  # the abort itself can time out on a dead host
