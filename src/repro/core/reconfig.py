"""Changing a suite's vote configuration.

Gifford treats the vote assignment and quorum sizes as part of the
replicated file itself, so reconfiguration is *just a write* performed
under the **old** configuration's rules:

1. gather an old-configuration write quorum (exclusive locks);
2. read the current contents;
3. stage the same contents, with the **new** configuration in the
   property map and ``version = current + 1``, at the old write quorum
   *and* at every representative new to the suite (created on the spot);
4. commit atomically.

Safety: any later operation under the old configuration must gather a
quorum that intersects the old write quorum used here (``r + w > N``
and ``2w > N``), so it meets a representative carrying the new
configuration, adopts it
(:class:`~repro.errors.StaleConfigurationError` → retry), and proceeds
under the new rules.  Representatives dropped from the suite are
deleted best-effort in the background after commit.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from ..errors import InvalidConfigurationError, ReproError
from ..txn.coordinator import Transaction
from ..txn.locks import EXCLUSIVE
from .quorum import cheapest_quorum
from .suite import FileSuiteClient, RETRYABLE
from .votes import SuiteConfiguration

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.simulator import Simulator


def change_configuration(client: FileSuiteClient,
                         new_config: SuiteConfiguration,
                         ) -> Generator[Any, Any, SuiteConfiguration]:
    """Install ``new_config`` on ``client``'s suite.

    Returns the installed configuration (its ``config_version`` is
    forced to ``old + 1``).  Retries transient failures like any suite
    write.  Raises :class:`InvalidConfigurationError` if ``new_config``
    names a different suite.
    """
    if new_config.suite_name != client.config.suite_name:
        raise InvalidConfigurationError(
            f"configuration is for suite {new_config.suite_name!r}, "
            f"client handles {client.config.suite_name!r}")

    last_error: Optional[BaseException] = None
    for attempt in range(client.max_attempts):
        old_config = client.config
        installed = new_config.evolve(
            config_version=old_config.config_version + 1,
            suite_name=old_config.suite_name)
        txn = client.manager.begin()
        try:
            yield from _reconfigure_once(client, txn, old_config, installed)
            yield from txn.commit()
        except RETRYABLE as exc:
            yield from txn.abort()
            last_error = exc
            if client.retry_backoff > 0:
                yield client.sim.timeout(
                    client.retry_backoff * (2 ** attempt))
            continue
        except ReproError:
            yield from txn.abort()
            raise
        # Adopt locally, propagate in the background, clean up removals.
        client.config = installed
        _spread_and_cleanup(client, old_config, installed)
        return installed
    raise last_error if last_error is not None else \
        InvalidConfigurationError("reconfiguration failed")


def _reconfigure_once(client: FileSuiteClient, txn: Transaction,
                      old_config: SuiteConfiguration,
                      installed: SuiteConfiguration,
                      ) -> Generator[Any, Any, None]:
    # 1. Old-configuration write quorum, exclusive.
    gathered = yield from client._inquire(
        txn, old_config.write_quorum, mode=EXCLUSIVE, include_weak=False)
    current = max(stat["version"] for stat in gathered.successes.values())
    new_version = current + 1

    # 2. Current contents, from a current responder.
    current_reps = sorted(
        (rep for rep, stat in gathered.successes.items()
         if stat["version"] == current),
        key=lambda rep: (rep.latency_hint, rep.rep_id))
    data = None
    for rep in current_reps:
        try:
            data, _version = yield txn.call(
                rep.server, "txn.read", name=old_config.file_name,
                timeout=client.data_timeout)
            break
        except RETRYABLE:
            continue
    if data is None:
        raise ReproError("no current representative reachable for data")

    # 3. Stage at the old write quorum plus all newly added servers.
    properties = {"config": installed.to_json(),
                  "stamp": installed.config_version}
    quorum = cheapest_quorum(list(gathered.successes),
                             old_config.write_quorum)
    old_servers = {rep.server for rep in old_config.representatives}
    targets = {rep.server for rep in quorum}
    new_servers = [rep.server for rep in installed.representatives
                   if rep.server not in old_servers]
    calls = [
        txn.call(server, "txn.stage_write", name=old_config.file_name,
                 data=data, version=new_version, properties=properties,
                 create=True, timeout=client.data_timeout)
        for server in sorted(targets) + new_servers
    ]
    yield client.sim.all_of(calls)


def _spread_and_cleanup(client: FileSuiteClient,
                        old_config: SuiteConfiguration,
                        installed: SuiteConfiguration) -> None:
    """Post-commit: refresh remaining members, delete removed ones."""
    new_servers = {rep.server for rep in installed.representatives}
    if client.refresher is not None:
        remaining = [rep.rep_id for rep in installed.representatives]
        client.refresher.schedule(client, remaining, 0)
    removed = [rep for rep in old_config.representatives
               if rep.server not in new_servers]
    for rep in removed:
        client.sim.spawn(
            _delete_representative(client, rep.server,
                                   old_config.file_name),
            name=f"reconfig-cleanup:{rep.rep_id}")


def _delete_representative(client: FileSuiteClient, server: str,
                           file_name: str) -> Generator[Any, Any, None]:
    txn = client.manager.begin()
    try:
        yield txn.call(server, "txn.stage_delete", name=file_name,
                       timeout=client.data_timeout)
        yield from txn.commit()
    except ReproError:
        yield from txn.abort()
        # Best effort: an unreachable removed representative keeps its
        # (now unreferenced) copy; it can never affect a quorum again.
