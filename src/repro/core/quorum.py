"""Quorum mathematics: intersection, cheapest quorums, availability.

Pure functions over vote assignments — no simulation state.  These back
both the online protocol (choosing which representatives to contact) and
the closed-form analysis that reproduces the paper's example table.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..errors import InvalidConfigurationError
from .votes import Representative, SuiteConfiguration


def votes_of(reps: Iterable[Representative]) -> int:
    """Total votes held by ``reps``."""
    return sum(rep.votes for rep in reps)


def is_quorum(reps: Iterable[Representative], threshold: int) -> bool:
    """True if ``reps`` jointly hold at least ``threshold`` votes."""
    return votes_of(reps) >= threshold


def quorums_intersect(config: SuiteConfiguration) -> bool:
    """Check the intersection property by brute force (used in tests).

    True iff every subset with >= r votes intersects every subset with
    >= w votes, and every two subsets with >= w votes intersect.
    """
    voting = config.voting
    n = len(voting)
    subsets = []
    for size in range(n + 1):
        for combo in itertools.combinations(range(n), size):
            subset = frozenset(combo)
            subsets.append((subset, sum(voting[i].votes for i in combo)))
    read_quorums = [s for s, v in subsets if v >= config.read_quorum]
    write_quorums = [s for s, v in subsets if v >= config.write_quorum]
    for read_q in read_quorums:
        for write_q in write_quorums:
            if not read_q & write_q:
                return False
    for first in write_quorums:
        for second in write_quorums:
            if not first & second:
                return False
    return True


def cheapest_quorum(reps: Sequence[Representative], threshold: int,
                    cost: Optional[Mapping[str, float]] = None,
                    ) -> List[Representative]:
    """The quorum minimising the *slowest member's* cost.

    Representatives are contacted in parallel, so a quorum's latency is
    the maximum over its members.  Sorting by cost and taking the
    shortest vote-sufficient prefix is optimal for that metric: any
    quorum whose slowest member costs ``c`` is dominated by the prefix
    of all representatives costing at most ``c``.

    ``cost`` maps ``rep_id`` to a number; defaults to each
    representative's ``latency_hint``.  Ties break on ``rep_id`` for
    determinism.  Weak (zero-vote) representatives are never included.
    Raises :class:`InvalidConfigurationError` if the votes cannot reach
    ``threshold``.
    """
    def cost_of(rep: Representative) -> float:
        if cost is not None:
            return cost.get(rep.rep_id, float("inf"))
        return rep.latency_hint

    voting = [rep for rep in reps if rep.votes > 0]
    ordered = sorted(voting, key=lambda rep: (cost_of(rep), rep.rep_id))
    chosen: List[Representative] = []
    gathered = 0
    for rep in ordered:
        if gathered >= threshold:
            break
        chosen.append(rep)
        gathered += rep.votes
    if gathered < threshold:
        raise InvalidConfigurationError(
            f"votes {gathered} cannot reach threshold {threshold}")
    # Trim members whose votes turned out unnecessary (a cheap small
    # holder may be subsumed once a later big holder joined) — walk from
    # the most expensive end.
    for rep in sorted(chosen, key=lambda r: (-cost_of(r), r.rep_id)):
        if gathered - rep.votes >= threshold:
            chosen.remove(rep)
            gathered -= rep.votes
    return chosen


def quorum_latency(reps: Sequence[Representative], threshold: int,
                   latency: Optional[Mapping[str, float]] = None) -> float:
    """Latency of the cheapest quorum (max over its members)."""
    quorum = cheapest_quorum(reps, threshold, cost=latency)
    if latency is not None:
        # Same default as cheapest_quorum's cost_of: a representative
        # absent from the map costs infinity.  Indexing directly here
        # used to raise KeyError on partial maps, because the selection
        # above happily picks an unmapped representative when the
        # mapped ones cannot reach the threshold.
        return max(latency.get(rep.rep_id, float("inf")) for rep in quorum)
    return max(rep.latency_hint for rep in quorum)


def minimal_quorums(reps: Sequence[Representative], threshold: int,
                    ) -> List[frozenset]:
    """All minimal vote-sufficient subsets (by rep_id).

    Minimal: removing any member drops the subset below ``threshold``.
    Exponential in the number of voting representatives; fine for the
    suite sizes the paper considers (a handful of servers).
    """
    voting = [rep for rep in reps if rep.votes > 0]
    result: List[frozenset] = []
    for size in range(1, len(voting) + 1):
        for combo in itertools.combinations(voting, size):
            total = votes_of(combo)
            if total < threshold:
                continue
            if all(total - rep.votes < threshold for rep in combo):
                result.append(frozenset(rep.rep_id for rep in combo))
    return result


def availability_of_votes(
        reps: Sequence[Representative],
        availability: Mapping[str, float],
        threshold: int) -> float:
    """P[available representatives jointly hold >= threshold votes].

    Representatives fail independently; ``availability`` maps ``rep_id``
    to its probability of being up.  Exact dynamic programming over the
    distribution of the available vote total — the computation behind
    the blocking probabilities in the paper's example table
    (blocking probability = 1 - this value).
    """
    distribution: Dict[int, float] = {0: 1.0}
    for rep in reps:
        p_up = availability.get(rep.rep_id)
        if p_up is None:
            raise KeyError(f"no availability for {rep.rep_id}")
        if not 0.0 <= p_up <= 1.0:
            raise ValueError(f"availability of {rep.rep_id} not in [0,1]")
        updated: Dict[int, float] = {}
        for total, probability in distribution.items():
            up_total = total + rep.votes
            updated[up_total] = updated.get(up_total, 0.0) \
                + probability * p_up
            updated[total] = updated.get(total, 0.0) \
                + probability * (1.0 - p_up)
        distribution = updated
    return sum(probability for total, probability in distribution.items()
               if total >= threshold)


def blocking_probability(reps: Sequence[Representative],
                         availability: Mapping[str, float],
                         threshold: int) -> float:
    """P[an operation needing ``threshold`` votes cannot proceed]."""
    return 1.0 - availability_of_votes(reps, availability, threshold)


def feasible_quorum_pairs(total_votes: int) -> List[Tuple[int, int]]:
    """All (r, w) pairs satisfying the intersection rules for ``total_votes``.

    Used by the quorum trade-off sweep (experiment F4).
    """
    pairs = []
    for w in range(total_votes // 2 + 1, total_votes + 1):
        for r in range(max(1, total_votes - w + 1), total_votes + 1):
            pairs.append((r, w))
    return pairs
