"""The paper's three example file suites (Section 3).

Three servers; per-representative latencies in milliseconds; every
representative blocks (is unavailable) with probability 0.01.  The
examples span the tuning spectrum the paper argues for:

* **Example 1** — a file with a high read-to-write ratio in a local
  network: one voting representative plus two *weak* representatives.
  Reads are served by a weak representative in 65 ms; writes touch only
  the single voting representative.
* **Example 2** — a moderately updated file where most accesses come
  from one site: that site's representative carries 2 of 4 votes, so
  reads complete locally (r = 2) while writes need one more server
  (w = 3).
* **Example 3** — maximum read availability: three equal
  representatives, read-one (r = 1) / write-all (w = 3).

``EXPECTED`` records the table exactly as the paper reports it; the
analytic model reproduces these numbers and the benchmarks print both.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .analysis import SuiteAnalysis
from .votes import Representative, SuiteConfiguration

#: The three server names used throughout the examples.
SERVERS: Tuple[str, str, str] = ("server-1", "server-2", "server-3")

#: Per-representative availability used by the paper's table.
REP_AVAILABILITY = 0.99

#: Per-representative latency (ms) by example number.
LATENCIES: Dict[int, Tuple[float, float, float]] = {
    1: (75.0, 65.0, 65.0),
    2: (75.0, 100.0, 750.0),
    3: (75.0, 750.0, 750.0),
}

#: Vote assignments and quorums by example number.
VOTES: Dict[int, Tuple[Tuple[int, int, int], int, int]] = {
    1: ((1, 0, 0), 1, 1),
    2: ((2, 1, 1), 2, 3),
    3: ((1, 1, 1), 1, 3),
}

#: The paper's reported rows: (read latency, read blocking,
#: write latency, write blocking).  Blocking probabilities as printed
#: in the paper (rounded from the exact values the model computes).
EXPECTED: Dict[int, Dict[str, float]] = {
    1: {"read_latency": 65.0, "read_blocking": 0.01,
        "write_latency": 75.0, "write_blocking": 0.01},
    2: {"read_latency": 75.0, "read_blocking": 0.0002,
        "write_latency": 100.0, "write_blocking": 0.0101,
        },
    3: {"read_latency": 75.0, "read_blocking": 0.000001,
        "write_latency": 750.0, "write_blocking": 0.03,
        },
}

#: Exact model values (unrounded), for tight test tolerances.
EXACT: Dict[int, Dict[str, float]] = {
    1: {"read_blocking": 0.01, "write_blocking": 0.01},
    2: {"read_blocking": 0.01 * (1.0 - 0.99 ** 2),          # 0.00019899
        "write_blocking": 1.0 - 0.99 * (1.0 - 0.01 ** 2)},  # 0.0100990
    3: {"read_blocking": 0.01 ** 3,                         # 1e-6
        "write_blocking": 1.0 - 0.99 ** 3},                 # 0.029701
}


def example_configuration(number: int,
                          suite_name: str = "") -> SuiteConfiguration:
    """Build the configuration for example ``number`` (1, 2 or 3)."""
    if number not in VOTES:
        raise ValueError(f"no example {number}; choose 1, 2 or 3")
    votes, read_quorum, write_quorum = VOTES[number]
    latencies = LATENCIES[number]
    reps = tuple(
        Representative(rep_id=f"rep-{index + 1}", server=server,
                       votes=vote, latency_hint=latency)
        for index, (server, vote, latency)
        in enumerate(zip(SERVERS, votes, latencies)))
    return SuiteConfiguration(
        suite_name=suite_name or f"example-{number}",
        representatives=reps,
        read_quorum=read_quorum,
        write_quorum=write_quorum)


def example_analysis(number: int) -> SuiteAnalysis:
    """The analytic model for example ``number`` at availability 0.99."""
    return SuiteAnalysis(example_configuration(number),
                         availability=REP_AVAILABILITY)


def paper_table() -> List[Dict[str, float]]:
    """The full analytic table, one row per example — experiment T1."""
    rows = []
    for number in (1, 2, 3):
        estimate = example_analysis(number).estimate(use_weak=True)
        row = {"example": float(number)}
        row.update(estimate.as_row())
        rows.append(row)
    return rows
