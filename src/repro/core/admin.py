"""Operational tooling for file suites.

What an operator of Gifford's system would need day to day: inspect the
health of a suite (who is reachable, how far behind each copy is),
verify the protocol's on-disk invariants, and force a full convergence
pass before, say, taking a server down for maintenance.

Everything here is read-mostly and built from the same primitives as
the protocol itself (version inquiries, refresh) — no back doors into
server state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional

from ..errors import ReproError
from .suite import FileSuiteClient


@dataclass
class RepresentativeStatus:
    """One representative's view, as reported by a version inquiry."""

    rep_id: str
    server: str
    votes: int
    reachable: bool
    version: Optional[int] = None
    stamp: Optional[int] = None

    @property
    def weak(self) -> bool:
        return self.votes == 0


@dataclass
class SuiteStatus:
    """A point-in-time health report for a suite."""

    suite_name: str
    config_version: int
    current_version: Optional[int]
    representatives: List[RepresentativeStatus] = field(
        default_factory=list)

    @property
    def reachable_votes(self) -> int:
        return sum(rep.votes for rep in self.representatives
                   if rep.reachable)

    @property
    def stale(self) -> List[RepresentativeStatus]:
        if self.current_version is None:
            return []
        return [rep for rep in self.representatives
                if rep.reachable and rep.version is not None
                and rep.version < self.current_version]

    @property
    def unreachable(self) -> List[RepresentativeStatus]:
        return [rep for rep in self.representatives if not rep.reachable]

    def can_read(self, read_quorum: int) -> bool:
        return self.reachable_votes >= read_quorum

    def can_write(self, write_quorum: int) -> bool:
        return self.reachable_votes >= write_quorum

    def as_rows(self) -> List[Dict[str, Any]]:
        return [{
            "rep": rep.rep_id,
            "server": rep.server,
            "votes": rep.votes,
            "reachable": rep.reachable,
            "version": rep.version,
            "stamp": rep.stamp,
        } for rep in self.representatives]


def suite_status(suite: FileSuiteClient,
                 ) -> Generator[Any, Any, SuiteStatus]:
    """Poll every representative and build a :class:`SuiteStatus`.

    Uses a read transaction so the report is taken under shared locks —
    a consistent snapshot, not a racy scrape.  Representatives that do
    not answer within the inquiry timeout are reported unreachable.
    The ``current_version`` is only trusted (non-None) when the
    reachable representatives hold a read quorum; with fewer votes the
    highest version seen may not be current.
    """
    from ..txn.locks import SHARED
    from .gather import gather_until

    config = suite.config
    txn = suite.manager.begin()
    try:
        calls = {
            rep: txn.call(rep.server, "txn.stat", name=config.file_name,
                          mode=SHARED, timeout=suite.inquiry_timeout)
            for rep in config.representatives
        }
        gathered = yield from gather_until(
            suite.sim, calls, lambda successes, failures: False)
        yield from txn.commit()
    except ReproError:
        yield from txn.abort()
        raise

    representatives = []
    for rep in config.representatives:
        stat = gathered.successes.get(rep)
        if stat is None:
            representatives.append(RepresentativeStatus(
                rep_id=rep.rep_id, server=rep.server, votes=rep.votes,
                reachable=False))
        else:
            representatives.append(RepresentativeStatus(
                rep_id=rep.rep_id, server=rep.server, votes=rep.votes,
                reachable=True, version=stat["version"],
                stamp=stat.get("stamp")))

    reachable_votes = sum(rep.votes for rep in representatives
                          if rep.reachable)
    versions = [rep.version for rep in representatives
                if rep.version is not None]
    current = max(versions) if versions \
        and reachable_votes >= config.read_quorum else None
    return SuiteStatus(suite_name=config.suite_name,
                       config_version=config.config_version,
                       current_version=current,
                       representatives=representatives)


@dataclass
class InvariantReport:
    """Outcome of :func:`verify_invariants`."""

    ok: bool
    problems: List[str] = field(default_factory=list)


def verify_invariants(suite: FileSuiteClient,
                      ) -> Generator[Any, Any, InvariantReport]:
    """Check the protocol's observable invariants across reachable reps.

    * every version a representative claims is **corroborated**: any
      legitimately committed version lives on a write quorum, so a
      version held by fewer than ``w`` votes that no read quorum of the
      *other* representatives can account for is flagged as corrupt;
    * configuration stamps never exceed the newest one the client knows
      after adoption.

    Staleness (copies behind the current version) is explicitly *not*
    a violation — it is the protocol's normal state between a write
    and its background refresh.
    """
    status = yield from suite_status(suite)
    problems: List[str] = []
    config = suite.config
    if status.current_version is None:
        problems.append(
            f"cannot establish currency: only {status.reachable_votes} "
            f"votes reachable (need r={config.read_quorum})")
        return InvariantReport(ok=False, problems=problems)

    reachable = [rep for rep in status.representatives
                 if rep.reachable and rep.version is not None]
    newest_stamp = config.config_version
    for rep in reachable:
        if rep.stamp is not None and rep.stamp > newest_stamp:
            problems.append(
                f"{rep.rep_id}: stamp {rep.stamp} newer than the "
                f"client's adopted configuration {newest_stamp}")
        # Corroboration: either enough holders of this version exist to
        # have formed a write quorum, or the *other* reachable members
        # form a read quorum whose maximum reaches this version.
        holders_votes = sum(other.votes for other in reachable
                            if other.version is not None
                            and other.version >= rep.version)
        if holders_votes >= config.write_quorum:
            continue
        others = [other for other in reachable if other is not rep]
        others_votes = sum(other.votes for other in others)
        if others_votes < config.read_quorum:
            continue  # not enough independent evidence either way
        others_max = max(other.version for other in others)
        if rep.version > others_max:
            problems.append(
                f"{rep.rep_id}: claims version {rep.version}, but no "
                f"write quorum corroborates it (peers reach only "
                f"{others_max})")
    return InvariantReport(ok=not problems, problems=problems)


def force_converge(suite: FileSuiteClient, settle_checks: int = 20,
                   check_interval: float = 500.0,
                   ) -> Generator[Any, Any, SuiteStatus]:
    """Drive every reachable representative to the current version.

    Schedules refresh for all stale representatives and polls until no
    reachable representative lags (or ``settle_checks`` expire).
    Useful before maintenance: after it returns cleanly, any single
    representative can be removed without losing currency anywhere.
    """
    status = yield from suite_status(suite)
    for _check in range(settle_checks):
        stale = status.stale
        if not stale and status.current_version is not None:
            return status
        if suite.refresher is not None and stale \
                and status.current_version is not None:
            suite.refresher.schedule(
                suite, [rep.rep_id for rep in stale],
                status.current_version)
        yield suite.sim.timeout(check_interval)
        status = yield from suite_status(suite)
    return status
