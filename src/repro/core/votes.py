"""Vote assignments and suite configurations.

A *file suite* is a set of representatives, each holding a non-negative
integer number of votes, plus a read quorum ``r`` and a write quorum
``w``.  :class:`SuiteConfiguration` validates Gifford's correctness
rules:

* ``r + w > N`` (N = total votes) — every read quorum intersects every
  write quorum, so a read quorum always contains a current
  representative;
* ``w > N / 2`` — every two write quorums intersect, so version numbers
  totally order writes;
* ``1 <= r <= N`` and ``1 <= w <= N`` — both operations are possible at
  all;
* at least one representative holds a vote.

Representatives with **zero votes are weak representatives**: pure
performance devices (caches) that can hold data and serve reads once
verified current, but can never contribute to a quorum.

The configuration is itself replicated state: it is stored in the
property map of every representative's file and carries a
``config_version`` so clients can detect that they hold a stale
configuration (see :mod:`repro.core.reconfig`).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, Optional, Sequence, Tuple

from ..errors import InvalidConfigurationError


@dataclass(frozen=True)
class Representative:
    """One member of a file suite.

    ``rep_id`` names the representative; ``server`` is the host that
    stores it; ``votes`` is its weight (0 = weak); ``latency_hint`` is
    the client's estimate of round-trip time to it, used to pick the
    cheapest quorum — the paper assumes clients know the performance
    characteristics of each representative.
    """

    rep_id: str
    server: str
    votes: int
    latency_hint: float = 0.0

    def __post_init__(self) -> None:
        if self.votes < 0:
            raise InvalidConfigurationError(
                f"representative {self.rep_id}: negative votes")
        if self.latency_hint < 0:
            raise InvalidConfigurationError(
                f"representative {self.rep_id}: negative latency hint")

    @property
    def weak(self) -> bool:
        """True for a zero-vote (weak) representative."""
        return self.votes == 0

    def to_json(self) -> Dict[str, Any]:
        return {"rep_id": self.rep_id, "server": self.server,
                "votes": self.votes, "latency_hint": self.latency_hint}

    @classmethod
    def from_json(cls, raw: Dict[str, Any]) -> "Representative":
        return cls(rep_id=raw["rep_id"], server=raw["server"],
                   votes=raw["votes"],
                   latency_hint=raw.get("latency_hint", 0.0))


@dataclass(frozen=True)
class SuiteConfiguration:
    """The replicated description of a file suite."""

    suite_name: str
    representatives: Tuple[Representative, ...]
    read_quorum: int
    write_quorum: int
    config_version: int = 1

    def __post_init__(self) -> None:
        self.validate()

    # -- derived properties ---------------------------------------------------

    @property
    def total_votes(self) -> int:
        return sum(rep.votes for rep in self.representatives)

    @property
    def voting(self) -> Tuple[Representative, ...]:
        return tuple(rep for rep in self.representatives if rep.votes > 0)

    @property
    def weak(self) -> Tuple[Representative, ...]:
        return tuple(rep for rep in self.representatives if rep.weak)

    @property
    def file_name(self) -> str:
        """The name under which every representative stores this suite."""
        return f"suite:{self.suite_name}"

    def representative(self, rep_id: str) -> Representative:
        for rep in self.representatives:
            if rep.rep_id == rep_id:
                return rep
        raise KeyError(f"no representative {rep_id!r} in suite "
                       f"{self.suite_name!r}")

    def on_server(self, server: str) -> Optional[Representative]:
        for rep in self.representatives:
            if rep.server == server:
                return rep
        return None

    # -- validation -------------------------------------------------------------

    def validate(self) -> None:
        """Enforce the quorum-intersection rules; raise if violated."""
        if not self.representatives:
            raise InvalidConfigurationError("a suite needs representatives")
        seen_ids = set()
        seen_servers = set()
        for rep in self.representatives:
            if rep.rep_id in seen_ids:
                raise InvalidConfigurationError(
                    f"duplicate representative id {rep.rep_id!r}")
            if rep.server in seen_servers:
                raise InvalidConfigurationError(
                    f"two representatives on server {rep.server!r}")
            seen_ids.add(rep.rep_id)
            seen_servers.add(rep.server)
        total = self.total_votes
        if total == 0:
            raise InvalidConfigurationError(
                "at least one representative must hold a vote")
        r, w = self.read_quorum, self.write_quorum
        if not 1 <= r <= total:
            raise InvalidConfigurationError(
                f"read quorum {r} outside [1, {total}]")
        if not 1 <= w <= total:
            raise InvalidConfigurationError(
                f"write quorum {w} outside [1, {total}]")
        if r + w <= total:
            raise InvalidConfigurationError(
                f"r + w = {r + w} must exceed total votes {total}: "
                "otherwise a read quorum can miss the latest write")
        if 2 * w <= total:
            raise InvalidConfigurationError(
                f"2w = {2 * w} must exceed total votes {total}: "
                "otherwise two writes can commit against disjoint quorums")

    # -- serialization ---------------------------------------------------------

    def to_json(self) -> Dict[str, Any]:
        return {
            "suite_name": self.suite_name,
            "representatives": [rep.to_json()
                                for rep in self.representatives],
            "read_quorum": self.read_quorum,
            "write_quorum": self.write_quorum,
            "config_version": self.config_version,
        }

    @classmethod
    def from_json(cls, raw: Dict[str, Any]) -> "SuiteConfiguration":
        return cls(
            suite_name=raw["suite_name"],
            representatives=tuple(Representative.from_json(rep)
                                  for rep in raw["representatives"]),
            read_quorum=raw["read_quorum"],
            write_quorum=raw["write_quorum"],
            config_version=raw.get("config_version", 1),
        )

    def evolve(self, **changes: Any) -> "SuiteConfiguration":
        """A copy with ``changes`` applied and ``config_version`` bumped."""
        changes.setdefault("config_version", self.config_version + 1)
        return replace(self, **changes)


def make_configuration(suite_name: str,
                       assignment: Sequence[Tuple[str, int]],
                       read_quorum: int, write_quorum: int,
                       latency_hints: Optional[Dict[str, float]] = None,
                       ) -> SuiteConfiguration:
    """Convenience constructor from ``[(server, votes), ...]``.

    Representative ids are derived from server names.
    """
    hints = latency_hints or {}
    reps = tuple(
        Representative(rep_id=f"rep-{server}", server=server, votes=votes,
                       latency_hint=hints.get(server, 0.0))
        for server, votes in assignment)
    return SuiteConfiguration(suite_name=suite_name, representatives=reps,
                              read_quorum=read_quorum,
                              write_quorum=write_quorum)
