"""Closed-form performance and reliability analysis of a file suite.

Reproduces the arithmetic behind the paper's example table (Section 3):
given per-representative latencies and availabilities plus a vote
assignment and quorums, compute each operation's latency and blocking
probability.

Model (the paper's):

* Representatives are accessed in parallel, so a quorum's latency is
  the **maximum** over its members, and the best quorum is the one
  minimising that maximum.
* The version-number inquiry moves no file data; its cost is negligible
  next to a file transfer, so **read latency is the latency of the
  cheapest representative able to serve the data** — which may be a
  weak representative (the paper's Example 1 quotes 65 ms for exactly
  this reason).  ``read_latency_strict`` is also provided for the
  conservative two-phase accounting (inquiry quorum, then transfer).
* **Write latency** is the latency of the slowest member of the
  cheapest write quorum.
* Representatives fail independently; an operation **blocks** when the
  up representatives hold fewer votes than its quorum.  Blocking
  probabilities are computed exactly (dynamic programming over the
  available-vote distribution).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Tuple, Union

from .quorum import (availability_of_votes, blocking_probability,
                     cheapest_quorum, quorum_latency)
from .votes import Representative, SuiteConfiguration

Availability = Union[float, Mapping[str, float]]


@dataclass(frozen=True)
class OperationEstimate:
    """Predicted behaviour of one operation class."""

    latency: float
    blocking_probability: float


@dataclass(frozen=True)
class SuiteEstimate:
    """The analytic row for a suite — one column of the paper's table."""

    name: str
    read: OperationEstimate
    write: OperationEstimate

    def as_row(self) -> Dict[str, float]:
        return {
            "read_latency": self.read.latency,
            "read_blocking": self.read.blocking_probability,
            "write_latency": self.write.latency,
            "write_blocking": self.write.blocking_probability,
        }


class SuiteAnalysis:
    """Analytic model of one suite configuration.

    ``latency`` maps ``rep_id`` to the representative's read/write
    latency (defaults to the configuration's latency hints);
    ``availability`` is either one probability shared by every
    representative (the paper uses 0.99) or a per-``rep_id`` map.
    """

    def __init__(self, config: SuiteConfiguration,
                 latency: Optional[Mapping[str, float]] = None,
                 availability: Availability = 0.99) -> None:
        self.config = config
        if latency is None:
            latency = {rep.rep_id: rep.latency_hint
                       for rep in config.representatives}
        self.latency = dict(latency)
        if isinstance(availability, Mapping):
            self.availability = dict(availability)
        else:
            self.availability = {rep.rep_id: float(availability)
                                 for rep in config.representatives}

    # ------------------------------------------------------------------
    # Latency
    # ------------------------------------------------------------------

    def read_latency(self, use_weak: bool = True) -> float:
        """Latency of the cheapest representative able to serve a read.

        The paper's model: the version inquiry is (comparatively) free,
        data comes from the fastest current representative — including
        weak ones when ``use_weak``.
        """
        candidates = [rep for rep in self.config.representatives
                      if use_weak or rep.votes > 0]
        return min(self.latency[rep.rep_id] for rep in candidates)

    def read_latency_strict(
            self, inquiry_latency: Optional[Mapping[str, float]] = None,
            use_weak: bool = True) -> float:
        """Two-phase accounting: inquiry quorum, then the data transfer.

        ``inquiry_latency`` is the cost of a version-number inquiry per
        representative (defaults to zero — the paper's assumption).
        """
        inquiry = 0.0
        if inquiry_latency is not None:
            inquiry = quorum_latency(self.config.voting,
                                     self.config.read_quorum,
                                     latency=dict(inquiry_latency))
        return inquiry + self.read_latency(use_weak=use_weak)

    def write_latency(self) -> float:
        """Slowest member of the cheapest write quorum."""
        return quorum_latency(self.config.voting, self.config.write_quorum,
                              latency=self.latency)

    def write_quorum_members(self) -> List[str]:
        """The rep_ids of the cheapest write quorum (for reporting)."""
        quorum = cheapest_quorum(self.config.voting,
                                 self.config.write_quorum,
                                 cost=self.latency)
        return sorted(rep.rep_id for rep in quorum)

    def mean_latency(self, read_fraction: float,
                     use_weak: bool = True) -> float:
        """Mean operation latency under a read/write mix."""
        if not 0.0 <= read_fraction <= 1.0:
            raise ValueError("read fraction must be in [0, 1]")
        return (read_fraction * self.read_latency(use_weak=use_weak)
                + (1.0 - read_fraction) * self.write_latency())

    # ------------------------------------------------------------------
    # Reliability
    # ------------------------------------------------------------------

    def read_blocking_probability(self) -> float:
        """P[fewer than r votes are up]."""
        return blocking_probability(self.config.voting, self.availability,
                                    self.config.read_quorum)

    def write_blocking_probability(self) -> float:
        """P[fewer than w votes are up]."""
        return blocking_probability(self.config.voting, self.availability,
                                    self.config.write_quorum)

    def read_availability(self) -> float:
        return availability_of_votes(self.config.voting, self.availability,
                                     self.config.read_quorum)

    def write_availability(self) -> float:
        return availability_of_votes(self.config.voting, self.availability,
                                     self.config.write_quorum)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def estimate(self, use_weak: bool = True) -> SuiteEstimate:
        return SuiteEstimate(
            name=self.config.suite_name,
            read=OperationEstimate(
                latency=self.read_latency(use_weak=use_weak),
                blocking_probability=self.read_blocking_probability()),
            write=OperationEstimate(
                latency=self.write_latency(),
                blocking_probability=self.write_blocking_probability()),
        )


def message_cost(config: SuiteConfiguration) -> Dict[str, int]:
    """Messages per operation in the happy path (request + reply each).

    * **read** — a version inquiry to every representative (weak ones
      included: they are read candidates) and a lock-release prepare to
      every polled server; the data rides the cheapest
      representative's inquiry reply (the single-round-trip fast
      path), so no separate transfer appears in the count.
    * **read_fallback** — the legacy two-trip read (fast path off,
      piggyback target stale or reply truncated): the same messages
      plus one dedicated data request + reply.
    * **write** — an exclusive inquiry to every voting representative,
      data staged at the cheapest write quorum, then two-phase commit:
      phase 1 to every participant, phase 2 to the quorum that staged.

    ``tests/test_message_accounting.py`` pins the implementation to
    exactly these numbers, so a protocol regression that adds a round
    trip cannot land silently.
    """
    voting = len(config.voting)
    total = len(config.representatives)
    quorum = len(cheapest_quorum(config.voting, config.write_quorum))
    read = 2 * total + 2 * total
    read_fallback = read + 2
    write = 2 * voting + 2 * quorum + 2 * voting + 2 * quorum
    return {"read": read, "read_fallback": read_fallback, "write": write}


def availability_sweep(config: SuiteConfiguration,
                       latencies: Mapping[str, float],
                       probabilities: Iterable[float],
                       ) -> List[Tuple[float, float, float]]:
    """(p, read blocking, write blocking) rows for experiment F1."""
    rows = []
    for p in probabilities:
        analysis = SuiteAnalysis(config, latency=dict(latencies),
                                 availability=p)
        rows.append((p, analysis.read_blocking_probability(),
                     analysis.write_blocking_probability()))
    return rows


def quorum_tradeoff(config: SuiteConfiguration,
                    availability: Availability,
                    ) -> List[Dict[str, float]]:
    """Read vs write availability along the feasible (r, w) frontier.

    Slides (r, w) over every pair legal for the configuration's vote
    total (experiment F4).  Returns one row per pair.
    """
    from .quorum import feasible_quorum_pairs

    rows = []
    total = config.total_votes
    for r, w in feasible_quorum_pairs(total):
        shifted = config.evolve(read_quorum=r, write_quorum=w)
        analysis = SuiteAnalysis(shifted, availability=availability)
        rows.append({
            "r": float(r),
            "w": float(w),
            "read_availability": analysis.read_availability(),
            "write_availability": analysis.write_availability(),
        })
    return rows
