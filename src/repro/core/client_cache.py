"""Client-resident weak representatives.

The paper notes that a weak representative can live anywhere the data
is useful — including in a workstation's own memory as a *temporary*
copy.  :class:`CachingSuiteClient` implements exactly that: it keeps
the last data it observed and, on a read, offers its version to the
inquiry (the fast path's ``skip_version``).  When the cached version is
still current, the data transfer is skipped entirely — and when it is
stale, the current bytes ride back on the same inquiry reply, so a
cache *miss* costs one round trip, not an inquiry plus a data fetch.

Consistency is identical to a normal read: the inquiry takes shared
locks on a read quorum, so the moment it completes the cached value is
provably the current committed state — the same argument that lets any
weak representative serve a read.  A cache, like any weak
representative, holds no votes and can never affect availability.
"""

from __future__ import annotations

from typing import Any, Generator, Optional, Tuple

from .suite import FileSuiteClient, ReadResult, WriteResult


class CachingSuiteClient(FileSuiteClient):
    """A suite client with an in-process weak representative."""

    def __init__(self, *args: Any, cache_enabled: bool = True,
                 **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self.cache_enabled = cache_enabled
        self._cached: Optional[Tuple[int, bytes]] = None

    # ------------------------------------------------------------------

    @property
    def cached_version(self) -> Optional[int]:
        return self._cached[0] if self._cached else None

    def invalidate(self) -> None:
        """Drop the cached copy (e.g. on reconnection)."""
        self._cached = None

    # ------------------------------------------------------------------

    def _read_cache(self) -> Optional[Tuple[int, bytes]]:
        # Consulted by FileSuiteClient._read_once: the read serves
        # from here (served_by "client-cache") whenever the inquiry
        # proves this version current, and passes the version as
        # ``skip_version`` so a current copy is never re-shipped.
        return self._cached if self.cache_enabled else None

    def read(self) -> Generator[Any, Any, ReadResult]:
        """Read, serving the data locally when the cache is current.

        Unlike the pre-fast-path implementation, a cache hit is not a
        separate code path: the base read performs the inquiry, decides
        currency, and fills in the quorum membership, observed versions
        and attempt count either way — so a hit's :class:`ReadResult`
        carries the same invariant-checking evidence as any other read.
        """
        had_cache = self.cache_enabled and self._cached is not None
        result = yield from super().read()
        if result.served_by == "client-cache":
            self.metrics.counter("cache.hits").increment()
        else:
            if had_cache:
                self.metrics.counter("cache.misses").increment()
            self._store(result.version, result.data)
        return result

    def write(self, data: bytes) -> Generator[Any, Any, WriteResult]:
        """Write through: the cache holds the value we just committed."""
        result = yield from super().write(data)
        if self.cache_enabled:
            self._store(result.version, data)
        return result

    # ------------------------------------------------------------------

    def _store(self, version: int, data: bytes) -> None:
        if self.cache_enabled:
            self._cached = (version, bytes(data))
