"""Client-resident weak representatives.

The paper notes that a weak representative can live anywhere the data
is useful — including in a workstation's own memory as a *temporary*
copy.  :class:`CachingSuiteClient` implements exactly that: it keeps
the last data it observed and, on a read, performs only the (cheap)
version-number inquiry; when the cached version is still current the
data transfer is skipped entirely.

Consistency is identical to a normal read: the inquiry takes shared
locks on a read quorum, so the moment it completes the cached value is
provably the current committed state — the same argument that lets any
weak representative serve a read.  A cache, like any weak
representative, holds no votes and can never affect availability.
"""

from __future__ import annotations

from typing import Any, Generator, Optional, Tuple

from .suite import FileSuiteClient, ReadResult, WriteResult


class CachingSuiteClient(FileSuiteClient):
    """A suite client with an in-process weak representative."""

    def __init__(self, *args: Any, cache_enabled: bool = True,
                 **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self.cache_enabled = cache_enabled
        self._cached: Optional[Tuple[int, bytes]] = None

    # ------------------------------------------------------------------

    @property
    def cached_version(self) -> Optional[int]:
        return self._cached[0] if self._cached else None

    def invalidate(self) -> None:
        """Drop the cached copy (e.g. on reconnection)."""
        self._cached = None

    # ------------------------------------------------------------------

    def read(self) -> Generator[Any, Any, ReadResult]:
        """Read, serving the data locally when the cache is current."""
        if not self.cache_enabled or self._cached is None:
            result = yield from super().read()
            self._store(result.version, result.data)
            return result

        cached_version, cached_data = self._cached
        started = self.sim.now
        current = yield from self.current_version()
        if current == cached_version:
            self.metrics.counter("cache.hits").increment()
            self.metrics.counter("suite.reads").increment()
            self.metrics.histogram("suite.read_latency").observe(
                self.sim.now - started)
            return ReadResult(data=cached_data, version=cached_version,
                              served_by="client-cache", quorum=[],
                              stale=[])
        self.metrics.counter("cache.misses").increment()
        result = yield from super().read()
        self._store(result.version, result.data)
        return result

    def write(self, data: bytes) -> Generator[Any, Any, WriteResult]:
        """Write through: the cache holds the value we just committed."""
        result = yield from super().write(data)
        if self.cache_enabled:
            self._store(result.version, data)
        return result

    # ------------------------------------------------------------------

    def _store(self, version: int, data: bytes) -> None:
        if self.cache_enabled:
            self._cached = (version, bytes(data))
