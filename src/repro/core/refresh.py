"""Background refresh of stale representatives.

The paper keeps foreground operations fast by never making them wait
for obsolete copies: when a read or write discovers representatives
behind the current version (or leaves some behind by writing only a
quorum), those copies are brought current *in the background*.

Each refresh runs as its own transaction:

1. read the suite's current data through a normal read quorum (so the
   refresher can never propagate uncommitted or stale data);
2. stage the data at each target with ``only_if_newer`` — the
   representative's exclusive lock makes the version check stable, so a
   refresh can never move a version number backwards, even racing with
   foreground writes;
3. commit.

Duplicate suppression: one in-flight refresh per (suite, representative)
at a time; a refresh request for a version already achieved is dropped.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Generator, List, Optional, Set, Tuple

from ..errors import ReproError
from ..obs.spans import NOOP_SPAN
from ..sim.metrics import MetricsRegistry
from ..txn.coordinator import TransactionManager

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.simulator import Simulator
    from .suite import FileSuiteClient


class BackgroundRefresher:
    """Queues and executes stale-representative refreshes."""

    def __init__(self, manager: TransactionManager, delay: float = 0.0,
                 max_attempts: int = 3, retry_backoff: float = 100.0,
                 metrics: Optional[MetricsRegistry] = None,
                 enabled: bool = True) -> None:
        self.manager = manager
        self.sim = manager.sim
        self.delay = delay
        self.max_attempts = max_attempts
        self.retry_backoff = retry_backoff
        self.metrics = metrics or MetricsRegistry()
        #: Ablation switch: with ``enabled=False`` every refresh request
        #: is dropped, so stale copies persist (experiment F5).
        self.enabled = enabled
        self._in_flight: Set[Tuple[str, str]] = set()
        #: Highest version anyone has asked each representative to reach.
        #: A refresh already in flight re-runs if a newer request lands
        #: while it works, so no update is ever silently dropped.
        self._requested: Dict[Tuple[str, str], int] = {}

    def schedule(self, suite: "FileSuiteClient", rep_ids: List[str],
                 version: int) -> None:
        """Request that ``rep_ids`` of ``suite`` be brought to ``version``.

        Fire-and-forget: returns immediately, work happens in a
        detached process.
        """
        if not self.enabled:
            self.metrics.counter("refresh.dropped").increment()
            return
        suite_name = suite.config.suite_name
        targets = []
        for rep_id in rep_ids:
            key = (suite_name, rep_id)
            self._requested[key] = max(self._requested.get(key, 0),
                                       version)
            if key in self._in_flight:
                continue  # the in-flight run will see _requested
            self._in_flight.add(key)
            targets.append(rep_id)
        if not targets:
            return
        self.metrics.counter("refresh.scheduled").increment(len(targets))
        self.sim.spawn(self._refresh(suite, targets),
                       name=f"refresh:{suite_name}")

    def _refresh(self, suite: "FileSuiteClient", rep_ids: List[str],
                 ) -> Generator[Any, Any, None]:
        suite_name = suite.config.suite_name
        keys = [(suite_name, rep_id) for rep_id in rep_ids]
        # Refresh is its own root trace: it is causally downstream of a
        # foreground operation but runs detached, and a trace that held
        # the foreground span open until background work finished would
        # misreport the operation's latency.
        span = suite.collector.start_trace(
            "suite.refresh", kind="internal", suite=suite_name,
            targets=",".join(sorted(rep_ids)))
        try:
            if self.delay > 0:
                yield self.sim.timeout(self.delay)
            consecutive_failures = 0
            while consecutive_failures < self.max_attempts:
                achieved = yield from self._attempt(suite, rep_ids, 0,
                                                    span=span)
                if achieved is None:
                    consecutive_failures += 1
                    span.event("attempt.failed",
                               consecutive=consecutive_failures)
                    yield self.sim.timeout(
                        self.retry_backoff * consecutive_failures)
                    continue
                consecutive_failures = 0  # progress was made
                outstanding = any(self._requested.get(key, 0) > achieved
                                  for key in keys)
                if not outstanding:
                    self.metrics.counter(
                        "refresh.completed").increment(len(rep_ids))
                    span.set_attr("version", achieved)
                    span.end()
                    return
                # A newer request landed while we worked: go again.
            self.metrics.counter("refresh.abandoned").increment(len(rep_ids))
            span.end(error=f"abandoned after {self.max_attempts} "
                           "consecutive failures")
        finally:
            if span and not span.finished:
                span.end(error="refresher killed")
            for key in keys:
                self._in_flight.discard(key)
                self._requested.pop(key, None)

    def _attempt(self, suite: "FileSuiteClient", rep_ids: List[str],
                 version: int,
                 span=NOOP_SPAN) -> Generator[Any, Any, Optional[int]]:
        """One refresh pass; returns the version installed, or None."""
        # Phase 1 — its own read-only transaction: fetch the
        # authoritative current state through a normal read quorum (it
        # may already be newer than the requested version).  If a
        # reconfiguration happened meanwhile, the read adopts it and
        # raises, so by the time it succeeds `suite.config` is
        # consistent with the version read.  Committing here releases
        # the quorum's shared locks immediately, so a refresh never
        # starves foreground writers of the suite.
        read_txn = self.manager.begin()
        read_txn.span = span
        try:
            result = yield from suite.read_in(read_txn)
            yield from read_txn.commit()
        except ReproError:
            yield from read_txn.abort()
            return None

        # Phase 2 — a narrow write transaction locking *only* the stale
        # targets.  The gap between the phases is harmless: every stage
        # uses ``only_if_newer`` under the target's exclusive lock, so a
        # foreground write that slipped in between simply makes this a
        # no-op — versions can never move backwards.
        config = suite.config
        properties = {"config": config.to_json(),
                      "stamp": config.config_version}
        write_txn = self.manager.begin()
        write_txn.span = span
        try:
            calls = []
            for rep_id in rep_ids:
                try:
                    rep = config.representative(rep_id)
                except KeyError:
                    continue  # removed by a reconfiguration meanwhile
                calls.append(write_txn.call(
                    rep.server, "txn.stage_write", name=config.file_name,
                    data=result.data, version=result.version,
                    properties=properties, only_if_newer=True, create=True,
                    timeout=suite.data_timeout))
            if calls:
                yield self.sim.all_of(calls)
            yield from write_txn.commit()
            self.metrics.counter("refresh.transactions").increment()
            suite.tracer.record(f"suite:{config.suite_name}", "refresh",
                                version=result.version,
                                targets=",".join(sorted(rep_ids)))
            return result.version
        except ReproError:
            yield from write_txn.abort()
            return None
