"""Choosing a vote assignment: the paper's tuning problem, automated.

Gifford's Section 3 argues by example that votes and quorums should be
matched to the file's environment — per-representative latency and
availability, and the workload's read/write mix.  This module turns
that argument into a small optimizer: enumerate vote assignments and
quorum pairs over the given servers (bounded per-representative votes
keep the space tiny for realistic suite sizes), score each candidate
with the closed-form model, and return the non-dominated front or the
single best configuration under explicit constraints.

The paper's own examples fall out as optima of the right objectives —
asserted in ``tests/test_core_tuning.py`` and explored by
``benchmarks/bench_fig_tuning.py``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..errors import InvalidConfigurationError
from .analysis import SuiteAnalysis
from .votes import Representative, SuiteConfiguration


@dataclass(frozen=True)
class ServerProfile:
    """What the tuner knows about one candidate server."""

    name: str
    latency: float          # round-trip data transfer cost (ms)
    availability: float     # probability of being up

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise ValueError(f"{self.name}: negative latency")
        if not 0.0 < self.availability <= 1.0:
            raise ValueError(f"{self.name}: availability must be in (0,1]")


@dataclass(frozen=True)
class Candidate:
    """One scored configuration."""

    config: SuiteConfiguration
    read_latency: float
    write_latency: float
    read_availability: float
    write_availability: float
    mean_latency: float

    @property
    def votes(self) -> Tuple[int, ...]:
        return tuple(rep.votes for rep in self.config.representatives)

    @property
    def quorums(self) -> Tuple[int, int]:
        return (self.config.read_quorum, self.config.write_quorum)

    def dominates(self, other: "Candidate") -> bool:
        """Pareto dominance on (mean latency, read avail, write avail)."""
        at_least = (self.mean_latency <= other.mean_latency
                    and self.read_availability >= other.read_availability
                    and self.write_availability >= other.write_availability)
        strictly = (self.mean_latency < other.mean_latency
                    or self.read_availability > other.read_availability
                    or self.write_availability > other.write_availability)
        return at_least and strictly


def enumerate_configurations(servers: Sequence[ServerProfile],
                             max_votes_per_rep: int = 3,
                             allow_weak: bool = True,
                             suite_name: str = "tuned",
                             ) -> Iterator[SuiteConfiguration]:
    """Yield every valid (assignment, r, w) combination.

    Vote patterns that are permutations of each other are all yielded —
    *which* server gets the weight matters, since latencies and
    availabilities differ.  Assignments with zero total votes are
    skipped; weak (zero-vote) representatives are included unless
    ``allow_weak`` is false.
    """
    if not servers:
        return
    lower = 0 if allow_weak else 1
    for votes in itertools.product(range(lower, max_votes_per_rep + 1),
                                   repeat=len(servers)):
        total = sum(votes)
        if total == 0:
            continue
        representatives = tuple(
            Representative(rep_id=f"rep-{profile.name}",
                           server=profile.name, votes=vote,
                           latency_hint=profile.latency)
            for profile, vote in zip(servers, votes))
        for write_quorum in range(total // 2 + 1, total + 1):
            for read_quorum in range(total - write_quorum + 1, total + 1):
                try:
                    yield SuiteConfiguration(
                        suite_name=suite_name,
                        representatives=representatives,
                        read_quorum=read_quorum,
                        write_quorum=write_quorum)
                except InvalidConfigurationError:  # pragma: no cover
                    continue


def score(config: SuiteConfiguration, servers: Sequence[ServerProfile],
          read_fraction: float,
          inquiry_latency: Optional[Dict[str, float]] = None) -> Candidate:
    """Evaluate one configuration with the closed-form model.

    ``inquiry_latency`` (server name → version-inquiry round-trip cost)
    switches reads to the strict two-phase accounting: gathering ``r``
    votes of inquiries, then the cheapest data transfer.  Without it
    the paper's pure model is used, under which the read quorum size
    affects only availability.
    """
    latency = {f"rep-{profile.name}": profile.latency
               for profile in servers}
    availability = {f"rep-{profile.name}": profile.availability
                    for profile in servers}
    analysis = SuiteAnalysis(config, latency=latency,
                             availability=availability)
    if inquiry_latency is not None:
        per_rep = {f"rep-{name}": cost
                   for name, cost in inquiry_latency.items()}
        read_latency = analysis.read_latency_strict(per_rep)
    else:
        read_latency = analysis.read_latency()
    write_latency = analysis.write_latency()
    return Candidate(
        config=config,
        read_latency=read_latency,
        write_latency=write_latency,
        read_availability=analysis.read_availability(),
        write_availability=analysis.write_availability(),
        mean_latency=(read_fraction * read_latency
                      + (1.0 - read_fraction) * write_latency),
    )


def pareto_front(candidates: Iterable[Candidate]) -> List[Candidate]:
    """Non-dominated candidates, ordered by mean latency."""
    pool = list(candidates)
    front = [candidate for candidate in pool
             if not any(other.dominates(candidate) for other in pool)]
    return sorted(front, key=lambda c: (c.mean_latency,
                                        -c.read_availability,
                                        -c.write_availability))


def best_configuration(servers: Sequence[ServerProfile],
                       read_fraction: float,
                       min_read_availability: float = 0.0,
                       min_write_availability: float = 0.0,
                       max_votes_per_rep: int = 3,
                       allow_weak: bool = True,
                       suite_name: str = "tuned",
                       inquiry_latency: Optional[Dict[str, float]] = None,
                       ) -> Candidate:
    """The minimum-mean-latency configuration meeting the constraints.

    Raises :class:`InvalidConfigurationError` if no configuration over
    the given servers can meet the availability floors.
    """
    best: Optional[Candidate] = None
    for config in enumerate_configurations(
            servers, max_votes_per_rep=max_votes_per_rep,
            allow_weak=allow_weak, suite_name=suite_name):
        candidate = score(config, servers, read_fraction,
                          inquiry_latency=inquiry_latency)
        if candidate.read_availability < min_read_availability:
            continue
        if candidate.write_availability < min_write_availability:
            continue
        if best is None or _preferred(candidate, best):
            best = candidate
    if best is None:
        raise InvalidConfigurationError(
            "no vote assignment over these servers meets the "
            "availability constraints")
    return best


def _preferred(challenger: Candidate, incumbent: Candidate) -> bool:
    """Deterministic total order: latency, then availabilities, then
    smaller total votes (simpler suites win ties)."""
    challenger_key = (challenger.mean_latency,
                      -challenger.read_availability,
                      -challenger.write_availability,
                      challenger.config.total_votes,
                      challenger.votes)
    incumbent_key = (incumbent.mean_latency,
                     -incumbent.read_availability,
                     -incumbent.write_availability,
                     incumbent.config.total_votes,
                     incumbent.votes)
    return challenger_key < incumbent_key


def tune(servers: Sequence[ServerProfile], read_fraction: float,
         max_votes_per_rep: int = 3, allow_weak: bool = True,
         inquiry_latency: Optional[Dict[str, float]] = None,
         ) -> List[Candidate]:
    """Score the whole space and return the Pareto front."""
    candidates = [score(config, servers, read_fraction,
                        inquiry_latency=inquiry_latency)
                  for config in enumerate_configurations(
                      servers, max_votes_per_rep=max_votes_per_rep,
                      allow_weak=allow_weak)]
    return pareto_front(candidates)
