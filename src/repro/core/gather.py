"""Vote gathering: collect responses until a quorum condition is met.

The heart of the online protocol is "poll representatives in parallel
and stop as soon as enough votes have answered".  :func:`gather_until`
implements exactly that over any mapping of keys to reply events: it
resolves replies in arrival order, feeds each into an ``enough``
predicate, and returns as soon as the predicate is satisfied (or every
reply has settled).

Late responses are *not* cancelled — they simply settle after the
gather has returned, which mirrors real datagram RPC; the transaction
layer tracks every attempted server so their locks are cleaned up at
commit/abort time.
"""

from __future__ import annotations

from typing import (TYPE_CHECKING, Any, Callable, Dict, Generator, Hashable,
                    List, Mapping, Optional, Tuple)

from ..sim.events import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.simulator import Simulator


class GatherResult:
    """Outcome of a gather: successes, failures, and the stop reason.

    ``order`` records every settled reply as ``(key, settled_at, ok)``
    tuples in arrival order, and ``closed_by`` names the key whose
    settlement first satisfied the predicate (``None`` when the gather
    was pre-satisfied or ran out of replies).  Together they let the
    observability layer attribute quorum wait time to the
    representative that actually gated each interval of the gather.
    """

    __slots__ = ("successes", "failures", "satisfied", "order", "closed_by")

    def __init__(self, successes: Dict[Hashable, Any],
                 failures: Dict[Hashable, BaseException],
                 satisfied: bool,
                 order: Optional[List[Tuple[Hashable, float, bool]]] = None,
                 closed_by: Optional[Hashable] = None) -> None:
        self.successes = successes
        self.failures = failures
        self.satisfied = satisfied
        self.order = order if order is not None else []
        self.closed_by = closed_by

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"GatherResult(ok={sorted(map(str, self.successes))}, "
                f"failed={sorted(map(str, self.failures))}, "
                f"satisfied={self.satisfied})")


def gather_until(sim: "Simulator", calls: Mapping[Hashable, Event],
                 enough: Callable[[Dict[Hashable, Any],
                                   Dict[Hashable, BaseException]], bool],
                 ) -> Generator[Any, Any, GatherResult]:
    """Await ``calls`` in completion order until ``enough(successes,
    failures)``.

    ``calls`` maps an arbitrary key (e.g. a representative) to a reply
    event.  Returns a :class:`GatherResult`; ``satisfied`` records
    whether the predicate was met before replies ran out.  This function
    never raises on individual call failures — they are collected in
    ``failures`` and it is the caller's policy what a failed inquiry
    means (the predicate sees them, e.g. to stop waiting for an
    optional responder that turned out to be down).
    """
    successes: Dict[Hashable, Any] = {}
    failures: Dict[Hashable, BaseException] = {}
    if enough(successes, failures):
        return GatherResult(successes, failures, True)

    def wrap(key: Hashable, event: Event):
        try:
            value = yield event
            return (key, True, value)
        except BaseException as exc:  # noqa: BLE001 - reported, not lost
            return (key, False, exc)

    # ``pending`` must stay ordered (call order): when several replies
    # settle at the same instant, AnyOf resolves them in the order its
    # children were registered, and a set here would make that order —
    # and hence which representatives form the quorum — depend on
    # object hash values rather than on the simulation.
    pending = [sim.spawn(wrap(key, event), name=f"gather:{key}")
               for key, event in calls.items()]
    order: List[Tuple[Hashable, float, bool]] = []
    while pending:
        settled_event, outcome = yield sim.any_of(pending)
        pending.remove(settled_event)
        key, ok, value = outcome
        order.append((key, sim.now, ok))
        if ok:
            successes[key] = value
        else:
            failures[key] = value
        if enough(successes, failures):
            return GatherResult(successes, failures, True, order, key)
    return GatherResult(successes, failures, False, order, None)


def votes_predicate(threshold: int,
                    votes_of_key: Callable[[Hashable], int],
                    ) -> Callable[..., bool]:
    """An ``enough`` predicate: collected keys hold >= ``threshold`` votes."""
    def enough(successes: Dict[Hashable, Any],
               failures: Dict[Hashable, BaseException]) -> bool:
        return sum(votes_of_key(key) for key in successes) >= threshold
    return enough
