"""The trace collector and its sinks.

A :class:`TraceCollector` is the per-process entry point of the
observability layer: it mints trace/span ids, stamps times from the
owning runtime's clock (virtual milliseconds on the simulator,
wall-clock milliseconds on the live kernel), and hands every finished
span to its sinks.

Sinks are deliberately dumb: an object with ``emit(span)``.  Two are
provided — :class:`RingBufferSink` (bounded in-memory buffer with drop
accounting; every collector has one so recent spans are always
inspectable) and :class:`JsonlSink` (append-only JSONL file export).
Merging the JSONL exports of several processes reassembles the
distributed trace; :func:`load_jsonl` reads them back.

Id scheme: ``{origin}-t{n}`` / ``{origin}-s{n}`` — deterministic under
the simulator (one collector, one counter, deterministic event order)
and collision-free live because every process's origin name is unique
(client runtimes embed a per-boot suffix).
"""

from __future__ import annotations

import json
import os
from collections import deque
from typing import (Any, Callable, Deque, Dict, IO, Iterable, List,
                    Optional, Union)

from .spans import INTERNAL, NOOP_SPAN, NoopSpan, Span, TraceContext

#: Anything accepted as a parent when starting a span.
ParentLike = Union[Span, NoopSpan, TraceContext, None]


class RingBufferSink:
    """Keeps the last ``capacity`` finished spans; counts what it drops.

    The in-memory counterpart of a tracing backend: oldest spans are
    evicted first, and — unlike the historical silent
    :class:`~repro.sim.trace.Tracer` cap — every eviction is counted so
    a truncated buffer can never masquerade as a complete record.
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.dropped = 0
        self._spans: Deque[Span] = deque()

    def emit(self, span: Span) -> None:
        if len(self._spans) >= self.capacity:
            self._spans.popleft()
            self.dropped += 1
        self._spans.append(span)

    def spans(self) -> List[Span]:
        return list(self._spans)

    def clear(self) -> None:
        self._spans.clear()
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._spans)


class JsonlSink:
    """Appends each finished span as one JSON line to a file.

    Usable as a context manager: ``with JsonlSink(path) as sink: ...``
    flushes on exit and closes the file when the sink opened it itself
    (a caller-provided handle is flushed but left open — the caller
    owns its lifetime).  ``close`` is idempotent, and always flushes
    before closing so no buffered span can be lost at shutdown.

    With ``max_bytes`` (path targets only) the export is size-bounded:
    when the active file would exceed the cap it is rotated to
    ``path.1`` (older generations shift to ``path.2``, ...) and at most
    ``keep`` files survive in total — a soak can run for hours without
    growing its trace artifact without bound.  Readers that want the
    whole retained window read ``path.N`` ... ``path.1`` then ``path``.
    """

    def __init__(self, target: "str | IO[str]",
                 max_bytes: Optional[int] = None,
                 keep: int = 4) -> None:
        if isinstance(target, str):
            self._path: Optional[str] = target
            self._file: IO[str] = open(target, "a", encoding="utf-8")
            self._owned = True
        else:
            if max_bytes is not None:
                raise ValueError(
                    "rotation requires a path target, not a handle")
            self._path = None
            self._file = target
            self._owned = False
        if max_bytes is not None and max_bytes < 1024:
            raise ValueError("max_bytes must be at least 1024")
        if keep < 1:
            raise ValueError("keep must be >= 1")
        self.max_bytes = max_bytes
        self.keep = keep
        self.rotations = 0
        self._bytes = (os.path.getsize(self._path)
                       if self._path is not None
                       and os.path.exists(self._path) else 0)
        self._closed = False

    def emit(self, span: Span) -> None:
        if self._closed:
            raise ValueError("emit on a closed JsonlSink")
        line = json.dumps(span.to_dict(), separators=(",", ":")) + "\n"
        size = len(line.encode("utf-8"))
        if self.max_bytes is not None and self._bytes \
                and self._bytes + size > self.max_bytes:
            self._rotate()
        self._file.write(line)
        self._bytes += size

    def _rotate(self) -> None:
        """Shift the generation chain and reopen the active path."""
        self._file.flush()
        self._file.close()
        oldest = f"{self._path}.{self.keep - 1}"
        if self.keep > 1 and os.path.exists(oldest):
            os.remove(oldest)
        for index in range(self.keep - 2, 0, -1):
            generation = f"{self._path}.{index}"
            if os.path.exists(generation):
                os.replace(generation, f"{self._path}.{index + 1}")
        if self.keep > 1:
            os.replace(self._path, f"{self._path}.1")
        else:
            os.remove(self._path)
        self._file = open(self._path, "a", encoding="utf-8")
        self._bytes = 0
        self.rotations += 1

    def flush(self) -> None:
        if not self._closed:
            self._file.flush()

    def close(self) -> None:
        if self._closed:
            return
        self._file.flush()
        if self._owned:
            self._file.close()
        self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class TraceCollector:
    """Creates spans and routes the finished ones to sinks.

    ``enabled=False`` makes every factory return the shared
    :data:`~repro.obs.spans.NOOP_SPAN`, so an untraced deployment pays
    one predicate check per would-be span and allocates nothing — the
    same discipline as :class:`~repro.sim.trace.Tracer`.
    """

    def __init__(self, clock: Callable[[], float], origin: str = "",
                 enabled: bool = True, capacity: int = 4096,
                 sinks: Optional[List[Any]] = None) -> None:
        self.clock = clock
        self.origin = origin
        self.enabled = enabled
        self.ring = RingBufferSink(capacity=capacity)
        self.sinks: List[Any] = [self.ring] + list(sinks or [])
        self._next_trace = 0
        self._next_span = 0

    # -- clock -------------------------------------------------------------

    def now(self) -> float:
        return self.clock()

    # -- span factories ----------------------------------------------------

    def start_trace(self, name: str, kind: str = "client",
                    **attrs: Any) -> "Span | NoopSpan":
        """Open the root span of a brand-new trace."""
        if not self.enabled:
            return NOOP_SPAN
        self._next_trace += 1
        trace_id = f"{self.origin}-t{self._next_trace}" if self.origin \
            else f"t{self._next_trace}"
        return self._make(trace_id, parent_id=None, name=name, kind=kind,
                          attrs=attrs)

    def start_span(self, name: str, parent: ParentLike,
                   kind: str = INTERNAL, **attrs: Any) -> "Span | NoopSpan":
        """Open a child span of ``parent`` (a span or a remote context).

        A falsy parent (``None`` or the no-op span) yields the no-op
        span: children of nothing are never recorded, so a disabled
        caller disables its whole subtree.
        """
        if not self.enabled or not parent:
            return NOOP_SPAN
        context = parent.context if isinstance(parent, Span) else parent
        if context is None:
            return NOOP_SPAN
        return self._make(context.trace_id, parent_id=context.span_id,
                          name=name, kind=kind, attrs=attrs)

    def _make(self, trace_id: str, parent_id: Optional[str], name: str,
              kind: str, attrs: Dict[str, Any]) -> Span:
        self._next_span += 1
        span_id = f"{self.origin}-s{self._next_span}" if self.origin \
            else f"s{self._next_span}"
        return Span(collector=self, trace_id=trace_id, span_id=span_id,
                    parent_id=parent_id, name=name, kind=kind,
                    origin=self.origin, start=self.now(),
                    attrs=dict(attrs))

    def _emit(self, span: Span) -> None:
        for sink in self.sinks:
            sink.emit(span)

    # -- inspection and export ---------------------------------------------

    def spans(self) -> List[Span]:
        """Finished spans currently held by the ring buffer."""
        return self.ring.spans()

    @property
    def dropped(self) -> int:
        return self.ring.dropped

    def export_jsonl(self, path: str, mode: str = "w") -> int:
        """Write the ring buffer to ``path`` as JSONL; returns the count."""
        spans = self.spans()
        with open(path, mode, encoding="utf-8") as handle:
            dump_jsonl(spans, handle)
        return len(spans)


def dump_jsonl(spans: Iterable[Span], handle: IO[str]) -> None:
    for span in spans:
        handle.write(json.dumps(span.to_dict(), separators=(",", ":"))
                     + "\n")


def dumps_jsonl(spans: Iterable[Span]) -> str:
    """The spans as one JSONL string (e.g. for an HTTP response)."""
    return "".join(json.dumps(span.to_dict(), separators=(",", ":")) + "\n"
                   for span in spans)


class SpanLog(List[Span]):
    """Loaded spans, plus how many torn trailing bytes were dropped.

    A plain ``list`` of spans to every existing caller;
    ``dropped_bytes`` is non-zero when the file ended in a truncated
    record (a crash mid-write) that :func:`load_jsonl` discarded.
    """

    dropped_bytes: int = 0


def load_jsonl(source: "str | IO[str]") -> SpanLog:
    """Read spans back from a JSONL file or handle (blank lines skipped).

    A process that dies mid-write leaves a truncated final line; that
    is expected physics, not corruption, so the complete prefix is
    returned with the torn tail counted in ``.dropped_bytes`` — the
    same policy the flight journal applies to its torn trailing
    record.  A malformed line with real records *after* it still
    raises: nothing can truncate the middle of an append-only file.
    """
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as handle:
            return load_jsonl(handle)
    text = source.read()
    lines = text.split("\n")
    spans = SpanLog()
    for position, line in enumerate(lines):
        stripped = line.strip()
        if not stripped:
            continue
        try:
            spans.append(Span.from_dict(json.loads(stripped)))
        except (ValueError, KeyError, TypeError):
            if any(rest.strip() for rest in lines[position + 1:]):
                raise
            spans.dropped_bytes = len(
                "\n".join(lines[position:]).encode("utf-8"))
            break
    return spans
