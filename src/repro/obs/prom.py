"""Prometheus text exposition for a :class:`MetricsRegistry`.

The metrics layer keys everything by a flat string name; this module
maps those names onto the Prometheus data model:

* dots and other illegal characters become underscores and every family
  is prefixed (default ``repro_``);
* a ``[key=value,...]`` suffix on a metric name becomes Prometheus
  labels, so ``suite.version_lag[rep=rep-3]`` renders as
  ``repro_suite_version_lag{rep="rep-3"}`` — one family, one series per
  representative;
* counters gain the conventional ``_total`` suffix;
* gauges also render their running maximum as ``<family>_max``;
* histograms render both φ-quantile summary lines (exact, because the
  histogram keeps raw samples) and cumulative ``_bucket`` lines with
  ``le`` labels over :data:`BUCKETS` plus ``+Inf`` — quantiles for
  humans at a single daemon, buckets so :mod:`repro.obs.aggregate` can
  merge histograms across daemons by summing counts.

Output follows the Prometheus text format 0.0.4 — scrapeable by an
actual Prometheus, parseable by :func:`parse_exposition` (used by
``repro metrics``).
"""

from __future__ import annotations

import re
from bisect import bisect_right
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from ..sim.metrics import Histogram, MetricsRegistry

#: Content type a /metrics HTTP response should declare.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Quantiles rendered for every histogram.
QUANTILES = (0.5, 0.95, 0.99)

#: Cumulative bucket boundaries (milliseconds — every histogram in the
#: registry observes sim/wall milliseconds or small counts, and both
#: fit this decade ladder).  ``+Inf`` is implicit.
BUCKETS = (1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
           1000.0, 2500.0, 5000.0)

#: ``le`` label values corresponding to :data:`BUCKETS` plus ``+Inf``.
BUCKET_LABELS = tuple(
    [str(int(b)) if float(b).is_integer() else repr(float(b))
     for b in BUCKETS] + ["+Inf"])


def bucket_counts(histogram: Histogram,
                  buckets: Tuple[float, ...] = BUCKETS) -> List[int]:
    """Cumulative sample counts at each boundary, ending with +Inf.

    Exact — computed from the raw samples via one sort (cached inside
    the histogram), not from pre-binned counts.
    """
    ordered = histogram._ordered()
    counts = [bisect_right(ordered, boundary) for boundary in buckets]
    counts.append(len(ordered))
    return counts

_ILLEGAL = re.compile(r"[^a-zA-Z0-9_:]")
_LABELLED = re.compile(r"^(?P<family>[^\[\]]+)\[(?P<labels>[^\[\]]*)\]$")


def split_labels(name: str) -> Tuple[str, Dict[str, str]]:
    """Split ``family[k=v,...]`` into the family and its label map."""
    match = _LABELLED.match(name)
    if match is None:
        return name, {}
    labels: Dict[str, str] = {}
    for part in match.group("labels").split(","):
        if not part:
            continue
        key, _, value = part.partition("=")
        labels[key.strip()] = value.strip()
    return match.group("family"), labels


def metric_name(family: str, prefix: str = "repro_") -> str:
    """A legal Prometheus metric name for ``family``."""
    return prefix + _ILLEGAL.sub("_", family)


def _escape(value: str) -> str:
    # Backslash first (it introduces the other escapes), then quote and
    # newline — a raw newline would split the sample line in two.
    return (value.replace("\\", r"\\").replace('"', r'\"')
            .replace("\n", r"\n"))


def _unescape(value: str) -> str:
    """Decode an escaped label value in one left-to-right pass.

    Chained ``str.replace`` calls are position-sensitive and decode
    mixed sequences wrongly: in ``\\\\\\"`` (an escaped backslash
    followed by an escaped quote on the wire) a quote-first replace
    pairs the *second* backslash with the quote, yielding ``\\"``'s
    decode out of ``\\\\``'s bytes.  Scanning the escapes in order is
    the only correct inverse of :func:`_escape`.
    """
    if "\\" not in value:
        return value
    out: List[str] = []
    index = 0
    while index < len(value):
        char = value[index]
        if char == "\\" and index + 1 < len(value):
            successor = value[index + 1]
            if successor in ('"', "\\"):
                out.append(successor)
                index += 2
                continue
            if successor == "n":
                out.append("\n")
                index += 2
                continue
        out.append(char)
        index += 1
    return "".join(out)


def _labels_text(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{_ILLEGAL.sub("_", key)}="{_escape(value)}"'
                     for key, value in sorted(labels.items()))
    return "{" + inner + "}"


def _format(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


class _Family:
    __slots__ = ("name", "kind", "lines")

    def __init__(self, name: str, kind: str) -> None:
        self.name = name
        self.kind = kind
        self.lines: List[str] = []


def render_registry(registry: MetricsRegistry, prefix: str = "repro_",
                    extra: Optional[Mapping[str, float]] = None) -> str:
    """Render a whole registry (plus ad-hoc ``extra`` gauges) as text.

    ``extra`` carries values that live outside the registry — transport
    frame counts, ring-buffer drops — without forcing their owners to
    adopt the metrics layer.
    """
    families: Dict[str, _Family] = {}

    def family(raw_name: str, kind: str, suffix: str = "") -> _Family:
        base, labels = split_labels(raw_name)
        name = metric_name(base, prefix) + suffix
        entry = families.get(name)
        if entry is None:
            entry = families[name] = _Family(name, kind)
        return entry

    def emit(raw_name: str, kind: str, value: float,
             suffix: str = "", extra_labels: Optional[Dict[str, str]] = None,
             sample_suffix: str = "") -> None:
        base, labels = split_labels(raw_name)
        entry = family(raw_name, kind, suffix)
        if extra_labels:
            labels = {**labels, **extra_labels}
        entry.lines.append(
            f"{entry.name}{sample_suffix}{_labels_text(labels)} "
            f"{_format(value)}")

    for name, counter in sorted(registry._counters.items()):
        emit(name, "counter", counter.value, suffix="_total")
    for name, gauge in sorted(registry._gauges.items()):
        emit(name, "gauge", gauge.value)
        if gauge.maximum is not None:
            emit(name, "gauge", gauge.maximum, suffix="_max")
    for name, histogram in sorted(registry._histograms.items()):
        for quantile in QUANTILES:
            emit(name, "histogram", histogram.percentile(quantile * 100.0),
                 extra_labels={"quantile": _format(quantile)})
        base, labels = split_labels(name)
        entry = family(name, "histogram")
        for le, count in zip(BUCKET_LABELS, bucket_counts(histogram)):
            entry.lines.append(
                f"{entry.name}_bucket"
                f"{_labels_text({**labels, 'le': le})} {count}")
        entry.lines.append(
            f"{entry.name}_sum{_labels_text(labels)} "
            f"{_format(sum(histogram.samples))}")
        entry.lines.append(
            f"{entry.name}_count{_labels_text(labels)} "
            f"{_format(histogram.count)}")
    for name, value in sorted((extra or {}).items()):
        emit(name, "gauge", float(value))

    chunks: List[str] = []
    for name in sorted(families):
        entry = families[name]
        chunks.append(f"# TYPE {entry.name} {entry.kind}")
        chunks.extend(entry.lines)
    return "\n".join(chunks) + ("\n" if chunks else "")


def parse_exposition(text: str) -> List[Tuple[str, Dict[str, str], float]]:
    """Parse Prometheus text into ``(name, labels, value)`` samples.

    Tolerant subset parser for ``repro metrics`` pretty-printing and the
    tests; comment/TYPE lines are skipped.
    """
    samples: List[Tuple[str, Dict[str, str], float]] = []
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name_part, _, value_part = line.rpartition(" ")
        labels: Dict[str, str] = {}
        name = name_part
        if "{" in name_part:
            name, _, label_part = name_part.partition("{")
            label_part = label_part.rstrip("}")
            for piece in re.findall(r'(\w+)="((?:[^"\\]|\\.)*)"',
                                    label_part):
                key, value = piece
                labels[key] = _unescape(value)
        try:
            samples.append((name, labels, float(value_part)))
        except ValueError:
            continue
    return samples
