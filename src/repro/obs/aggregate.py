"""Fleet-wide metrics aggregation: one merged view of many daemons.

PR 2 gave every daemon its own ``/metrics``; PR 6 stood up fleets of
them.  This module closes the gap: scrape (live) or snapshot (sim)
every member's exposition and merge the samples into one keyed cluster
view — server → suite → representative — that the CLI (``repro top``,
``repro doctor``, multi-target ``repro metrics``) and the soak verdict
all read.

Merge rules follow the Prometheus data model:

* counters (``_total``) and histogram components (``_bucket``,
  ``_sum``, ``_count``) are summed across sources — buckets merge
  exactly because every daemon renders the same :data:`~repro.obs.
  prom.BUCKETS` ladder;
* φ-quantile samples are *not* merged (quantiles do not compose);
  merged-view percentiles come from :class:`MergedHistogram` bucket
  interpolation instead;
* gauges stay per-source (a version lag is a fact about one daemon) —
  skyline queries take the max across sources.

The sim path renders the shared testbed registry through the exact
same exposition + parse pipeline the live scraper uses, so every query
below behaves identically on both runtimes.
"""

from __future__ import annotations

import asyncio
import json
from typing import (Any, Dict, Iterable, List, Mapping, Optional, Tuple)

from ..chaos.health import STATE_OF_VALUE, CLOSED
from .critical_path import CriticalPathReport, attribution_from_samples
from .httpd import fetch
from .prom import parse_exposition, render_registry

__all__ = [
    "Sample",
    "LabelKey",
    "MergedHistogram",
    "FleetView",
    "scrape_fleet",
    "scrape_fleet_sync",
    "snapshot_registry",
    "snapshot_sim_cluster",
    "render_fleet_view",
    "write_obs_manifest",
    "load_obs_manifest",
]

#: One parsed exposition sample: ``(name, labels, value)``.
Sample = Tuple[str, Dict[str, str], float]

#: Hashable form of a label map.
LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Mapping[str, str]) -> LabelKey:
    return tuple(sorted(labels.items()))


def _le_sort_key(le: str) -> float:
    return float("inf") if le == "+Inf" else float(le)


class MergedHistogram:
    """Cumulative-bucket histogram summed across daemons."""

    __slots__ = ("buckets", "sum", "count")

    def __init__(self, buckets: Dict[str, float], total: float,
                 count: float) -> None:
        #: ``le`` label -> cumulative count, including ``+Inf``.
        self.buckets = buckets
        self.sum = total
        self.count = count

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Upper-bound estimate of the ``q`` quantile from the buckets.

        Returns the smallest bucket boundary whose cumulative count
        covers ``q`` of the samples — the conservative (never
        understating) answer bucketed data can give.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.count <= 0:
            return 0.0
        target = q * self.count
        for le in sorted(self.buckets, key=_le_sort_key):
            if self.buckets[le] >= target:
                return _le_sort_key(le)
        return float("inf")


class FleetView:
    """Parsed expositions from every fleet member, queryable merged."""

    def __init__(self) -> None:
        #: source (server name / "sim") -> parsed samples.
        self.sources: Dict[str, List[Sample]] = {}
        #: source -> error string for members that failed to scrape.
        self.errors: Dict[str, str] = {}

    def add_source(self, name: str, samples: Iterable[Sample]) -> None:
        self.sources[name] = list(samples)

    def add_text(self, name: str, text: str) -> None:
        self.add_source(name, parse_exposition(text))

    def add_error(self, name: str, error: str) -> None:
        self.errors[name] = error

    # -- merged queries ------------------------------------------------

    def all_samples(self) -> List[Sample]:
        return [sample for samples in self.sources.values()
                for sample in samples]

    def merged_counters(self) -> Dict[Tuple[str, LabelKey], float]:
        """Summable series (counters + histogram components), summed."""
        merged: Dict[Tuple[str, LabelKey], float] = {}
        for name, labels, value in self.all_samples():
            if "quantile" in labels:
                continue
            if not (name.endswith("_total") or name.endswith("_bucket")
                    or name.endswith("_sum") or name.endswith("_count")):
                continue
            key = (name, _label_key(labels))
            merged[key] = merged.get(key, 0.0) + value
        return merged

    def gauge_series(self, name: str) -> Dict[LabelKey, Dict[str, float]]:
        """``labels -> source -> value`` for one gauge family."""
        out: Dict[LabelKey, Dict[str, float]] = {}
        for source, samples in self.sources.items():
            for sample_name, labels, value in samples:
                if sample_name != name or "quantile" in labels:
                    continue
                out.setdefault(_label_key(labels), {})[source] = value
        return out

    def histogram(self, family: str) -> MergedHistogram:
        """Merged histogram for a family name like
        ``repro_suite_quorum_wait`` (labels other than ``le`` ignored —
        this merges the whole family)."""
        buckets: Dict[str, float] = {}
        total = 0.0
        count = 0.0
        for name, labels, value in self.all_samples():
            if name == family + "_bucket" and "le" in labels:
                le = labels["le"]
                buckets[le] = buckets.get(le, 0.0) + value
            elif name == family + "_sum":
                total += value
            elif name == family + "_count" and "quantile" not in labels:
                count += value
        return MergedHistogram(buckets, total, count)

    # -- keyed cluster views -------------------------------------------

    def version_lag_skyline(self) -> Dict[Tuple[str, str], float]:
        """``(suite, rep) -> worst observed version lag`` across sources.

        Covers both strong (``suite_version_lag``) and weak
        (``suite_weak_staleness``) representative families.
        """
        skyline: Dict[Tuple[str, str], float] = {}
        for family in ("repro_suite_version_lag",
                       "repro_suite_weak_staleness"):
            for labels, by_source in self.gauge_series(family).items():
                label_map = dict(labels)
                key = (label_map.get("suite", "?"),
                       label_map.get("rep", "?"))
                worst = max(by_source.values())
                skyline[key] = max(skyline.get(key, 0.0), worst)
        return skyline

    def breaker_states(self) -> Dict[Tuple[str, str], str]:
        """``(source, target server) -> breaker state`` decoded from the
        ``health.breaker_state`` gauge each member exports."""
        states: Dict[Tuple[str, str], str] = {}
        for labels, by_source in self.gauge_series(
                "repro_health_breaker_state").items():
            server = dict(labels).get("server", "?")
            for source, value in by_source.items():
                states[(source, server)] = STATE_OF_VALUE.get(
                    value, CLOSED)
        return states

    def open_breakers(self) -> List[Tuple[str, str, str]]:
        """Non-closed breakers as ``(source, server, state)`` rows."""
        return sorted((source, server, state)
                      for (source, server), state
                      in self.breaker_states().items()
                      if state != CLOSED)

    def quorum_blocking(self) -> CriticalPathReport:
        """Fleet-wide critical-path attribution from the online
        ``quorum.blocking.*`` families."""
        return attribution_from_samples(self.all_samples())

    def counter_total(self, name: str) -> float:
        """Sum of one counter family across all sources and labels."""
        return sum(value for (sample_name, _labels), value
                   in self.merged_counters().items()
                   if sample_name == name)


async def scrape_fleet(addresses: Mapping[str, Tuple[str, int]],
                       path: str = "/metrics",
                       timeout: float = 5.0) -> FleetView:
    """Pull ``path`` from every ``name -> (host, port)`` member.

    Unreachable members land in :attr:`FleetView.errors` instead of
    failing the whole scrape — a fleet view with a hole in it is
    exactly what the doctor wants to see.
    """
    view = FleetView()

    async def one(name: str, host: str, port: int) -> None:
        try:
            status, body = await fetch(host, port, path, timeout=timeout)
        except (OSError, asyncio.TimeoutError) as exc:
            view.add_error(name, f"{type(exc).__name__}: {exc}")
            return
        if status != 200:
            view.add_error(name, f"HTTP {status}")
            return
        view.add_text(name, body)

    await asyncio.gather(*(one(name, host, port)
                           for name, (host, port)
                           in sorted(addresses.items())))
    return view


def scrape_fleet_sync(addresses: Mapping[str, Tuple[str, int]],
                      path: str = "/metrics",
                      timeout: float = 5.0) -> FleetView:
    """Blocking wrapper around :func:`scrape_fleet` for the CLI."""
    return asyncio.run(scrape_fleet(addresses, path=path, timeout=timeout))


def snapshot_registry(name: str, registry: Any,
                      extra: Optional[Mapping[str, float]] = None,
                      ) -> FleetView:
    """A one-source view rendered through the live exposition pipeline."""
    view = FleetView()
    view.add_text(name, render_registry(registry, extra=extra))
    return view


def snapshot_sim_cluster(cluster: Any) -> FleetView:
    """Snapshot a :class:`~repro.cluster.harness.SimCluster`.

    The sim testbed shares one registry across the fleet, so the view
    has a single ``sim`` source; every keyed query still fans out by
    the suite/rep/server labels inside it.
    """
    return snapshot_registry("sim", cluster.bed.metrics)


def write_obs_manifest(addresses: Mapping[str, Tuple[str, int]],
                       path: str) -> None:
    """Persist ``name -> (host, port)`` obs addresses as JSON.

    Live obs sidecars bind ephemeral ports, so fleet discovery for
    out-of-process CLI tools goes through this manifest.
    """
    payload = {"servers": {name: [host, port]
                           for name, (host, port)
                           in sorted(addresses.items())}}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
        handle.write("\n")


def load_obs_manifest(path: str) -> Dict[str, Tuple[str, int]]:
    """Read back a :func:`write_obs_manifest` file."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    servers = payload.get("servers", payload)
    return {str(name): (str(entry[0]), int(entry[1]))
            for name, entry in servers.items()}


def render_fleet_view(view: FleetView, top: int = 8) -> str:
    """Terminal summary of a merged view: the ``repro top`` body."""
    lines: List[str] = []
    sources = ", ".join(sorted(view.sources)) or "(none)"
    lines.append(f"sources: {sources}")
    for name, error in sorted(view.errors.items()):
        lines.append(f"  !! {name}: {error}")

    reads = view.histogram("repro_suite_quorum_wait")
    if reads.count:
        lines.append(
            f"quorum wait: n={int(reads.count)} mean={reads.mean:.1f}ms "
            f"p50<={reads.quantile(0.5):g}ms p99<={reads.quantile(0.99):g}ms")

    report = view.quorum_blocking()
    if report.total_blocked_ms > 0.0:
        share = report.blocking_share()
        lines.append("top quorum blockers (share of attributed wait):")
        for rep, blocked, closes in report.top_blockers(top):
            lines.append(f"  {rep:<16} {share.get(rep, 0.0):6.1%} "
                         f"({blocked:.1f} ms, closed {closes})")

    skyline = view.version_lag_skyline()
    stale = sorted(((lag, suite, rep)
                    for (suite, rep), lag in skyline.items() if lag > 0.0),
                   reverse=True)
    if stale:
        lines.append("version-lag skyline (stale copies):")
        for lag, suite, rep in stale[:top]:
            lines.append(f"  {suite}/{rep}: {int(lag)} versions behind")

    open_breakers = view.open_breakers()
    if open_breakers:
        lines.append("open circuit breakers:")
        for source, server, state in open_breakers:
            lines.append(f"  {source} -> {server}: {state}")
    return "\n".join(lines)
