"""Flight recorder: a crash-safe black box for protocol decisions.

Spans and counters answer "what is the system doing *now*"; they die
with the process.  The flight recorder is the postmortem plane: an
always-on, bounded-overhead journal of every protocol-level *decision*
— quorum assemblies with the votes and version stamps actually
observed, 2PC outcomes, reconfigurations, autopilot ledger entries,
breaker transitions, chaos injections — durable enough to reconstruct
an incident from artifacts alone (see ``repro.replay``).

Format
------
One record per line, in segment files ``flight-000001.jrnl``,
``flight-000002.jrnl``, ... under the journal directory::

    <crc32 of payload, 8 hex digits> <payload>\n

where the payload is compact sorted-keys JSON::

    {"at": <clock ms>, "data": {...}, "kind": "<kind>", "seq": <n>}

``seq`` is a strictly monotonic record counter, ``at`` the recorder's
clock (virtual ms on the simulator, loop ms on the live kernel).
Everything in a record is derived from the run itself — no wall time,
no hostnames, no git state — so two seeded simulator runs produce
byte-identical journals.

Durability
----------
Segments roll at ``max_segment_bytes``; the recorder flushes and
fsyncs on every roll and on close, so at most the *tail of the last
segment* can be lost or torn by a crash.  ``load_flight_journal``
enforces exactly that failure model: a trailing record of the final
segment that is truncated or fails its checksum is dropped (and
counted), while corruption anywhere else raises — a torn tail is
expected physics, a hole in the middle is not.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = [
    "FlightJournalError",
    "FlightRecorder",
    "FlightHistory",
    "load_flight_journal",
    "read_journal_bytes",
]

SEGMENT_PREFIX = "flight-"
SEGMENT_SUFFIX = ".jrnl"

#: Default segment cap: small enough that a crash loses little, large
#: enough that a 500-op soak fits in a handful of segments.
DEFAULT_SEGMENT_BYTES = 256 * 1024


class FlightJournalError(ValueError):
    """A journal violates the recorder's failure model (corruption
    anywhere but the trailing record of the final segment)."""


@dataclass
class JournalStats:
    """What ``load_flight_journal`` found on disk."""

    segments: int = 0
    records: int = 0
    dropped_bytes: int = 0

    def summary(self) -> str:
        torn = (f", {self.dropped_bytes} torn trailing bytes dropped"
                if self.dropped_bytes else "")
        return (f"{self.records} records over {self.segments} "
                f"segment(s){torn}")


class FlightRecorder:
    """Appends checksummed decision records to a segmented journal.

    ``clock`` supplies the ``at`` timestamp — pass the owning kernel's
    clock so records sort with the run's own notion of time.  The
    recorder owns the directory: any segments left by a previous run
    are removed on open, so a journal directory always describes
    exactly one run.
    """

    def __init__(self, directory: str, clock: Callable[[], float],
                 max_segment_bytes: int = DEFAULT_SEGMENT_BYTES,
                 fsync: bool = True) -> None:
        if max_segment_bytes < 1024:
            raise ValueError("max_segment_bytes must be at least 1024")
        self.directory = directory
        self.clock = clock
        self.max_segment_bytes = int(max_segment_bytes)
        self.fsync = fsync
        self.seq = 0
        self.segments = 0
        self.bytes_written = 0
        self._segment_bytes = 0
        self._file: Optional[Any] = None
        os.makedirs(directory, exist_ok=True)
        for name in _segment_names(directory):
            os.remove(os.path.join(directory, name))
        self._open_next_segment()

    # -- lifecycle ----------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._file is None

    def close(self) -> None:
        """Flush, fsync and release the current segment.  Idempotent."""
        if self._file is None:
            return
        self._sync()
        self._file.close()
        self._file = None

    def __enter__(self) -> "FlightRecorder":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- recording ----------------------------------------------------

    def emit(self, kind: str, /, **data: Any) -> None:
        """Append one record.  Raises if the recorder is closed.

        ``kind`` is positional-only so payload keys may shadow it
        (``op`` records carry the operation's own ``kind`` field)."""
        if self._file is None:
            raise ValueError("flight recorder is closed")
        record = {"at": float(self.clock()), "data": data,
                  "kind": kind, "seq": self.seq}
        payload = json.dumps(record, sort_keys=True,
                             separators=(",", ":")).encode("utf-8")
        line = b"%08x %s\n" % (zlib.crc32(payload) & 0xFFFFFFFF, payload)
        if self._segment_bytes \
                and self._segment_bytes + len(line) > self.max_segment_bytes:
            self._roll()
        self._file.write(line)
        self._segment_bytes += len(line)
        self.bytes_written += len(line)
        self.seq += 1

    # -- internals ----------------------------------------------------

    def _segment_path(self, index: int) -> str:
        return os.path.join(
            self.directory, f"{SEGMENT_PREFIX}{index:06d}{SEGMENT_SUFFIX}")

    def _open_next_segment(self) -> None:
        self.segments += 1
        self._file = open(self._segment_path(self.segments), "wb")
        self._segment_bytes = 0

    def _roll(self) -> None:
        """Seal the current segment durably, then start the next one.

        The fsync here is what confines torn records to the *final*
        segment: every earlier segment was synced whole."""
        self._sync()
        self._file.close()
        self._open_next_segment()

    def _sync(self) -> None:
        self._file.flush()
        if self.fsync:
            try:
                os.fsync(self._file.fileno())
            except OSError:  # pragma: no cover - exotic filesystems
                pass


class FlightHistory(list):
    """An ``OpRecord`` list that journals every append as an ``op`` event.

    Soak drivers append each operation's record exactly once, so
    routing the journal through ``append`` captures the complete
    history — including the synthetic committed writes the drivers
    record for autopilot reassignments and mid-run joins — without
    touching any driver logic.
    """

    def __init__(self, recorder: Optional[FlightRecorder] = None,
                 suite: Optional[str] = None) -> None:
        super().__init__()
        self.recorder = recorder
        self.suite = suite

    def append(self, record: Any) -> None:
        super().append(record)
        if self.recorder is not None and not self.recorder.closed:
            data = record.to_json()
            if self.suite is not None:
                data["suite"] = self.suite
            self.recorder.emit("op", **data)

    def extend(self, records: Any) -> None:
        for record in records:
            self.append(record)

    def __iadd__(self, records: Any) -> "FlightHistory":
        self.extend(records)
        return self


def _segment_names(directory: str) -> List[str]:
    return sorted(
        name for name in os.listdir(directory)
        if name.startswith(SEGMENT_PREFIX) and name.endswith(SEGMENT_SUFFIX))


def read_journal_bytes(directory: str) -> bytes:
    """All segments concatenated in order — the unit of byte-identity."""
    chunks = []
    for name in _segment_names(directory):
        with open(os.path.join(directory, name), "rb") as handle:
            chunks.append(handle.read())
    return b"".join(chunks)


def load_flight_journal(directory: str,
                        ) -> Tuple[List[Dict[str, Any]], JournalStats]:
    """Parse a journal directory back into records.

    Returns ``(records, stats)`` where each record is the decoded
    payload dict.  A torn or checksum-failing *trailing* record of the
    *final* segment is dropped and counted in ``stats.dropped_bytes``
    — that is the only damage the recorder's fsync discipline permits.
    Corruption anywhere else, or a sequence-number gap, raises
    :class:`FlightJournalError`.
    """
    names = _segment_names(directory)
    if not names:
        raise FlightJournalError(
            f"no flight segments ({SEGMENT_PREFIX}*{SEGMENT_SUFFIX}) "
            f"in {directory!r}")
    records: List[Dict[str, Any]] = []
    stats = JournalStats(segments=len(names))
    for index, name in enumerate(names):
        path = os.path.join(directory, name)
        with open(path, "rb") as handle:
            raw = handle.read()
        final_segment = index == len(names) - 1
        offset = 0
        while offset < len(raw):
            newline = raw.find(b"\n", offset)
            torn_tail = newline < 0
            line = raw[offset:] if torn_tail else raw[offset:newline]
            record = None if torn_tail else _decode_line(line)
            if record is None:
                # Only the unsynced tail of the journal may be damaged.
                if final_segment and (torn_tail
                                      or newline + 1 >= len(raw)):
                    stats.dropped_bytes += len(raw) - offset
                    offset = len(raw)
                    break
                raise FlightJournalError(
                    f"corrupt record mid-journal in {path!r} "
                    f"at byte {offset}")
            records.append(record)
            offset = newline + 1
    for position, record in enumerate(records):
        if record.get("seq") != position:
            raise FlightJournalError(
                f"sequence gap: record {position} carries "
                f"seq={record.get('seq')!r}")
    stats.records = len(records)
    return records, stats


def _decode_line(line: bytes) -> Optional[Dict[str, Any]]:
    """One framed record, or ``None`` if the frame does not verify."""
    if len(line) < 10 or line[8:9] != b" ":
        return None
    try:
        expected = int(line[:8], 16)
    except ValueError:
        return None
    payload = line[9:]
    if zlib.crc32(payload) & 0xFFFFFFFF != expected:
        return None
    try:
        record = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, ValueError):
        return None
    if not isinstance(record, dict):
        return None
    return record
