"""Declarative SLOs with sliding windows and multi-window burn rates.

An SLO here is the standard production contract: over a window, at
least ``target`` of events must be *good* — a read answered under the
latency bound, a fresh read no staler than allowed, an operation that
succeeded.  What makes the contract actionable is the **burn rate**:
the ratio of the observed bad fraction to the error budget
(``1 - target``).  Burn 1.0 spends the budget exactly at window's end;
burn 10 exhausts it ten times faster.

Alerting uses the two-window rule (the one production SRE playbooks
converged on): an alert state is entered only when *both* a long
window (is the problem real?) and a short window (is it still
happening?) burn above the threshold.  That suppresses both
one-sample blips and stale alarms for incidents already over.

Everything takes explicit ``now`` timestamps from the caller's clock —
the sim's virtual milliseconds or ``time.monotonic()``-derived wall
milliseconds — so evaluation is deterministic under the simulator.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, List, NamedTuple, Optional, Tuple

__all__ = [
    "SLOSpec",
    "SLOStatus",
    "SLOTracker",
    "SLOEvaluator",
    "read_latency_slo",
    "staleness_slo",
    "success_rate_slo",
    "OK",
    "WARN",
    "PAGE",
]

OK = "ok"
WARN = "warn"
PAGE = "page"


class SLOSpec(NamedTuple):
    """One declarative objective over a sliding window.

    ``kind`` names the event stream the spec consumes; ``threshold``
    is the goodness bound for value events (a latency/staleness event
    is *good* when ``value <= threshold``; pass ``None`` for pure
    success/failure streams where the caller already classified the
    event).
    """

    name: str
    kind: str                     # "read_latency" | "staleness" | "success"
    target: float                 # fraction of events that must be good
    threshold: Optional[float] = None
    window_ms: float = 60_000.0   # long window
    short_window_ms: float = 5_000.0
    page_burn: float = 10.0       # burn rate that pages
    warn_burn: float = 2.0        # burn rate that warns

    @property
    def error_budget(self) -> float:
        return max(1.0 - self.target, 1e-12)

    def good(self, value: float) -> bool:
        """Classify a raw observation for value-threshold specs."""
        if self.threshold is None:
            return bool(value)
        return value <= self.threshold


class SLOStatus(NamedTuple):
    """One spec's evaluation at an instant."""

    name: str
    state: str                    # OK | WARN | PAGE
    burn_long: float
    burn_short: float
    good: int
    total: int

    @property
    def compliance(self) -> float:
        return self.good / self.total if self.total else 1.0


class SLOTracker:
    """Sliding-window event recorder for one spec."""

    __slots__ = ("spec", "_times", "_bad_times")

    def __init__(self, spec: SLOSpec) -> None:
        self.spec = spec
        self._times: List[float] = []       # every event, ascending
        self._bad_times: List[float] = []   # bad events, ascending

    def record(self, now: float, good: bool) -> None:
        """Record one classified event at time ``now``.

        Events must arrive in non-decreasing time order (both the sim
        clock and a monotonic wall clock guarantee it).
        """
        if self._times and now < self._times[-1]:
            raise ValueError("SLO events must be recorded in time order")
        self._times.append(now)
        if not good:
            self._bad_times.append(now)

    def observe(self, now: float, value: float) -> None:
        """Record a raw observation, classified by the spec."""
        self.record(now, self.spec.good(value))

    def window_counts(self, now: float, window_ms: float,
                      ) -> Tuple[int, int]:
        """``(bad, total)`` events in ``(now - window_ms, now]``."""
        cutoff = now - window_ms
        total = len(self._times) - bisect_left(self._times, cutoff)
        bad = len(self._bad_times) - bisect_left(self._bad_times, cutoff)
        return bad, total

    def burn_rate(self, now: float, window_ms: float) -> float:
        """Bad fraction over the window, relative to the error budget."""
        bad, total = self.window_counts(now, window_ms)
        if total == 0:
            return 0.0
        return (bad / total) / self.spec.error_budget

    def status(self, now: float) -> SLOStatus:
        spec = self.spec
        burn_long = self.burn_rate(now, spec.window_ms)
        burn_short = self.burn_rate(now, spec.short_window_ms)
        if burn_long >= spec.page_burn and burn_short >= spec.page_burn:
            state = PAGE
        elif burn_long >= spec.warn_burn and burn_short >= spec.warn_burn:
            state = WARN
        else:
            state = OK
        bad, total = self.window_counts(now, spec.window_ms)
        return SLOStatus(name=spec.name, state=state,
                         burn_long=burn_long, burn_short=burn_short,
                         good=total - bad, total=total)


class SLOEvaluator:
    """A set of SLOs fed from shared event streams.

    ``observe(kind, now, value)`` fans one raw observation out to every
    spec consuming that kind; ``evaluate(now)`` returns each spec's
    status, worst state first.
    """

    def __init__(self, specs: List[SLOSpec]) -> None:
        self.trackers: Dict[str, SLOTracker] = {
            spec.name: SLOTracker(spec) for spec in specs}

    def observe(self, kind: str, now: float, value: float) -> None:
        for tracker in self.trackers.values():
            if tracker.spec.kind == kind:
                tracker.observe(now, value)

    def evaluate(self, now: float) -> List[SLOStatus]:
        severity = {PAGE: 0, WARN: 1, OK: 2}
        statuses = [tracker.status(now)
                    for _name, tracker in sorted(self.trackers.items())]
        statuses.sort(key=lambda status: (severity[status.state],
                                          -status.burn_long, status.name))
        return statuses

    def worst_state(self, now: float) -> str:
        states = {status.state for status in self.evaluate(now)}
        if PAGE in states:
            return PAGE
        if WARN in states:
            return WARN
        return OK

    def render(self, now: float) -> str:
        lines = ["SLOs:"]
        for status in self.evaluate(now):
            lines.append(
                f"  [{status.state.upper():<4}] {status.name}: "
                f"{status.compliance:7.3%} compliant "
                f"({status.good}/{status.total}), "
                f"burn {status.burn_long:.2f} long / "
                f"{status.burn_short:.2f} short")
        return "\n".join(lines)


def read_latency_slo(threshold_ms: float = 250.0, target: float = 0.99,
                     **overrides) -> SLOSpec:
    """Reads answered within ``threshold_ms`` at least ``target`` often."""
    return SLOSpec(name=f"read-p99-under-{threshold_ms:g}ms",
                   kind="read_latency", target=target,
                   threshold=threshold_ms, **overrides)


def staleness_slo(bound_versions: float = 0.0,
                  target: float = 0.999, **overrides) -> SLOSpec:
    """Fresh reads observe a copy at most ``bound_versions`` behind."""
    return SLOSpec(name=f"fresh-read-lag-le-{bound_versions:g}",
                   kind="staleness", target=target,
                   threshold=bound_versions, **overrides)


def success_rate_slo(target: float = 0.995, **overrides) -> SLOSpec:
    """Operations complete successfully at least ``target`` often."""
    return SLOSpec(name=f"op-success-{target:g}", kind="success",
                   target=target, threshold=None, **overrides)
