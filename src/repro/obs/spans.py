"""Causal spans: the unit of distributed tracing.

A *span* is one timed piece of work (a suite operation, a quorum
assembly, one RPC) attributed to a trace.  Spans form a tree: every
span carries its trace id and its parent's span id, so spans recorded
by *different* processes — the coordinating client and each storage
daemon — stitch into one causal tree once their exports are merged.

The wire footprint is deliberately tiny: only a
:class:`TraceContext` (two short strings) crosses process boundaries,
riding the ``trace`` field of :class:`~repro.rpc.messages.Request`.
Span bodies stay local to the process that created them and leave it
only through a sink (ring buffer, JSONL file, HTTP endpoint).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

#: Span kinds, mirroring the OpenTelemetry vocabulary we need.
CLIENT = "client"
SERVER = "server"
INTERNAL = "internal"

#: Span statuses.
OK = "ok"
ERROR = "error"


@dataclass(frozen=True)
class TraceContext:
    """The propagated part of a span: enough to parent a remote child."""

    trace_id: str
    span_id: str

    def to_wire(self) -> Dict[str, str]:
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    @classmethod
    def from_wire(cls, raw: Optional[Dict[str, Any]]
                  ) -> Optional["TraceContext"]:
        if not isinstance(raw, dict):
            return None
        trace_id = raw.get("trace_id")
        span_id = raw.get("span_id")
        if not isinstance(trace_id, str) or not isinstance(span_id, str):
            return None
        return cls(trace_id=trace_id, span_id=span_id)


@dataclass
class SpanEvent:
    """A point-in-time annotation inside a span (e.g. quorum satisfied)."""

    time: float
    name: str
    attrs: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {"time": self.time, "name": self.name, "attrs": self.attrs}

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "SpanEvent":
        return cls(time=float(raw["time"]), name=str(raw["name"]),
                   attrs=dict(raw.get("attrs") or {}))


class Span:
    """One recorded unit of work; finished spans are immutable by custom.

    Created through :class:`~repro.obs.collector.TraceCollector`, which
    stamps times from the owning runtime's clock (virtual milliseconds
    in the sim, wall-clock milliseconds live) and emits the span to its
    sinks when :meth:`end` is called.
    """

    __slots__ = ("trace_id", "span_id", "parent_id", "name", "kind",
                 "origin", "start", "end_time", "status", "error",
                 "attrs", "events", "_collector")

    def __init__(self, collector: Any, trace_id: str, span_id: str,
                 parent_id: Optional[str], name: str, kind: str,
                 origin: str, start: float,
                 attrs: Optional[Dict[str, Any]] = None) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.kind = kind
        self.origin = origin
        self.start = start
        self.end_time: Optional[float] = None
        self.status = OK
        self.error: Optional[str] = None
        self.attrs: Dict[str, Any] = attrs or {}
        self.events: List[SpanEvent] = []
        self._collector = collector

    # -- identity ----------------------------------------------------------

    @property
    def context(self) -> TraceContext:
        """The context a child (local or remote) parents itself to."""
        return TraceContext(trace_id=self.trace_id, span_id=self.span_id)

    @property
    def finished(self) -> bool:
        return self.end_time is not None

    @property
    def duration(self) -> float:
        if self.end_time is None:
            return 0.0
        return self.end_time - self.start

    # -- recording ---------------------------------------------------------

    def event(self, name: str, **attrs: Any) -> None:
        """Add a timestamped point event to this span."""
        if self.finished:
            return
        self.events.append(SpanEvent(time=self._collector.now(),
                                     name=name, attrs=attrs))

    def set_attr(self, name: str, value: Any) -> None:
        self.attrs[name] = value

    def end(self, error: Optional[BaseException | str] = None) -> None:
        """Finish the span (idempotent) and hand it to the sinks."""
        if self.finished:
            return
        if error is not None:
            self.status = ERROR
            self.error = (error if isinstance(error, str)
                          else f"{type(error).__name__}: {error}")
        self.end_time = self._collector.now()
        self._collector._emit(self)

    # -- (de)serialisation -------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "kind": self.kind,
            "origin": self.origin,
            "start": self.start,
            "end": self.end_time,
            "status": self.status,
            "error": self.error,
            "attrs": self.attrs,
            "events": [event.to_dict() for event in self.events],
        }

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "Span":
        span = cls(collector=_FINISHED, trace_id=str(raw["trace_id"]),
                   span_id=str(raw["span_id"]),
                   parent_id=raw.get("parent_id"),
                   name=str(raw["name"]), kind=str(raw.get("kind", INTERNAL)),
                   origin=str(raw.get("origin", "")),
                   start=float(raw["start"]),
                   attrs=dict(raw.get("attrs") or {}))
        span.end_time = (float(raw["end"]) if raw.get("end") is not None
                         else None)
        span.status = str(raw.get("status", OK))
        span.error = raw.get("error")
        span.events = [SpanEvent.from_dict(event)
                       for event in raw.get("events") or []]
        return span

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"{self.duration:.3f}ms" if self.finished else "open"
        return (f"<Span {self.name} {self.trace_id}/{self.span_id} "
                f"{state}>")


class _FinishedCollector:
    """Stand-in collector for deserialised spans (no clock, no sinks)."""

    def now(self) -> float:  # pragma: no cover - deserialised spans only
        return 0.0

    def _emit(self, span: Span) -> None:  # pragma: no cover
        pass


_FINISHED = _FinishedCollector()


class NoopSpan:
    """The span you get when tracing is off: absorbs everything, is falsy.

    ``context`` is ``None``, so code that forwards ``span.context`` into
    an RPC naturally propagates nothing when tracing is disabled.
    """

    __slots__ = ()

    context: Optional[TraceContext] = None
    trace_id = ""
    span_id = ""
    finished = True
    duration = 0.0

    def __bool__(self) -> bool:
        return False

    def event(self, name: str, **attrs: Any) -> None:
        pass

    def set_attr(self, name: str, value: Any) -> None:
        pass

    def end(self, error: Optional[BaseException | str] = None) -> None:
        pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<NoopSpan>"


#: Shared no-op instance; tracing-off paths allocate nothing.
NOOP_SPAN = NoopSpan()
