"""A tiny asyncio HTTP/1.1 server for the observability endpoints.

Serves ``GET`` only, from a route table of callables returning
``(content_type, body)`` — enough for ``/metrics`` (Prometheus text),
``/healthz`` (JSON liveness) and ``/trace`` (the span ring buffer as
JSONL).  Deliberately stdlib-only and separate from the protocol
transport: an operator's scrape must never contend with, or be able to
confuse, the RPC frame parser.
"""

from __future__ import annotations

import asyncio
import logging
from typing import Callable, Dict, Optional, Tuple

logger = logging.getLogger("repro.obs.httpd")

#: A route handler: () -> (content type, body text).
RouteHandler = Callable[[], Tuple[str, str]]

#: Request lines above this size are abuse, not scrapes.
_MAX_REQUEST_BYTES = 8192


class ObsHttpServer:
    """Serve a route table over HTTP on a dedicated port."""

    def __init__(self, routes: Dict[str, RouteHandler]) -> None:
        self.routes = dict(routes)
        self.address: Optional[Tuple[str, int]] = None
        self._server: Optional[asyncio.base_events.Server] = None

    async def start(self, host: str = "127.0.0.1",
                    port: int = 0) -> Tuple[str, int]:
        self._server = await asyncio.start_server(self._serve, host, port)
        sockname = self._server.sockets[0].getsockname()
        self.address = (sockname[0], sockname[1])
        return self.address

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            try:
                await self._server.wait_closed()
            except Exception:  # pragma: no cover - close is best effort
                pass
            self._server = None

    async def _serve(self, reader: asyncio.StreamReader,
                     writer: asyncio.StreamWriter) -> None:
        try:
            request_line = await reader.readline()
            if len(request_line) > _MAX_REQUEST_BYTES:
                return
            # Drain headers; scrapes are one-shot, connection: close.
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                if len(line) > _MAX_REQUEST_BYTES:
                    return
            parts = request_line.decode("latin-1").split()
            if len(parts) < 2:
                return
            method, path = parts[0], parts[1].split("?", 1)[0]
            if method != "GET":
                writer.write(_response(405, "text/plain; charset=utf-8",
                                       "method not allowed\n"))
            else:
                handler = self.routes.get(path)
                if handler is None:
                    writer.write(_response(
                        404, "text/plain; charset=utf-8",
                        f"no such endpoint: {path}\n"))
                else:
                    try:
                        content_type, body = handler()
                        writer.write(_response(200, content_type, body))
                    except Exception:
                        logger.exception("handler for %s failed", path)
                        writer.write(_response(
                            500, "text/plain; charset=utf-8",
                            "internal error\n"))
            await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            try:
                writer.close()
            except Exception:  # pragma: no cover
                pass


_REASONS = {200: "OK", 404: "Not Found", 405: "Method Not Allowed",
            500: "Internal Server Error"}


def _response(status: int, content_type: str, body: str) -> bytes:
    payload = body.encode("utf-8")
    head = (f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Connection: close\r\n\r\n")
    return head.encode("latin-1") + payload


async def fetch(host: str, port: int, path: str,
                timeout: float = 5.0) -> Tuple[int, str]:
    """Minimal HTTP GET for tests and the CLI: ``(status, body)``."""
    reader, writer = await asyncio.wait_for(
        asyncio.open_connection(host, port), timeout)
    try:
        writer.write((f"GET {path} HTTP/1.1\r\nHost: {host}\r\n"
                      "Connection: close\r\n\r\n").encode("latin-1"))
        await writer.drain()
        raw = await asyncio.wait_for(reader.read(), timeout)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except Exception:  # pragma: no cover
            pass
    head, _, body = raw.partition(b"\r\n\r\n")
    status_line = head.split(b"\r\n", 1)[0].decode("latin-1")
    parts = status_line.split()
    status = int(parts[1]) if len(parts) > 1 and parts[1].isdigit() else 0
    return status, body.decode("utf-8", errors="replace")
