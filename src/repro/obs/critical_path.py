"""Quorum critical-path reconstruction and blocking attribution.

A weighted-voting operation is as fast as the *last* reply it needed:
the gather in :func:`repro.core.gather.gather_until` returns the moment
the vote predicate is satisfied, so every interval of its wait is gated
by exactly one representative — the one whose reply ended it.  This
module rebuilds that attribution offline from a stitched trace export
(``quorum.assemble`` spans carry one arrival-stamped ``version.collect``
/ ``inquiry.failed`` event per reply, plus ``closed_by`` on
``quorum.satisfied``) and aggregates it into the per-representative
load signal the ROADMAP's weight-reassignment work needs:

* **blocked time** — milliseconds of gather wait charged to each rep
  (marginal interval attribution: reply at ``t_i`` is charged
  ``t_i - t_{i-1}``);
* **closes** — how often each rep's reply was the one that closed a
  quorum (the strict critical-path endpoint);
* per-suite read/write breakdowns of operation counts and mean
  assembly wait.

The same attribution is available online as the ``quorum.blocking.*``
metric families fed from ``core.suite``; :mod:`repro.obs.aggregate`
merges those across a fleet, and this module's
:func:`attribution_from_samples` decodes them back into a report so
``repro doctor`` gives one answer from either source.

2PC phases block on *all* participants, so their critical path is
simply the slowest reply; :func:`extract_phase_laggards` counts, per
server, how often it arrived last in a ``2pc.prepare``/``2pc.commit``
phase (from the ``2pc.reply`` events the coordinator stamps).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from .spans import Span

__all__ = [
    "QuorumPath",
    "ReplyRecord",
    "CriticalPathReport",
    "extract_quorum_paths",
    "extract_phase_laggards",
    "analyze_quorum_paths",
    "attribution_from_samples",
]


class ReplyRecord:
    """One inquiry reply inside a gather: who, when, and whether it ok'd."""

    __slots__ = ("rep", "at", "waited", "ok")

    def __init__(self, rep: str, at: float, waited: float, ok: bool) -> None:
        self.rep = rep
        self.at = at
        self.waited = waited
        self.ok = ok

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flag = "ok" if self.ok else "failed"
        return f"ReplyRecord({self.rep}@{self.at} {flag})"


class QuorumPath:
    """One reconstructed quorum assembly: its replies in arrival order."""

    __slots__ = ("suite", "mode", "trace_id", "started", "waited",
                 "replies", "closed_by", "satisfied")

    def __init__(self, suite: str, mode: str, trace_id: str,
                 started: float, waited: float,
                 replies: List[ReplyRecord],
                 closed_by: Optional[str], satisfied: bool) -> None:
        self.suite = suite
        self.mode = mode
        self.trace_id = trace_id
        self.started = started
        self.waited = waited
        self.replies = replies
        self.closed_by = closed_by
        self.satisfied = satisfied

    def attribution(self) -> Dict[str, float]:
        """Marginal wait charged to the rep ending each interval."""
        charged: Dict[str, float] = {}
        previous = self.started
        for reply in self.replies:
            marginal = reply.at - previous
            previous = reply.at
            if marginal > 0.0:
                charged[reply.rep] = charged.get(reply.rep, 0.0) + marginal
        return charged


def extract_quorum_paths(spans: Iterable[Span]) -> List[QuorumPath]:
    """Rebuild every quorum assembly recorded in ``spans``."""
    paths: List[QuorumPath] = []
    for span in spans:
        if span.name != "quorum.assemble":
            continue
        replies: List[ReplyRecord] = []
        closed_by: Optional[str] = None
        satisfied = False
        waited: Optional[float] = None
        for event in span.events:
            if event.name in ("version.collect", "inquiry.failed"):
                at = float(event.attrs.get("at", event.time))
                replies.append(ReplyRecord(
                    rep=str(event.attrs.get("rep", "?")), at=at,
                    waited=float(event.attrs.get("waited",
                                                 at - span.start)),
                    ok=event.name == "version.collect"))
            elif event.name == "quorum.satisfied":
                satisfied = True
                closed_by = str(event.attrs.get("closed_by") or "") or None
                if "waited" in event.attrs:
                    waited = float(event.attrs["waited"])
        replies.sort(key=lambda reply: (reply.at, reply.rep))
        if waited is None:
            waited = (replies[-1].at - span.start) if replies else 0.0
        paths.append(QuorumPath(
            suite=str(span.attrs.get("suite", "?")),
            mode=str(span.attrs.get("mode", "?")),
            trace_id=span.trace_id, started=span.start, waited=waited,
            replies=replies, closed_by=closed_by, satisfied=satisfied))
    return paths


def extract_phase_laggards(spans: Iterable[Span]) -> Dict[str, int]:
    """Per-server count of arriving *last* in a 2PC phase.

    Prepare/commit wait for every participant, so the slowest reply is
    the whole phase's critical path.  Phases with a single reply are
    skipped — being last among one is not a signal.
    """
    laggards: Dict[str, int] = {}
    for span in spans:
        if span.name not in ("2pc.prepare", "2pc.commit"):
            continue
        replies = [event for event in span.events
                   if event.name == "2pc.reply"]
        if len(replies) < 2:
            continue
        last = max(replies,
                   key=lambda event: (float(event.attrs.get(
                       "at", event.time)), str(event.attrs.get("server"))))
        server = str(last.attrs.get("server", "?"))
        laggards[server] = laggards.get(server, 0) + 1
    return laggards


class CriticalPathReport:
    """Aggregated blocking attribution across many quorum operations."""

    def __init__(self, paths: Optional[List[QuorumPath]] = None,
                 phase_laggards: Optional[Dict[str, int]] = None) -> None:
        self.paths = paths if paths is not None else []
        self.phase_laggards = phase_laggards or {}
        # (suite, rep) -> accumulators
        self.blocked_ms: Dict[Tuple[str, str], float] = {}
        self.closes: Dict[Tuple[str, str], int] = {}
        self.replies: Dict[Tuple[str, str], int] = {}
        # (suite, mode) -> (operation count, total wait)
        self.operations: Dict[Tuple[str, str], int] = {}
        self.total_wait: Dict[Tuple[str, str], float] = {}
        for path in self.paths:
            self._fold(path)

    def _fold(self, path: QuorumPath) -> None:
        op_key = (path.suite, path.mode)
        self.operations[op_key] = self.operations.get(op_key, 0) + 1
        self.total_wait[op_key] = (self.total_wait.get(op_key, 0.0)
                                   + path.waited)
        for rep, charged in path.attribution().items():
            key = (path.suite, rep)
            self.blocked_ms[key] = self.blocked_ms.get(key, 0.0) + charged
        for reply in path.replies:
            key = (path.suite, reply.rep)
            self.replies[key] = self.replies.get(key, 0) + 1
        if path.closed_by is not None:
            key = (path.suite, path.closed_by)
            self.closes[key] = self.closes.get(key, 0) + 1

    # -- queries -------------------------------------------------------

    @property
    def total_blocked_ms(self) -> float:
        return sum(self.blocked_ms.values())

    def rep_blocked_ms(self) -> Dict[str, float]:
        """Blocked milliseconds per representative, summed over suites."""
        out: Dict[str, float] = {}
        for (_suite, rep), charged in self.blocked_ms.items():
            out[rep] = out.get(rep, 0.0) + charged
        return out

    def rep_closes(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for (_suite, rep), count in self.closes.items():
            out[rep] = out.get(rep, 0) + count
        return out

    def blocking_share(self) -> Dict[str, float]:
        """Each rep's fraction of all attributed gather wait, in [0, 1]."""
        total = self.total_blocked_ms
        if total <= 0.0:
            return {}
        return {rep: charged / total
                for rep, charged in self.rep_blocked_ms().items()}

    def top_blockers(self, n: int = 5) -> List[Tuple[str, float, int]]:
        """``(rep, blocked_ms, closes)`` sorted by blocked time, descending.

        Ties break on close count then rep id, so the ranking is
        deterministic for seeded runs.
        """
        closes = self.rep_closes()
        rows = [(rep, charged, closes.get(rep, 0))
                for rep, charged in self.rep_blocked_ms().items()]
        rows.sort(key=lambda row: (-row[1], -row[2], row[0]))
        return rows[:n]

    def suite_breakdown(self) -> Dict[str, Dict[str, Dict[str, float]]]:
        """suite -> mode -> {operations, mean_wait_ms}."""
        out: Dict[str, Dict[str, Dict[str, float]]] = {}
        for (suite, mode), count in sorted(self.operations.items()):
            wait = self.total_wait.get((suite, mode), 0.0)
            out.setdefault(suite, {})[mode] = {
                "operations": float(count),
                "mean_wait_ms": wait / count if count else 0.0,
            }
        return out

    def render(self, top: int = 5) -> str:
        """Human-readable summary for soak verdicts and ``repro doctor``."""
        operations = len(self.paths) or sum(self.operations.values())
        lines = [f"quorum critical path: {operations} operations, "
                 f"{self.total_blocked_ms:.1f} ms attributed wait"]
        share = self.blocking_share()
        for rep, blocked, closes in self.top_blockers(top):
            lines.append(
                f"  {rep}: blocked {blocked:.1f} ms "
                f"({share.get(rep, 0.0):6.1%} share), "
                f"closed {closes} quorums")
        if self.phase_laggards:
            slowest = sorted(self.phase_laggards.items(),
                             key=lambda item: (-item[1], item[0]))
            laggard_text = ", ".join(f"{server}×{count}"
                                     for server, count in slowest[:top])
            lines.append(f"  2pc last-reply laggards: {laggard_text}")
        return "\n".join(lines)


def analyze_quorum_paths(spans: Iterable[Span]) -> CriticalPathReport:
    """One-call analysis: spans in, aggregated attribution out."""
    spans = list(spans)
    return CriticalPathReport(paths=extract_quorum_paths(spans),
                              phase_laggards=extract_phase_laggards(spans))


def attribution_from_samples(
        samples: Iterable[Tuple[str, Mapping[str, Any], float]],
        prefix: str = "repro_") -> CriticalPathReport:
    """Decode ``quorum.blocking.*`` metric samples into a report.

    ``samples`` is the :func:`repro.obs.prom.parse_exposition` shape —
    ``(name, labels, value)`` — typically an aggregated fleet view.
    The report has no per-operation paths (metrics are already
    aggregated) but answers the same ``top_blockers`` /
    ``blocking_share`` queries, so the doctor can cross-check the trace
    analysis against the online counters.
    """
    wait_family = prefix + "quorum_blocking_wait_ms"
    closed_family = prefix + "quorum_blocking_closed_total"
    gathers_family = prefix + "quorum_blocking_gathers_total"
    report = CriticalPathReport()
    gathers = 0
    for name, labels, value in samples:
        suite = str(labels.get("suite", "?"))
        rep = str(labels.get("rep", "?"))
        if name == wait_family:
            key = (suite, rep)
            report.blocked_ms[key] = (report.blocked_ms.get(key, 0.0)
                                      + float(value))
        elif name == closed_family:
            key = (suite, rep)
            report.closes[key] = report.closes.get(key, 0) + int(value)
        elif name == gathers_family:
            gathers += int(value)
            mode = str(labels.get("mode", "?"))
            op_key = (suite, mode)
            report.operations[op_key] = (report.operations.get(op_key, 0)
                                         + int(value))
    return report
