"""Render exported spans as per-operation timelines.

Backs ``repro trace``: group a (possibly merged, multi-process) span
export by trace id, rebuild each trace's parent/child tree, and print
it as an indented timeline with per-span offsets and durations relative
to the trace root.  Spans whose parent is missing from the export (a
process whose file was not merged in) attach under the root with a
marker rather than vanishing — a partial trace should look partial,
not complete.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from .spans import Span


class TraceSummary:
    """One trace's headline facts, for listings."""

    __slots__ = ("trace_id", "root_name", "origin", "start", "duration",
                 "span_count", "status")

    def __init__(self, trace_id: str, root_name: str, origin: str,
                 start: float, duration: float, span_count: int,
                 status: str) -> None:
        self.trace_id = trace_id
        self.root_name = root_name
        self.origin = origin
        self.start = start
        self.duration = duration
        self.span_count = span_count
        self.status = status


def group_traces(spans: Iterable[Span]) -> Dict[str, List[Span]]:
    traces: Dict[str, List[Span]] = {}
    for span in spans:
        traces.setdefault(span.trace_id, []).append(span)
    return traces


def summarize(spans: Iterable[Span]) -> List[TraceSummary]:
    """One :class:`TraceSummary` per trace, in start order."""
    summaries = []
    for trace_id, members in group_traces(spans).items():
        root = _find_root(members)
        start = min(span.start for span in members)
        end = max(span.end_time if span.end_time is not None else span.start
                  for span in members)
        status = "error" if any(span.status == "error"
                                for span in members) else "ok"
        summaries.append(TraceSummary(
            trace_id=trace_id,
            root_name=root.name if root is not None else "?",
            origin=root.origin if root is not None else "?",
            start=start, duration=end - start, span_count=len(members),
            status=status))
    summaries.sort(key=lambda summary: (summary.start, summary.trace_id))
    return summaries


def _find_root(members: List[Span]) -> Optional[Span]:
    ids = {span.span_id for span in members}
    for span in sorted(members, key=lambda span: span.start):
        if span.parent_id is None or span.parent_id not in ids:
            if span.parent_id is None:
                return span
    return None


def render_trace(spans: List[Span], events: bool = True) -> str:
    """The indented timeline of one trace (all spans share a trace id)."""
    if not spans:
        return "(no spans)"
    ids = {span.span_id for span in spans}
    roots: List[Span] = []
    orphans: List[Span] = []
    children: Dict[str, List[Span]] = {}
    for span in spans:
        if span.parent_id is None:
            roots.append(span)
        elif span.parent_id not in ids:
            orphans.append(span)
        else:
            children.setdefault(span.parent_id, []).append(span)
    for member_list in children.values():
        member_list.sort(key=lambda span: (span.start, span.span_id))
    roots.sort(key=lambda span: (span.start, span.span_id))
    orphans.sort(key=lambda span: (span.start, span.span_id))

    epoch = min(span.start for span in spans)
    width = max(len(span.name) for span in spans) + 2
    lines = [f"trace {spans[0].trace_id} "
             f"({len(spans)} span{'s' if len(spans) != 1 else ''})"]

    def render(span: Span, depth: int) -> None:
        indent = "  " * depth
        offset = span.start - epoch
        duration = (f"{span.duration:9.3f}ms" if span.finished
                    else "     open")
        mark = " !" if span.status == "error" else ""
        origin = f" @{span.origin}" if span.origin else ""
        lines.append(
            f"  {indent}{span.name:<{width}} +{offset:9.3f}ms "
            f"{duration}  [{span.kind}{origin}]{mark}")
        if events:
            for event in span.events:
                detail = " ".join(f"{key}={value}"
                                  for key, value in event.attrs.items())
                lines.append(
                    f"  {indent}  · {event.name} "
                    f"+{event.time - epoch:9.3f}ms"
                    + (f" {detail}" if detail else ""))
        if span.status == "error" and span.error:
            lines.append(f"  {indent}  ! {span.error}")
        for child in children.get(span.span_id, ()):  # noqa: B023
            render(child, depth + 1)

    for root in roots:
        render(root, 0)
    if orphans:
        lines.append("  (parent span not in this export:)")
        for orphan in orphans:
            render(orphan, 1)
    return "\n".join(lines)


def breakdown(spans: Iterable[Span]) -> Dict[str, Tuple[int, float]]:
    """Per-span-name ``(count, mean duration)`` across finished spans.

    The bench harness uses this to turn a traced run into a latency
    breakdown row: how much of an operation went to quorum assembly vs
    two-phase commit vs raw RPC.
    """
    totals: Dict[str, Tuple[int, float]] = {}
    for span in spans:
        if not span.finished:
            continue
        count, total = totals.get(span.name, (0, 0.0))
        totals[span.name] = (count + 1, total + span.duration)
    return {name: (count, total / count)
            for name, (count, total) in sorted(totals.items())}
