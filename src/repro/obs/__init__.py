"""Observability: causal tracing and metrics exposition.

One layer shared by the deterministic simulator and the live asyncio
runtime — the same narrow-waist trick the runtimes themselves use.
Operation spans are created by the protocol layers
(:mod:`repro.core.suite`, :mod:`repro.txn`, :mod:`repro.rpc`) against a
:class:`TraceCollector` whose clock is whichever kernel is running;
trace context crosses process boundaries in
:class:`~repro.rpc.messages.Request` metadata, so a quorum operation's
spans — coordinator, every participant, both 2PC phases — stitch into
one tree even when each daemon records only its own part.

Exposition: every collector keeps a drop-counting ring buffer and can
export JSONL (``repro trace`` renders it); live daemons additionally
serve ``/metrics`` (Prometheus text) and ``/healthz`` over a dedicated
HTTP port (``repro metrics`` scrapes it).
"""

from .collector import (JsonlSink, RingBufferSink, TraceCollector,
                        dump_jsonl, dumps_jsonl, load_jsonl)
from .httpd import ObsHttpServer, fetch
from .prom import (CONTENT_TYPE, metric_name, parse_exposition,
                   render_registry, split_labels)
from .spans import (CLIENT, ERROR, INTERNAL, NOOP_SPAN, OK, SERVER,
                    NoopSpan, Span, SpanEvent, TraceContext)
from .timeline import breakdown, group_traces, render_trace, summarize

__all__ = [
    "CLIENT",
    "CONTENT_TYPE",
    "ERROR",
    "INTERNAL",
    "JsonlSink",
    "NOOP_SPAN",
    "NoopSpan",
    "OK",
    "ObsHttpServer",
    "RingBufferSink",
    "SERVER",
    "Span",
    "SpanEvent",
    "TraceCollector",
    "TraceContext",
    "breakdown",
    "dump_jsonl",
    "dumps_jsonl",
    "fetch",
    "group_traces",
    "load_jsonl",
    "metric_name",
    "parse_exposition",
    "render_registry",
    "render_trace",
    "split_labels",
    "summarize",
]
