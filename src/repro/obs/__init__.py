"""Observability: causal tracing and metrics exposition.

One layer shared by the deterministic simulator and the live asyncio
runtime — the same narrow-waist trick the runtimes themselves use.
Operation spans are created by the protocol layers
(:mod:`repro.core.suite`, :mod:`repro.txn`, :mod:`repro.rpc`) against a
:class:`TraceCollector` whose clock is whichever kernel is running;
trace context crosses process boundaries in
:class:`~repro.rpc.messages.Request` metadata, so a quorum operation's
spans — coordinator, every participant, both 2PC phases — stitch into
one tree even when each daemon records only its own part.

Exposition: every collector keeps a drop-counting ring buffer and can
export JSONL (``repro trace`` renders it); live daemons additionally
serve ``/metrics`` (Prometheus text) and ``/healthz`` over a dedicated
HTTP port (``repro metrics`` scrapes it).

Fleet plane (PR 7): :mod:`~repro.obs.critical_path` attributes quorum
wait to the representatives that gated it, :mod:`~repro.obs.aggregate`
merges every daemon's exposition into one cluster view, and
:mod:`~repro.obs.slo` evaluates declarative objectives with
multi-window burn rates — all consumed by ``repro top`` and
``repro doctor``.

Postmortem plane (PR 9): :mod:`~repro.obs.flight` is the black-box
flight recorder — a crash-safe, checksummed, segment-rotated journal
of protocol-level decisions that survives the process.
:mod:`repro.replay` audits and deterministically re-executes incidents
from it.
"""

from .aggregate import (FleetView, MergedHistogram, render_fleet_view,
                        scrape_fleet, scrape_fleet_sync,
                        snapshot_registry, snapshot_sim_cluster)
from .collector import (JsonlSink, RingBufferSink, SpanLog,
                        TraceCollector, dump_jsonl, dumps_jsonl,
                        load_jsonl)
from .flight import (FlightHistory, FlightJournalError, FlightRecorder,
                     JournalStats, load_flight_journal,
                     read_journal_bytes)
from .critical_path import (CriticalPathReport, QuorumPath, ReplyRecord,
                            analyze_quorum_paths, attribution_from_samples,
                            extract_phase_laggards, extract_quorum_paths)
from .httpd import ObsHttpServer, fetch
from .prom import (BUCKETS, CONTENT_TYPE, bucket_counts, metric_name,
                   parse_exposition, render_registry, split_labels)
from .slo import (SLOEvaluator, SLOSpec, SLOStatus, SLOTracker,
                  read_latency_slo, staleness_slo, success_rate_slo)
from .spans import (CLIENT, ERROR, INTERNAL, NOOP_SPAN, OK, SERVER,
                    NoopSpan, Span, SpanEvent, TraceContext)
from .timeline import breakdown, group_traces, render_trace, summarize

__all__ = [
    "BUCKETS",
    "CLIENT",
    "CONTENT_TYPE",
    "CriticalPathReport",
    "ERROR",
    "FleetView",
    "FlightHistory",
    "FlightJournalError",
    "FlightRecorder",
    "INTERNAL",
    "JournalStats",
    "JsonlSink",
    "MergedHistogram",
    "NOOP_SPAN",
    "NoopSpan",
    "OK",
    "ObsHttpServer",
    "QuorumPath",
    "ReplyRecord",
    "RingBufferSink",
    "SERVER",
    "SLOEvaluator",
    "SLOSpec",
    "SLOStatus",
    "SLOTracker",
    "Span",
    "SpanEvent",
    "SpanLog",
    "TraceCollector",
    "TraceContext",
    "analyze_quorum_paths",
    "attribution_from_samples",
    "breakdown",
    "bucket_counts",
    "dump_jsonl",
    "dumps_jsonl",
    "extract_phase_laggards",
    "extract_quorum_paths",
    "fetch",
    "group_traces",
    "load_flight_journal",
    "load_jsonl",
    "metric_name",
    "read_journal_bytes",
    "parse_exposition",
    "read_latency_slo",
    "render_fleet_view",
    "render_registry",
    "render_trace",
    "scrape_fleet",
    "scrape_fleet_sync",
    "snapshot_registry",
    "snapshot_sim_cluster",
    "split_labels",
    "staleness_slo",
    "success_rate_slo",
    "summarize",
]
