"""Low-overhead phase profiler for the protocol's hot paths.

A :class:`PhaseProfiler` aggregates durations per named *phase*
("quorum.assemble", "rpc.serve", "2pc.prepare", ...) into running
count/total/min/max — no per-sample allocation, no ring buffer — so it
can sit inside the RPC dispatch loop of the live runtime without
distorting the numbers it reports.  Durations come from an injected
``clock`` callable, so the same class profiles virtual sim milliseconds
and wall-clock live milliseconds; durations are clock *differences*,
so one profiler can be shared across the several kernels of a loopback
cluster even though their epochs differ.

The profiler measures itself: :meth:`calibrate` times its own
start/stop pair, and :meth:`overhead_fraction` turns that into the
fraction of an elapsed window spent inside the profiler — the number
the acceptance budget (< 5% on the L1 throughput bench) is checked
against.

Instrumented code takes ``profiler=None`` and guards with
``if profiler is not None`` — a disabled run costs one attribute test
per hot-path hit and nothing else.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Optional, Tuple


class PhaseStat:
    """Running aggregate of one phase (no per-sample storage)."""

    __slots__ = ("count", "total", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")

    def observe(self, duration: float) -> None:
        self.count += 1
        self.total += duration
        if duration < self.minimum:
            self.minimum = duration
        if duration > self.maximum:
            self.maximum = duration

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_json(self) -> Dict[str, float]:
        return {"count": self.count, "total": self.total,
                "mean": self.mean,
                "min": self.minimum if self.count else 0.0,
                "max": self.maximum if self.count else 0.0}


class PhaseProfiler:
    """Aggregates phase durations against an injected clock."""

    def __init__(self, clock: Callable[[], float],
                 enabled: bool = True) -> None:
        self.clock = clock
        self.enabled = enabled
        self._phases: Dict[str, PhaseStat] = {}
        #: samples recorded (start/stop or observe) — overhead input
        self.samples = 0
        #: calibrated cost of one sample, in *seconds* of wall clock
        self._sample_cost_s: Optional[float] = None

    # -- recording ----------------------------------------------------

    def start(self) -> float:
        """A token for :meth:`stop`; call on the same profiler."""
        return self.clock()

    def stop(self, phase: str, token: float) -> None:
        if not self.enabled:
            return
        self.observe(phase, self.clock() - token)

    def observe(self, phase: str, duration: float) -> None:
        """Record an externally measured duration."""
        if not self.enabled:
            return
        stat = self._phases.get(phase)
        if stat is None:
            stat = self._phases[phase] = PhaseStat()
        stat.observe(duration)
        self.samples += 1

    def count(self, phase: str) -> None:
        """Record an event with no duration (e.g. a retransmission)."""
        self.observe(phase, 0.0)

    @contextmanager
    def measure(self, phase: str) -> Iterator[None]:
        token = self.clock()
        try:
            yield
        finally:
            self.stop(phase, token)

    # -- reporting ----------------------------------------------------

    def stats(self) -> Dict[str, PhaseStat]:
        return dict(self._phases)

    def top(self, n: int = 10) -> List[Tuple[str, PhaseStat]]:
        """Phases ordered by total time, heaviest first."""
        ranked = sorted(self._phases.items(),
                        key=lambda item: item[1].total, reverse=True)
        return ranked[:n]

    def render(self, top_n: int = 10, unit: str = "ms") -> str:
        if not self._phases:
            return "(no phases recorded)"
        rows = self.top(top_n)
        width = max(len(name) for name, _ in rows)
        lines = [f"{'phase':<{width}}  {'count':>7}  {'total':>10}  "
                 f"{'mean':>9}  {'max':>9}  ({unit})"]
        for name, stat in rows:
            lines.append(f"{name:<{width}}  {stat.count:>7}  "
                         f"{stat.total:>10.3f}  {stat.mean:>9.4f}  "
                         f"{stat.maximum:>9.3f}")
        return "\n".join(lines)

    def publish(self, registry, prefix: str = "perf.phase") -> None:
        """Mirror aggregates into a ``MetricsRegistry`` for /metrics."""
        for name, stat in self._phases.items():
            registry.gauge(f"{prefix}.{name}.count").set(stat.count)
            registry.gauge(f"{prefix}.{name}.total").set(stat.total)
            registry.gauge(f"{prefix}.{name}.mean").set(stat.mean)

    def reset(self) -> None:
        self._phases.clear()
        self.samples = 0

    # -- self-measurement ---------------------------------------------

    def calibrate(self, iterations: int = 20000) -> float:
        """Measure one start/stop cycle's wall-clock cost, in seconds.

        Runs against a scratch phase name then removes it, so the
        calibration never pollutes reported stats.
        """
        began = time.perf_counter()
        for _ in range(iterations):
            token = self.start()
            self.stop("__calibration__", token)
        elapsed = time.perf_counter() - began
        stat = self._phases.pop("__calibration__", None)
        if stat is not None:
            self.samples -= stat.count
        self._sample_cost_s = elapsed / iterations
        return self._sample_cost_s

    def overhead_fraction(self, elapsed_s: float) -> float:
        """Estimated share of ``elapsed_s`` spent inside the profiler."""
        if elapsed_s <= 0:
            return 0.0
        if self._sample_cost_s is None:
            self.calibrate()
        assert self._sample_cost_s is not None
        return (self.samples * self._sample_cost_s) / elapsed_s
