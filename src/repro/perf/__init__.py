"""repro.perf — benchmark result registry, regression gate, profiler.

Three pieces: the :class:`BenchResult` schema and ``BENCH_*.json``
registry (every benchmark records what it printed), the comparator that
turns two result files into pass/fail (``repro perf compare``), and
the :class:`PhaseProfiler` that explains *why* a number moved
(``repro perf profile``).
"""

from .compare import (DEFAULT_TOLERANCE, ComparisonReport, Delta,
                      MetricRule, compare_results, infer_direction)
from .profiler import PhaseProfiler, PhaseStat
from .registry import (BenchRegistry, bench_path, discover, load_results,
                       write_results)
from .result import (RUNTIMES, SCHEMA_VERSION, BenchResult, SchemaError,
                     current_git_sha, validate_result)

__all__ = [
    "BenchRegistry", "BenchResult", "ComparisonReport",
    "DEFAULT_TOLERANCE", "Delta", "MetricRule", "PhaseProfiler",
    "PhaseStat", "RUNTIMES", "SCHEMA_VERSION", "SchemaError",
    "bench_path", "compare_results", "current_git_sha", "discover",
    "infer_direction", "load_results", "validate_result",
    "write_results",
]
