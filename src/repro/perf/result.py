"""The benchmark result schema: one measured number, fully attributed.

Every benchmark emits :class:`BenchResult` records instead of (only)
pretty tables, so the repo's perf trajectory is machine-readable: a
result names its benchmark, metric and unit, the configuration label it
was measured under, the runtime that produced it (analytic closed form,
deterministic simulation, or live sockets), the seed, the git revision
and the wall-clock cost of producing it.  Records are versioned
(:data:`SCHEMA_VERSION`) and validated on both write and read, so a
drifting producer fails loudly rather than poisoning baselines.

``gate`` marks whether the value is deterministic enough to fail a
build over: analytic and seeded-sim numbers are bit-stable run to run
and gate; live wall-clock numbers vary with the hardware and are
recorded advisory-only.
"""

from __future__ import annotations

import os
import subprocess
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Optional

#: Bump when the record shape changes incompatibly; the comparator
#: refuses to diff records across schema versions.
SCHEMA_VERSION = 1

#: Runtimes a result may be attributed to.
RUNTIMES = ("analytic", "sim", "live")


class SchemaError(ValueError):
    """A benchmark result violated the schema."""


@dataclass(frozen=True)
class BenchResult:
    """One measured data point of one benchmark run."""

    bench: str                        # benchmark id, e.g. "fig_scaling"
    metric: str                       # e.g. "write_latency_ms"
    value: float
    unit: str                         # "ms", "ops/s", "probability", ...
    config: str = ""                  # config label, e.g. "example-2"
    runtime: str = "sim"              # one of RUNTIMES
    seed: Optional[int] = None
    git_sha: str = "unknown"
    duration_s: Optional[float] = None  # wall clock of the producing run
    gate: bool = True                 # False: advisory, never fails compare
    schema: int = field(default=SCHEMA_VERSION)

    def key(self) -> tuple:
        """Identity for baseline matching (value-independent)."""
        return (self.bench, self.metric, self.config, self.runtime)

    def label(self) -> str:
        parts = [self.bench, self.metric]
        if self.config:
            parts.append(self.config)
        parts.append(self.runtime)
        return "/".join(parts)

    def to_json(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_json(cls, raw: Dict[str, Any]) -> "BenchResult":
        validate_result(raw)
        return cls(**{name: raw.get(name, _DEFAULTS.get(name))
                      for name in _FIELDS})


_FIELDS = ("bench", "metric", "value", "unit", "config", "runtime",
           "seed", "git_sha", "duration_s", "gate", "schema")
_DEFAULTS = {"config": "", "runtime": "sim", "seed": None,
             "git_sha": "unknown", "duration_s": None, "gate": True,
             "schema": SCHEMA_VERSION}


def validate_result(raw: Dict[str, Any]) -> None:
    """Raise :class:`SchemaError` unless ``raw`` is a valid record."""
    if not isinstance(raw, dict):
        raise SchemaError(f"result must be an object, got "
                          f"{type(raw).__name__}")
    schema = raw.get("schema", SCHEMA_VERSION)
    if schema != SCHEMA_VERSION:
        raise SchemaError(f"unsupported result schema {schema!r} "
                          f"(this tool speaks {SCHEMA_VERSION})")
    for name, kinds in (("bench", str), ("metric", str), ("unit", str)):
        value = raw.get(name)
        if not isinstance(value, kinds) or not value:
            raise SchemaError(f"{name!r} must be a non-empty string, "
                              f"got {value!r}")
    value = raw.get("value")
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise SchemaError(f"'value' must be a number, got {value!r}")
    runtime = raw.get("runtime", "sim")
    if runtime not in RUNTIMES:
        raise SchemaError(f"'runtime' must be one of {RUNTIMES}, "
                          f"got {runtime!r}")
    config = raw.get("config", "")
    if not isinstance(config, str):
        raise SchemaError(f"'config' must be a string, got {config!r}")
    seed = raw.get("seed")
    if seed is not None and (not isinstance(seed, int)
                             or isinstance(seed, bool)):
        raise SchemaError(f"'seed' must be an integer or null, "
                          f"got {seed!r}")
    duration = raw.get("duration_s")
    if duration is not None and (not isinstance(duration, (int, float))
                                 or isinstance(duration, bool)):
        raise SchemaError(f"'duration_s' must be a number or null, "
                          f"got {duration!r}")
    if not isinstance(raw.get("gate", True), bool):
        raise SchemaError(f"'gate' must be a boolean, "
                          f"got {raw.get('gate')!r}")
    git_sha = raw.get("git_sha", "unknown")
    if not isinstance(git_sha, str):
        raise SchemaError(f"'git_sha' must be a string, got {git_sha!r}")


_GIT_SHA_CACHE: Optional[str] = None


def current_git_sha() -> str:
    """The repo's short HEAD sha (cached; ``REPRO_BENCH_SHA`` overrides).

    Falls back to ``"unknown"`` outside a work tree — results must be
    recordable from an unpacked tarball too.
    """
    global _GIT_SHA_CACHE
    override = os.environ.get("REPRO_BENCH_SHA")
    if override:
        return override
    if _GIT_SHA_CACHE is None:
        try:
            _GIT_SHA_CACHE = subprocess.run(
                ["git", "rev-parse", "--short", "HEAD"],
                cwd=os.path.dirname(os.path.abspath(__file__)),
                capture_output=True, text=True, timeout=5,
                check=True).stdout.strip() or "unknown"
        except (OSError, subprocess.SubprocessError):
            _GIT_SHA_CACHE = "unknown"
    return _GIT_SHA_CACHE
