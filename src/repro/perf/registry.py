"""Reading and writing ``BENCH_<area>.json`` result files.

One file per benchmark *area* (tables, figs, live, obs) at the repo
root, each a versioned envelope of :class:`~repro.perf.result.BenchResult`
records sorted by identity key — so regenerating a baseline with the
same seeds produces a byte-identical ``results`` list and a clean diff.

Writers replace records key-for-key rather than appending, so a
benchmark re-run within one session updates its own rows instead of
duplicating them.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterable, List, Optional

from .result import SCHEMA_VERSION, BenchResult, SchemaError, validate_result

#: File name pattern for area files at the repo root.
FILE_PATTERN = "BENCH_{area}.json"


def bench_path(area: str, root: str = ".") -> str:
    """Path of the result file for ``area`` under ``root``."""
    if not area or not area.replace("_", "").isalnum():
        raise ValueError(f"bad area name {area!r}")
    return os.path.join(root, FILE_PATTERN.format(area=area.upper()))


def load_results(path: str) -> List[BenchResult]:
    """Read and validate one ``BENCH_*.json`` file."""
    with open(path, "r", encoding="utf-8") as handle:
        raw = json.load(handle)
    if not isinstance(raw, dict):
        raise SchemaError(f"{path}: expected an object envelope")
    schema = raw.get("schema")
    if schema != SCHEMA_VERSION:
        raise SchemaError(f"{path}: unsupported file schema {schema!r}")
    records = raw.get("results")
    if not isinstance(records, list):
        raise SchemaError(f"{path}: 'results' must be a list")
    results = []
    for index, record in enumerate(records):
        try:
            validate_result(record)
        except SchemaError as exc:
            raise SchemaError(f"{path}: result #{index}: {exc}") from None
        results.append(BenchResult.from_json(record))
    return results


def write_results(path: str, results: Iterable[BenchResult]) -> None:
    """Write one ``BENCH_*.json`` file (records sorted by key)."""
    ordered = sorted(results, key=lambda result: result.key())
    envelope = {"schema": SCHEMA_VERSION,
                "results": [result.to_json() for result in ordered]}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(envelope, handle, indent=1, sort_keys=True)
        handle.write("\n")


class BenchRegistry:
    """Accumulates results per area and persists them at the repo root.

    ``record`` validates each result and replaces any prior record with
    the same identity key; ``flush`` rewrites every dirty area file,
    merging with records already on disk so several benchmark scripts
    (separate pytest items, one process) build up one file.
    """

    def __init__(self, root: str = ".") -> None:
        self.root = root
        self._areas: Dict[str, Dict[tuple, BenchResult]] = {}
        self._dirty: set = set()

    def record(self, area: str, result: BenchResult) -> None:
        validate_result(result.to_json())
        bucket = self._areas.setdefault(area, self._load_area(area))
        bucket[result.key()] = result
        self._dirty.add(area)

    def _load_area(self, area: str) -> Dict[tuple, BenchResult]:
        path = bench_path(area, self.root)
        if not os.path.exists(path):
            return {}
        return {result.key(): result for result in load_results(path)}

    def results(self, area: str) -> List[BenchResult]:
        bucket = self._areas.get(area)
        if bucket is None:
            bucket = self._load_area(area)
        return sorted(bucket.values(), key=lambda result: result.key())

    def flush(self) -> List[str]:
        """Write dirty areas; returns the paths written."""
        written = []
        for area in sorted(self._dirty):
            path = bench_path(area, self.root)
            write_results(path, self._areas[area].values())
            written.append(path)
        self._dirty.clear()
        return written


def discover(root: str = ".") -> List[str]:
    """All ``BENCH_*.json`` files under ``root`` (sorted)."""
    names = [name for name in os.listdir(root)
             if name.startswith("BENCH_") and name.endswith(".json")]
    return [os.path.join(root, name) for name in sorted(names)]
